//! Physical operators and the executor.
//!
//! The executor materializes operator outputs (vectors of
//! [`AnnotatedTuple`]); all "disk" cost flows through the shared
//! [`instn_storage::IoStats`], so the benchmark harness can report simulated
//! I/O next to wall time. Implemented operators:
//!
//! * sequential scan (with or without summary propagation),
//! * Summary-BTree index scan (equality / range, in count order — the
//!   *interesting order* the optimizer exploits),
//! * baseline-scheme index scan (with its extra join indirection, and the
//!   optional propagate-from-normalized mode of Figure 12),
//! * data filter σ / summary selection `S` (one physical node — the
//!   distinction is logical), summary object filter `F`,
//! * projection with annotation-effect elimination (Fig. 3 step 1),
//! * block nested-loop join and index join, both merging summary sets with
//!   common-annotation de-duplication,
//! * in-memory and external (spilling) sort, data- or summary-keyed,
//! * group-by with COUNT(*) and summary merging, and LIMIT.

use std::collections::HashMap;
use std::sync::Arc;

use instn_core::algebra::{merge_summary_sets, project_eliminate};
use instn_core::db::Database;
use instn_core::summary::{decode_objects, encode_objects};
use instn_core::AnnotatedTuple;
use instn_index::{BaselineIndex, SummaryBTree};
use instn_storage::io::IoStats;
use instn_storage::tuple::{decode_tuple, encode_tuple};
use instn_storage::{HeapFile, TableId, Value};

use crate::dataindex::ColumnIndex;
use crate::expr::{Expr, ObjectPred};
use crate::plan::{JoinPredicate, SortKey};
use crate::{QueryError, Result};

/// Tuples per block for the block nested-loop join (the inner plan is
/// re-executed once per block, like a block NL join re-reads the inner
/// relation per buffer-full of outer tuples).
pub const NL_BLOCK_SIZE: usize = 1024;

/// Default in-memory sort budget (tuples); larger inputs spill to runs.
pub const DEFAULT_SORT_MEM: usize = 10_000;

/// The physical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Sequential scan of a base table.
    SeqScan {
        /// The table.
        table: TableId,
        /// Whether to propagate summaries (read SummaryStorage rows).
        with_summaries: bool,
    },
    /// Summary-BTree range scan; output arrives in ascending count order of
    /// the probed label.
    SummaryIndexScan {
        /// Registered index name.
        index: String,
        /// Classifier label to probe.
        label: String,
        /// Inclusive lower count bound.
        lo: Option<u64>,
        /// Inclusive upper count bound.
        hi: Option<u64>,
        /// Whether to propagate summaries.
        propagate: bool,
        /// Reverse the (ascending) index order.
        reverse: bool,
    },
    /// Baseline-scheme index scan (extra joins to reach the data).
    BaselineIndexScan {
        /// Registered index name.
        index: String,
        /// Classifier label to probe.
        label: String,
        /// Inclusive lower count bound.
        lo: Option<u64>,
        /// Inclusive upper count bound.
        hi: Option<u64>,
        /// Whether to propagate summaries.
        propagate: bool,
        /// Propagate by re-assembling objects from the normalized replica
        /// (the Figure 12 comparison) instead of reading SummaryStorage.
        from_normalized: bool,
    },
    /// Data-column B-Tree range scan over a registered [`ColumnIndex`],
    /// in key order. NULL rows never qualify: SQL comparisons are not
    /// satisfied by NULL, so the scan skips the NULL key band entirely.
    DataIndexScan {
        /// The table.
        table: TableId,
        /// The indexed column (must be registered in the context).
        col: usize,
        /// Lower bound on the column value.
        lo: Option<Value>,
        /// Upper bound on the column value.
        hi: Option<Value>,
        /// Exclude the lower bound itself (`>` instead of `>=`).
        lo_strict: bool,
        /// Exclude the upper bound itself (`<` instead of `<=`).
        hi_strict: bool,
        /// Whether to propagate summaries.
        with_summaries: bool,
    },
    /// Tuple filter: evaluates any predicate (data σ or summary `S`).
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate.
        pred: Expr,
    },
    /// Summary object filter `F`: keeps only matching objects per tuple.
    SummaryObjectFilter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Object predicate.
        pred: ObjectPred,
    },
    /// Projection. When `eliminate` is set the kept columns are positions in
    /// the *base relation* and dropped-annotation effects are removed
    /// (planners set it only directly above base-relation-shaped inputs).
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Kept columns (input positions, output order).
        cols: Vec<usize>,
        /// Eliminate dropped annotations' effects from summaries.
        eliminate: bool,
    },
    /// Block nested-loop join (re-executes the inner per outer block).
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input (re-executed per block).
        right: Box<PhysicalPlan>,
        /// Join predicate.
        pred: JoinPredicate,
    },
    /// Index join: probes a column index on the inner table per outer tuple.
    IndexJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner table.
        right_table: TableId,
        /// Outer join column.
        left_col: usize,
        /// Inner join column (must be indexed in the context).
        right_col: usize,
        /// Residual predicate applied after the index probe.
        residual: Option<JoinPredicate>,
        /// Whether inner tuples carry summaries.
        with_summaries: bool,
    },
    /// Index-based summary join (the paper's second `J` implementation,
    /// §5.2): for each outer tuple, evaluate the left summary expression
    /// and probe a Summary-BTree on the inner table for tuples whose label
    /// count matches.
    SummaryIndexJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Summary expression evaluated on each outer tuple; its integer
        /// value is the probe key.
        left_key: crate::expr::SummaryExpr,
        /// Registered Summary-BTree over the inner table's instance.
        index: String,
        /// The probed classifier label.
        label: String,
        /// Residual predicate applied after the probe.
        residual: Option<JoinPredicate>,
        /// Whether inner tuples carry summaries.
        with_summaries: bool,
    },
    /// Sort, in-memory or external.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort key (data column or summary expression — the `O` operator).
        key: SortKey,
        /// Descending order.
        desc: bool,
        /// Force the external (spilling) algorithm.
        disk: bool,
    },
    /// Group-by over column values: output = group cols + COUNT(*), with
    /// summaries merged across group members.
    GroupBy {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping columns (input positions).
        cols: Vec<usize>,
    },
    /// Duplicate elimination: tuples with equal data values collapse into
    /// one output tuple whose summary set is the merge of the duplicates'
    /// sets (the summary-aware DISTINCT of §2.2).
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// LIMIT n.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row cap.
        n: usize,
    },
}

impl PhysicalPlan {
    /// One-line description of this node alone (no children) — the line
    /// EXPLAIN prints for it, and the label [`OpMetrics`] reports under.
    pub fn head(&self) -> String {
        match self {
            PhysicalPlan::SeqScan {
                table,
                with_summaries,
            } => format!(
                "SeqScan(table#{}{})",
                table.0,
                if *with_summaries { ", +summaries" } else { "" }
            ),
            PhysicalPlan::SummaryIndexScan {
                index,
                label,
                lo,
                hi,
                reverse,
                ..
            } => format!(
                "SummaryIndexScan({index}, {label} in [{}, {}]{})",
                lo.map(|v| v.to_string()).unwrap_or_else(|| "-∞".into()),
                hi.map(|v| v.to_string()).unwrap_or_else(|| "+∞".into()),
                if *reverse { ", desc" } else { "" }
            ),
            PhysicalPlan::BaselineIndexScan {
                index,
                label,
                from_normalized,
                ..
            } => format!(
                "BaselineIndexScan({index}, {label}{})",
                if *from_normalized {
                    ", propagate-from-normalized"
                } else {
                    ""
                }
            ),
            PhysicalPlan::DataIndexScan {
                table,
                col,
                lo,
                hi,
                lo_strict,
                hi_strict,
                ..
            } => {
                let mut bounds = String::new();
                if let Some(v) = lo {
                    bounds.push_str(&format!(", {} {v:?}", if *lo_strict { ">" } else { ">=" }));
                }
                if let Some(v) = hi {
                    bounds.push_str(&format!(", {} {v:?}", if *hi_strict { "<" } else { "<=" }));
                }
                format!("DataIndexScan(table#{}.col{col}{bounds})", table.0)
            }
            PhysicalPlan::Filter { .. } => "Filter(σ/S)".into(),
            PhysicalPlan::SummaryObjectFilter { .. } => "SummaryObjectFilter(F)".into(),
            PhysicalPlan::Project {
                cols, eliminate, ..
            } => format!(
                "Project(π {cols:?}{})",
                if *eliminate { ", eliminate" } else { "" }
            ),
            PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin(block)".into(),
            PhysicalPlan::IndexJoin {
                right_table,
                right_col,
                ..
            } => format!("IndexJoin(table#{}.col{right_col})", right_table.0),
            PhysicalPlan::SummaryIndexJoin { index, label, .. } => {
                format!("SummaryIndexJoin(J via {index} on {label})")
            }
            PhysicalPlan::Sort {
                key, desc, disk, ..
            } => format!(
                "Sort({}{}{})",
                if key.is_summary() { "O" } else { "data" },
                if *desc { ", desc" } else { "" },
                if *disk { ", external" } else { ", in-memory" }
            ),
            PhysicalPlan::GroupBy { cols, .. } => format!("GroupBy({cols:?})"),
            PhysicalPlan::Distinct { .. } => "Distinct(δ)".into(),
            PhysicalPlan::Limit { n, .. } => format!("Limit({n})"),
        }
    }

    /// Child subtrees in display order (outer before inner).
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::SummaryIndexScan { .. }
            | PhysicalPlan::BaselineIndexScan { .. }
            | PhysicalPlan::DataIndexScan { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::SummaryObjectFilter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::GroupBy { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => vec![input],
            PhysicalPlan::NestedLoopJoin { left, right, .. } => vec![left, right],
            PhysicalPlan::IndexJoin { left, .. } | PhysicalPlan::SummaryIndexJoin { left, .. } => {
                vec![left]
            }
        }
    }

    fn fmt_indent(&self, f: &mut std::fmt::Formatter<'_>, indent: usize) -> std::fmt::Result {
        writeln!(f, "{}{}", "  ".repeat(indent), self.head())?;
        for child in self.children() {
            child.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for PhysicalPlan {
    /// EXPLAIN-style tree rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// The indexes a session owns across queries. A context borrows the
/// database for one query at a time, but indexes are expensive to build and
/// live longer than any single borrow — `Session` (see [`crate::session`])
/// moves a registry into a short-lived context, runs queries, and takes the
/// registry back when the read guard drops.
#[derive(Default)]
pub struct IndexRegistry {
    pub(crate) summary: HashMap<String, SummaryBTree>,
    pub(crate) baseline: HashMap<String, BaselineIndex>,
    pub(crate) column: HashMap<(TableId, usize), ColumnIndex>,
}

impl IndexRegistry {
    /// Registered indexes across all three kinds.
    pub fn len(&self) -> usize {
        self.summary.len() + self.baseline.len() + self.column.len()
    }

    /// Whether no index is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execution context: the database plus registered indexes.
pub struct ExecContext<'a> {
    /// The engine.
    pub db: &'a Database,
    summary_indexes: HashMap<String, SummaryBTree>,
    baseline_indexes: HashMap<String, BaselineIndex>,
    column_indexes: HashMap<(TableId, usize), ColumnIndex>,
    /// In-memory sort budget in tuples; larger sorts spill.
    pub sort_mem: usize,
}

impl<'a> ExecContext<'a> {
    /// A context with no registered indexes.
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            summary_indexes: HashMap::new(),
            baseline_indexes: HashMap::new(),
            column_indexes: HashMap::new(),
            sort_mem: DEFAULT_SORT_MEM,
        }
    }

    /// A context serving a previously accumulated index registry.
    pub fn with_registry(db: &'a Database, registry: IndexRegistry) -> Self {
        let mut ctx = Self::new(db);
        ctx.install_registry(registry);
        ctx
    }

    /// Move every registered index out of this context, leaving it empty.
    pub fn take_registry(&mut self) -> IndexRegistry {
        IndexRegistry {
            summary: std::mem::take(&mut self.summary_indexes),
            baseline: std::mem::take(&mut self.baseline_indexes),
            column: std::mem::take(&mut self.column_indexes),
        }
    }

    /// Adopt a registry's indexes (replacing same-named registrations).
    pub fn install_registry(&mut self, registry: IndexRegistry) {
        self.summary_indexes.extend(registry.summary);
        self.baseline_indexes.extend(registry.baseline);
        self.column_indexes.extend(registry.column);
    }

    /// Rebuild every registered index whose `built_revision` no longer
    /// matches the database's revision.
    ///
    /// An index registration outlives the mutations that happen around it;
    /// without this check a scan over a stale tree silently returns
    /// pre-mutation rows (deleted tuples resurface, inserts are invisible).
    /// Runs at every plan execution; a fresh registry costs three integer
    /// comparisons per index, a stale one pays a bulk rebuild.
    pub fn refresh_stale_indexes(&mut self) -> Result<()> {
        let rev = self.db.revision();
        for idx in self.summary_indexes.values_mut() {
            if idx.built_revision() != rev {
                let (table, name, mode) =
                    (idx.table(), idx.instance_name().to_string(), idx.mode());
                *idx = SummaryBTree::bulk_build(self.db, table, &name, mode)?;
            }
        }
        for idx in self.baseline_indexes.values_mut() {
            if idx.built_revision() != rev {
                let (table, name) = (idx.table(), idx.instance_name().to_string());
                *idx = BaselineIndex::bulk_build(self.db, table, &name)?;
            }
        }
        for idx in self.column_indexes.values_mut() {
            if idx.built_revision() != rev {
                *idx = ColumnIndex::build(self.db, idx.table(), idx.column())?;
            }
        }
        Ok(())
    }

    /// Register a Summary-BTree under a name.
    pub fn register_summary_index(&mut self, name: &str, index: SummaryBTree) {
        self.summary_indexes.insert(name.to_string(), index);
    }

    /// Register a baseline-scheme index under a name.
    pub fn register_baseline_index(&mut self, name: &str, index: BaselineIndex) {
        self.baseline_indexes.insert(name.to_string(), index);
    }

    /// Register a data-column index.
    pub fn register_column_index(&mut self, index: ColumnIndex) {
        self.column_indexes
            .insert((index.table(), index.column()), index);
    }

    /// Whether a Summary-BTree is registered under `name`.
    pub fn has_summary_index(&self, name: &str) -> bool {
        self.summary_indexes.contains_key(name)
    }

    /// Whether a column index exists on `(table, col)`.
    pub fn has_column_index(&self, table: TableId, col: usize) -> bool {
        self.column_indexes.contains_key(&(table, col))
    }

    /// Borrow a registered Summary-BTree.
    pub fn summary_index(&self, name: &str) -> Option<&SummaryBTree> {
        self.summary_indexes.get(name)
    }

    /// Execute a physical plan to completion, materializing its output.
    ///
    /// Runs the pull-based pipeline underneath: the plan is compiled to a
    /// tree of operators which is opened, drained, and closed.
    pub fn execute(&mut self, plan: &PhysicalPlan) -> Result<Vec<AnnotatedTuple>> {
        Ok(self.execute_with_metrics(plan)?.0)
    }

    /// Execute a plan and also return per-operator runtime counters (rows
    /// emitted, open count, I/O charged) — the EXPLAIN ANALYZE payload.
    pub fn execute_with_metrics(
        &mut self,
        plan: &PhysicalPlan,
    ) -> Result<(Vec<AnnotatedTuple>, OpMetrics)> {
        self.refresh_stale_indexes()?;
        let mut root = compile(plan);
        root.open(self)?;
        let mut out = Vec::new();
        while let Some(t) = root.next(self)? {
            out.push(t);
        }
        root.close(self)?;
        Ok((out, root.metrics()))
    }

    /// Open a plan as a pull stream without draining it. The caller pulls
    /// tuples one at a time with [`TupleStream::next_tuple`] and may stop
    /// early; no I/O happens beyond what the pulled tuples require.
    pub fn open_stream<'c>(&'c mut self, plan: &PhysicalPlan) -> Result<TupleStream<'c, 'a>> {
        self.refresh_stale_indexes()?;
        let mut root = compile(plan);
        root.open(self)?;
        Ok(TupleStream {
            ctx: self,
            root,
            done: false,
        })
    }

    fn table_of_baseline(&self, index: &str) -> Result<TableId> {
        let idx = self
            .baseline_indexes
            .get(index)
            .ok_or_else(|| QueryError::UnknownIndex(index.to_string()))?;
        // Find the table with this instance linked.
        for (tid, _) in self.db_tables() {
            if self.db.instance_by_name(tid, idx.instance_name()).is_ok() {
                return Ok(tid);
            }
        }
        Err(QueryError::UnknownIndex(index.to_string()))
    }

    fn db_tables(&self) -> Vec<(TableId, String)> {
        // The catalog enumerates tables densely from 0.
        let mut out = Vec::new();
        let mut i = 0u32;
        while let Ok(t) = self.db.table(TableId(i)) {
            out.push((TableId(i), t.name().to_string()));
            i += 1;
        }
        out
    }
}

/// A live, pull-based execution of a plan (see [`ExecContext::open_stream`]).
pub struct TupleStream<'c, 'a> {
    ctx: &'c mut ExecContext<'a>,
    root: OpNode,
    done: bool,
}

impl TupleStream<'_, '_> {
    /// Pull the next output tuple, or `None` once the plan is exhausted.
    pub fn next_tuple(&mut self) -> Result<Option<AnnotatedTuple>> {
        if self.done {
            return Ok(None);
        }
        let t = self.root.next(self.ctx)?;
        if t.is_none() {
            self.done = true;
        }
        Ok(t)
    }

    /// Snapshot of the per-operator counters accumulated so far.
    pub fn metrics(&self) -> OpMetrics {
        self.root.metrics()
    }

    /// Close the pipeline, releasing operator state, and return the final
    /// counters.
    pub fn close(mut self) -> Result<OpMetrics> {
        self.root.close(self.ctx)?;
        Ok(self.root.metrics())
    }
}

/// Per-operator runtime counters, mirroring the plan tree.
///
/// I/O counters are *inclusive* of children (like PostgreSQL's
/// `EXPLAIN (ANALYZE, BUFFERS)`): a parent's pulls charge everything its
/// subtree did while producing those tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct OpMetrics {
    /// Operator label (the plan node's EXPLAIN line).
    pub label: String,
    /// Tuples this operator emitted.
    pub rows: u64,
    /// Times the operator was opened (the block NL join re-opens its inner).
    pub opens: u64,
    /// Physical page transfers charged while this subtree ran.
    pub physical_io: u64,
    /// Logical page accesses charged while this subtree ran.
    pub logical_io: u64,
    /// Child operators in display order.
    pub children: Vec<OpMetrics>,
}

impl OpMetrics {
    /// Indented per-operator report for EXPLAIN ANALYZE.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(indent);
        let loops = if self.opens > 1 {
            format!(", loops={}", self.opens)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{pad}{} (rows={}{loops}, io={} physical / {} logical)",
            self.label, self.rows, self.physical_io, self.logical_io
        );
        for c in &self.children {
            c.render_into(out, indent + 1);
        }
    }
}

/// A pull-based physical operator (Volcano style).
///
/// `open` acquires cursors or materializes pipeline-breaker state, `next`
/// yields one tuple at a time, `close` releases state. Operators receive the
/// [`ExecContext`] on every call instead of borrowing it, so the compiled
/// tree carries no lifetimes.
trait Operator {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>>;
    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
    fn children(&self) -> Vec<&OpNode>;
}

/// An operator plus its runtime counters. All pulls go through the node so
/// rows, opens, and I/O are metered uniformly.
struct OpNode {
    label: String,
    op: Box<dyn Operator>,
    rows: u64,
    opens: u64,
    physical_io: u64,
    logical_io: u64,
}

impl OpNode {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.opens += 1;
        let before = ctx.db.stats().snapshot();
        let r = self.op.open(ctx);
        self.charge(&before, ctx);
        r
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let before = ctx.db.stats().snapshot();
        let r = self.op.next(ctx);
        self.charge(&before, ctx);
        if let Ok(Some(_)) = &r {
            self.rows += 1;
        }
        r
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.op.close(ctx)
    }

    fn charge(&mut self, before: &instn_storage::IoSnapshot, ctx: &ExecContext<'_>) {
        let delta = ctx.db.stats().snapshot().since(before);
        self.physical_io += delta.total();
        self.logical_io += delta.logical_total();
    }

    fn metrics(&self) -> OpMetrics {
        OpMetrics {
            label: self.label.clone(),
            rows: self.rows,
            opens: self.opens,
            physical_io: self.physical_io,
            logical_io: self.logical_io,
            children: self.op.children().iter().map(|c| c.metrics()).collect(),
        }
    }
}

/// Compile a plan tree into an operator tree. Plan parameters are cloned
/// into the operators (plans are small), keeping the tree `'static`.
fn compile(plan: &PhysicalPlan) -> OpNode {
    let op: Box<dyn Operator> = match plan {
        PhysicalPlan::SeqScan {
            table,
            with_summaries,
        } => Box::new(SeqScanOp {
            table: *table,
            with_summaries: *with_summaries,
            cursor: None,
        }),
        PhysicalPlan::SummaryIndexScan {
            index,
            label,
            lo,
            hi,
            propagate,
            reverse,
        } => Box::new(SummaryIndexScanOp {
            index: index.clone(),
            label: label.clone(),
            lo: *lo,
            hi: *hi,
            propagate: *propagate,
            reverse: *reverse,
            table: None,
            cursor: None,
        }),
        PhysicalPlan::BaselineIndexScan {
            index,
            label,
            lo,
            hi,
            propagate,
            from_normalized,
        } => Box::new(BaselineIndexScanOp {
            index: index.clone(),
            label: label.clone(),
            lo: *lo,
            hi: *hi,
            propagate: *propagate,
            from_normalized: *from_normalized,
            table: None,
            oids: Vec::new(),
            pos: 0,
        }),
        PhysicalPlan::DataIndexScan {
            table,
            col,
            lo,
            hi,
            lo_strict,
            hi_strict,
            with_summaries,
        } => Box::new(DataIndexScanOp {
            table: *table,
            col: *col,
            lo: lo.clone(),
            hi: hi.clone(),
            lo_strict: *lo_strict,
            hi_strict: *hi_strict,
            with_summaries: *with_summaries,
            oids: Vec::new(),
            pos: 0,
        }),
        PhysicalPlan::Filter { input, pred } => Box::new(FilterOp {
            child: compile(input),
            pred: pred.clone(),
        }),
        PhysicalPlan::SummaryObjectFilter { input, pred } => Box::new(SummaryObjectFilterOp {
            child: compile(input),
            pred: pred.clone(),
        }),
        PhysicalPlan::Project {
            input,
            cols,
            eliminate,
        } => Box::new(ProjectOp {
            child: compile(input),
            cols: cols.clone(),
            eliminate: *eliminate,
        }),
        PhysicalPlan::NestedLoopJoin { left, right, pred } => Box::new(NestedLoopJoinOp {
            left: compile(left),
            right: compile(right),
            pred: pred.clone(),
            block: Vec::new(),
            inner: Vec::new(),
            inner_cached: false,
            li: 0,
            ri: 0,
            outer_done: false,
        }),
        PhysicalPlan::IndexJoin {
            left,
            right_table,
            left_col,
            right_col,
            residual,
            with_summaries,
        } => Box::new(IndexJoinOp {
            left: compile(left),
            right_table: *right_table,
            left_col: *left_col,
            right_col: *right_col,
            residual: residual.clone(),
            with_summaries: *with_summaries,
            current: None,
        }),
        PhysicalPlan::SummaryIndexJoin {
            left,
            left_key,
            index,
            label,
            residual,
            with_summaries,
        } => Box::new(SummaryIndexJoinOp {
            left: compile(left),
            left_key: left_key.clone(),
            index: index.clone(),
            label: label.clone(),
            residual: residual.clone(),
            with_summaries: *with_summaries,
            right_table: None,
            current: None,
        }),
        PhysicalPlan::Sort {
            input,
            key,
            desc,
            disk,
        } => Box::new(SortOp {
            child: compile(input),
            key: key.clone(),
            desc: *desc,
            disk: *disk,
            out: None,
        }),
        PhysicalPlan::GroupBy { input, cols } => Box::new(GroupByOp {
            child: compile(input),
            cols: cols.clone(),
            out: None,
        }),
        PhysicalPlan::Distinct { input } => Box::new(DistinctOp {
            child: compile(input),
            out: None,
        }),
        PhysicalPlan::Limit { input, n } => Box::new(LimitOp {
            child: compile(input),
            n: *n,
            emitted: 0,
        }),
    };
    OpNode {
        label: plan.head(),
        op,
        rows: 0,
        opens: 0,
        physical_io: 0,
        logical_io: 0,
    }
}

/// Streaming sequential scan (OID order).
struct SeqScanOp {
    table: TableId,
    with_summaries: bool,
    cursor: Option<instn_storage::ScanCursor>,
}

impl Operator for SeqScanOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.cursor = Some(ctx.db.table(self.table)?.scan_open());
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let cur = self.cursor.as_mut().expect("open() before next()");
        let Some((oid, values)) = ctx.db.table(self.table)?.scan_next(cur) else {
            return Ok(None);
        };
        if self.with_summaries {
            let summaries = ctx.db.summary_storage(self.table).read(oid)?;
            Ok(Some(AnnotatedTuple {
                source: Some((self.table, oid)),
                values,
                summaries,
            }))
        } else {
            Ok(Some(AnnotatedTuple::bare(self.table, oid, values)))
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.cursor = None;
        Ok(())
    }

    fn children(&self) -> Vec<&OpNode> {
        Vec::new()
    }
}

/// Streaming Summary-BTree scan: a cursor is opened over the count range and
/// entries are fetched lazily, so a LIMIT above stops both the leaf walk and
/// the per-entry heap reads after k tuples.
struct SummaryIndexScanOp {
    index: String,
    label: String,
    lo: Option<u64>,
    hi: Option<u64>,
    propagate: bool,
    reverse: bool,
    table: Option<TableId>,
    cursor: Option<instn_index::EntryCursor>,
}

impl Operator for SummaryIndexScanOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let idx = ctx
            .summary_indexes
            .get_mut(&self.index)
            .ok_or_else(|| QueryError::UnknownIndex(self.index.clone()))?;
        self.table = Some(idx.table());
        self.cursor = Some(idx.open_range_cursor(&self.label, self.lo, self.hi, self.reverse));
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let idx = ctx
            .summary_indexes
            .get(&self.index)
            .ok_or_else(|| QueryError::UnknownIndex(self.index.clone()))?;
        let cur = self.cursor.as_mut().expect("open() before next()");
        let Some(e) = idx.cursor_next(cur) else {
            return Ok(None);
        };
        let values = idx.fetch_data_tuple(ctx.db, &e)?;
        let summaries = if self.propagate {
            idx.fetch_summaries(ctx.db, &e)?
        } else {
            Vec::new()
        };
        Ok(Some(AnnotatedTuple {
            source: Some((self.table.expect("set in open"), e.oid)),
            values,
            summaries,
        }))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.cursor = None;
        Ok(())
    }

    fn children(&self) -> Vec<&OpNode> {
        Vec::new()
    }
}

/// Baseline-scheme index scan: the matching OID list is materialized at open
/// (the baseline index keeps it in memory anyway); the expensive part — the
/// per-OID probe + heap read indirection — happens lazily per pull.
struct BaselineIndexScanOp {
    index: String,
    label: String,
    lo: Option<u64>,
    hi: Option<u64>,
    propagate: bool,
    from_normalized: bool,
    table: Option<TableId>,
    oids: Vec<instn_storage::Oid>,
    pos: usize,
}

impl Operator for BaselineIndexScanOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let idx = ctx
            .baseline_indexes
            .get(&self.index)
            .ok_or_else(|| QueryError::UnknownIndex(self.index.clone()))?;
        // The baseline index only knows OIDs; the owning table is resolved
        // through the instance the index was built on.
        self.oids = idx.search_range(&self.label, self.lo, self.hi);
        self.pos = 0;
        self.table = if self.oids.is_empty() {
            None
        } else {
            Some(ctx.table_of_baseline(&self.index)?)
        };
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let Some(&oid) = self.oids.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        let table = self.table.expect("resolved in open");
        // Extra indirection: OID-index probe + heap read.
        let values = ctx.db.table(table)?.get(oid)?;
        let summaries = if self.propagate {
            if self.from_normalized {
                // Re-assemble the classifier object from normalized rows
                // (the paper's Fig. 12 measures exactly this).
                let idx = ctx
                    .baseline_indexes
                    .get(&self.index)
                    .ok_or_else(|| QueryError::UnknownIndex(self.index.clone()))?;
                idx.rebuild_object(ctx.db, oid)?
                    .map(|o| vec![o])
                    .unwrap_or_default()
            } else {
                ctx.db.summaries_of(table, oid)?
            }
        } else {
            Vec::new()
        };
        Ok(Some(AnnotatedTuple {
            source: Some((table, oid)),
            values,
            summaries,
        }))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.oids = Vec::new();
        self.pos = 0;
        Ok(())
    }

    fn children(&self) -> Vec<&OpNode> {
        Vec::new()
    }
}

/// Data-column index scan: the qualifying OID list (already in key order,
/// NULL band skipped) is materialized at open; heap reads happen lazily per
/// pull so a LIMIT above stops them.
struct DataIndexScanOp {
    table: TableId,
    col: usize,
    lo: Option<Value>,
    hi: Option<Value>,
    lo_strict: bool,
    hi_strict: bool,
    with_summaries: bool,
    oids: Vec<instn_storage::Oid>,
    pos: usize,
}

impl Operator for DataIndexScanOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let idx = ctx
            .column_indexes
            .get(&(self.table, self.col))
            .ok_or_else(|| {
                QueryError::UnknownIndex(format!("table#{}.col{}", self.table.0, self.col))
            })?;
        self.oids = idx.range(
            self.lo.as_ref(),
            self.hi.as_ref(),
            self.lo_strict,
            self.hi_strict,
        );
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let Some(&oid) = self.oids.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        let values = ctx.db.table(self.table)?.get(oid)?;
        if self.with_summaries {
            let summaries = ctx.db.summary_storage(self.table).read(oid)?;
            Ok(Some(AnnotatedTuple {
                source: Some((self.table, oid)),
                values,
                summaries,
            }))
        } else {
            Ok(Some(AnnotatedTuple::bare(self.table, oid, values)))
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.oids = Vec::new();
        self.pos = 0;
        Ok(())
    }

    fn children(&self) -> Vec<&OpNode> {
        Vec::new()
    }
}

/// Tuple filter σ / summary selection `S` — fully pipelined.
struct FilterOp {
    child: OpNode,
    pred: Expr,
}

impl Operator for FilterOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        loop {
            let Some(t) = self.child.next(ctx)? else {
                return Ok(None);
            };
            if self.pred.eval_bool(&t)? {
                return Ok(Some(t));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// Summary object filter `F` — fully pipelined.
struct SummaryObjectFilterOp {
    child: OpNode,
    pred: ObjectPred,
}

impl Operator for SummaryObjectFilterOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let t = self.child.next(ctx)?;
        Ok(t.map(|mut t| {
            t.summaries.retain(|o| self.pred.matches(o));
            t
        }))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// Projection with annotation-effect elimination — fully pipelined.
struct ProjectOp {
    child: OpNode,
    cols: Vec<usize>,
    eliminate: bool,
}

impl Operator for ProjectOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        let Some(mut t) = self.child.next(ctx)? else {
            return Ok(None);
        };
        if self.eliminate {
            if let Some((table, oid)) = t.source {
                let (_kept, removed) = ctx
                    .db
                    .annotation_store(table)
                    .partition_by_projection(oid, &self.cols);
                if !removed.is_empty() {
                    let resolver = ctx.db.text_resolver();
                    project_eliminate(&mut t.summaries, &removed, &resolver);
                }
            }
        }
        t.values = self
            .cols
            .iter()
            .map(|&i| t.values.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        Ok(Some(t))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// Block nested-loop join. The outer side is pulled in blocks of
/// [`NL_BLOCK_SIZE`]; the inner build side is a pipeline breaker,
/// materialized once per block. When the first materialization fits the
/// sort budget the inner is cached and later blocks skip the re-scan.
struct NestedLoopJoinOp {
    left: OpNode,
    right: OpNode,
    pred: JoinPredicate,
    block: Vec<AnnotatedTuple>,
    inner: Vec<AnnotatedTuple>,
    inner_cached: bool,
    li: usize,
    ri: usize,
    outer_done: bool,
}

impl Operator for NestedLoopJoinOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.block.clear();
        self.inner.clear();
        self.inner_cached = false;
        self.li = 0;
        self.ri = 0;
        self.outer_done = false;
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        loop {
            // Emit pending matches of the current block × inner.
            while self.li < self.block.len() {
                let l = &self.block[self.li];
                while self.ri < self.inner.len() {
                    let r = &self.inner[self.ri];
                    self.ri += 1;
                    if self.pred.matches(l, r) {
                        return Ok(Some(merge_pair(ctx.db, l, r)));
                    }
                }
                self.li += 1;
                self.ri = 0;
            }
            if self.outer_done {
                return Ok(None);
            }
            // Pull the next outer block.
            self.block.clear();
            self.li = 0;
            self.ri = 0;
            while self.block.len() < NL_BLOCK_SIZE.max(1) {
                match self.left.next(ctx)? {
                    Some(t) => self.block.push(t),
                    None => {
                        self.outer_done = true;
                        break;
                    }
                }
            }
            if self.block.is_empty() {
                return Ok(None);
            }
            // Block NL: the inner is re-executed (re-read) once per block —
            // unless an earlier materialization fit in memory and was kept.
            if !self.inner_cached {
                self.right.open(ctx)?;
                self.inner.clear();
                while let Some(t) = self.right.next(ctx)? {
                    self.inner.push(t);
                }
                self.right.close(ctx)?;
                self.inner_cached = self.inner.len() <= ctx.sort_mem;
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.block = Vec::new();
        self.inner = Vec::new();
        self.inner_cached = false;
        self.left.close(ctx)?;
        self.right.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.left, &self.right]
    }
}

/// Index join: streams the outer, probing a column index on the inner table
/// per outer tuple.
struct IndexJoinOp {
    left: OpNode,
    right_table: TableId,
    left_col: usize,
    right_col: usize,
    residual: Option<JoinPredicate>,
    with_summaries: bool,
    current: Option<(AnnotatedTuple, Vec<instn_storage::Oid>, usize)>,
}

impl Operator for IndexJoinOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if !ctx.has_column_index(self.right_table, self.right_col) {
            return Err(QueryError::BadPlan(format!(
                "index join requires a column index on table {:?} col {}",
                self.right_table, self.right_col
            )));
        }
        self.current = None;
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        loop {
            if self.current.is_some() {
                let (l, oids, pos) = self.current.as_mut().expect("checked above");
                while *pos < oids.len() {
                    let oid = oids[*pos];
                    *pos += 1;
                    let r = if self.with_summaries {
                        ctx.db.annotated_tuple(self.right_table, oid)?
                    } else {
                        let values = ctx.db.table(self.right_table)?.get(oid)?;
                        AnnotatedTuple::bare(self.right_table, oid, values)
                    };
                    if let Some(p) = &self.residual {
                        if !p.matches(l, &r) {
                            continue;
                        }
                    }
                    return Ok(Some(merge_pair(ctx.db, l, &r)));
                }
                self.current = None;
            }
            match self.left.next(ctx)? {
                Some(l) => {
                    let Some(key) = l.values.get(self.left_col) else {
                        continue;
                    };
                    let oids = ctx.column_indexes[&(self.right_table, self.right_col)].lookup(key);
                    self.current = Some((l, oids, 0));
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.current = None;
        self.left.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.left]
    }
}

/// Index-based summary join (§5.2): streams the outer, probing a
/// Summary-BTree on the inner table per outer tuple.
struct SummaryIndexJoinOp {
    left: OpNode,
    left_key: crate::expr::SummaryExpr,
    index: String,
    label: String,
    residual: Option<JoinPredicate>,
    with_summaries: bool,
    right_table: Option<TableId>,
    current: Option<(AnnotatedTuple, Vec<instn_index::IndexEntry>, usize)>,
}

impl Operator for SummaryIndexJoinOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let idx = ctx
            .summary_indexes
            .get(&self.index)
            .ok_or_else(|| QueryError::UnknownIndex(self.index.clone()))?;
        self.right_table = Some(idx.table());
        self.current = None;
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        loop {
            if self.current.is_some() {
                let right_table = self.right_table.expect("set in open");
                let (l, entries, pos) = self.current.as_mut().expect("checked above");
                while *pos < entries.len() {
                    let e = &entries[*pos];
                    *pos += 1;
                    let idx = ctx
                        .summary_indexes
                        .get(&self.index)
                        .expect("checked in open");
                    let values = idx.fetch_data_tuple(ctx.db, e)?;
                    let summaries = if self.with_summaries {
                        idx.fetch_summaries(ctx.db, e)?
                    } else {
                        Vec::new()
                    };
                    let r = AnnotatedTuple {
                        source: Some((right_table, e.oid)),
                        values,
                        summaries,
                    };
                    if let Some(p) = &self.residual {
                        if !p.matches(l, &r) {
                            continue;
                        }
                    }
                    return Ok(Some(merge_pair(ctx.db, l, &r)));
                }
                self.current = None;
            }
            match self.left.next(ctx)? {
                Some(l) => {
                    let Some(count) = self.left_key.eval(&l).as_int() else {
                        continue;
                    };
                    if count < 0 {
                        continue;
                    }
                    let idx = ctx
                        .summary_indexes
                        .get_mut(&self.index)
                        .ok_or_else(|| QueryError::UnknownIndex(self.index.clone()))?;
                    let entries = idx.search_eq(&self.label, count as u64);
                    self.current = Some((l, entries, 0));
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.current = None;
        self.left.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.left]
    }
}

/// Sort — a pipeline breaker: the input is drained at open, sorted (spilling
/// when over budget), and replayed.
struct SortOp {
    child: OpNode,
    key: SortKey,
    desc: bool,
    disk: bool,
    out: Option<std::vec::IntoIter<AnnotatedTuple>>,
}

impl Operator for SortOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open(ctx)?;
        let mut rows = Vec::new();
        while let Some(t) = self.child.next(ctx)? {
            rows.push(t);
        }
        let sorted = if self.disk || rows.len() > ctx.sort_mem {
            external_sort(ctx.db, ctx.sort_mem, rows, &self.key, self.desc)?
        } else {
            mem_sort(rows, &self.key, self.desc)
        };
        self.out = Some(sorted.into_iter());
        Ok(())
    }

    fn next(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        Ok(self.out.as_mut().and_then(|it| it.next()))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.out = None;
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// Group-by — a pipeline breaker: drains its input at open, then replays
/// the groups in first-occurrence order.
struct GroupByOp {
    child: OpNode,
    cols: Vec<usize>,
    out: Option<std::vec::IntoIter<AnnotatedTuple>>,
}

impl Operator for GroupByOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open(ctx)?;
        let mut rows = Vec::new();
        while let Some(t) = self.child.next(ctx)? {
            rows.push(t);
        }
        self.out = Some(group_rows(ctx.db, rows, &self.cols).into_iter());
        Ok(())
    }

    fn next(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        Ok(self.out.as_mut().and_then(|it| it.next()))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.out = None;
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// DISTINCT — a pipeline breaker: drains its input at open, then replays the
/// survivors in first-occurrence order.
struct DistinctOp {
    child: OpNode,
    out: Option<std::vec::IntoIter<AnnotatedTuple>>,
}

impl Operator for DistinctOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open(ctx)?;
        let mut rows = Vec::new();
        while let Some(t) = self.child.next(ctx)? {
            rows.push(t);
        }
        self.out = Some(distinct_rows(ctx.db, rows).into_iter());
        Ok(())
    }

    fn next(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        Ok(self.out.as_mut().and_then(|it| it.next()))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.out = None;
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// LIMIT — stops pulling its child after `n` rows, so lazy upstream scans
/// never pay for tuples beyond the cap. This is the early-termination point
/// of the pipeline.
struct LimitOp {
    child: OpNode,
    n: usize,
    emitted: usize,
}

impl Operator for LimitOp {
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.emitted = 0;
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<AnnotatedTuple>> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        match self.child.next(ctx)? {
            Some(t) => {
                self.emitted += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.close(ctx)
    }

    fn children(&self) -> Vec<&OpNode> {
        vec![&self.child]
    }
}

/// Merge a joined pair: concatenate values; merge the summary sets with
/// common-annotation de-duplication.
fn merge_pair(db: &Database, l: &AnnotatedTuple, r: &AnnotatedTuple) -> AnnotatedTuple {
    let common: std::collections::HashSet<instn_annot::AnnotId> = match (l.source, r.source) {
        (Some((tl, ol)), Some((tr, or))) => {
            db.common_annotations(tl, ol, tr, or).into_iter().collect()
        }
        _ => Default::default(),
    };
    let resolver = db.text_resolver();
    let mut values = l.values.clone();
    values.extend(r.values.iter().cloned());
    AnnotatedTuple {
        source: None,
        values,
        summaries: merge_summary_sets(&l.summaries, &r.summaries, &common, &resolver),
    }
}

/// Duplicate elimination with summary merging: equal data values collapse;
/// their summary sets merge with common-annotation dedup.
fn distinct_rows(db: &Database, rows: Vec<AnnotatedTuple>) -> Vec<AnnotatedTuple> {
    let resolver = db.text_resolver();
    let mut order: Vec<String> = Vec::new();
    let mut seen: HashMap<String, AnnotatedTuple> = HashMap::new();
    for t in rows {
        let key: String = t.values.iter().map(|v| format!("{v}\u{1}")).collect();
        match seen.get_mut(&key) {
            None => {
                order.push(key.clone());
                seen.insert(key, t);
            }
            Some(acc) => {
                let common: std::collections::HashSet<instn_annot::AnnotId> =
                    match (acc.source, t.source) {
                        (Some((ta, oa)), Some((tb, ob))) => {
                            db.common_annotations(ta, oa, tb, ob).into_iter().collect()
                        }
                        _ => Default::default(),
                    };
                acc.summaries =
                    merge_summary_sets(&acc.summaries, &t.summaries, &common, &resolver);
                acc.source = None;
            }
        }
    }
    order
        .into_iter()
        .map(|k| seen.remove(&k).expect("inserted above"))
        .collect()
}

/// Group-by with COUNT(*) and summary merging, in first-occurrence order.
fn group_rows(db: &Database, rows: Vec<AnnotatedTuple>, cols: &[usize]) -> Vec<AnnotatedTuple> {
    // Group keys must hash; render values to a canonical string key while
    // keeping the first occurrence's values for output.
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, (Vec<Value>, u64, AnnotatedTuple)> = HashMap::new();
    let resolver = db.text_resolver();
    for t in rows {
        let key_vals: Vec<Value> = cols
            .iter()
            .map(|&i| t.values.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        let key: String = key_vals.iter().map(|v| format!("{v}\u{1}")).collect();
        match groups.get_mut(&key) {
            None => {
                order.push(key.clone());
                groups.insert(key, (key_vals, 1, t));
            }
            Some((_, count, acc)) => {
                *count += 1;
                let common: std::collections::HashSet<instn_annot::AnnotId> =
                    match (acc.source, t.source) {
                        (Some((ta, oa)), Some((tb, ob))) => {
                            db.common_annotations(ta, oa, tb, ob).into_iter().collect()
                        }
                        _ => Default::default(),
                    };
                acc.summaries =
                    merge_summary_sets(&acc.summaries, &t.summaries, &common, &resolver);
                acc.source = None;
            }
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let (mut key_vals, count, acc) = groups.remove(&key).expect("inserted above");
        key_vals.push(Value::Int(count as i64));
        out.push(AnnotatedTuple {
            source: None,
            values: key_vals,
            summaries: acc.summaries,
        });
    }
    out
}

/// External merge sort: spill sorted runs to a heap file, then k-way
/// merge reading them back (every spilled tuple is written and re-read,
/// charging I/O — the "Disk" sort of Figure 14).
fn external_sort(
    db: &Database,
    sort_mem: usize,
    rows: Vec<AnnotatedTuple>,
    key: &SortKey,
    desc: bool,
) -> Result<Vec<AnnotatedTuple>> {
    let stats: Arc<IoStats> = Arc::clone(db.stats());
    let mut spill = HeapFile::new(stats);
    let run_size = sort_mem.max(2);
    let mut runs: Vec<Vec<instn_storage::page::RecordId>> = Vec::new();
    let mut total = 0usize;
    for chunk in rows.chunks(run_size) {
        let sorted = mem_sort(chunk.to_vec(), key, desc);
        let mut run = Vec::with_capacity(sorted.len());
        for t in &sorted {
            run.push(spill.insert(&encode_annotated(t))?);
        }
        total += run.len();
        runs.push(run);
    }
    // K-way merge over run heads.
    let mut heads: Vec<usize> = vec![0; runs.len()];
    let mut out = Vec::with_capacity(total);
    let mut head_vals: Vec<Option<(Value, AnnotatedTuple)>> = Vec::with_capacity(runs.len());
    for (ri, run) in runs.iter().enumerate() {
        head_vals.push(read_head(&spill, run, heads[ri], key)?);
    }
    loop {
        let mut best: Option<usize> = None;
        for (ri, hv) in head_vals.iter().enumerate() {
            let Some((v, _)) = hv else { continue };
            let better = match &best {
                None => true,
                Some(b) => {
                    let (bv, _) = head_vals[*b].as_ref().unwrap();
                    let ord = v.cmp_sql(bv);
                    if desc {
                        ord == std::cmp::Ordering::Greater
                    } else {
                        ord == std::cmp::Ordering::Less
                    }
                }
            };
            if better {
                best = Some(ri);
            }
        }
        let Some(ri) = best else { break };
        let (_, t) = head_vals[ri].take().unwrap();
        out.push(t);
        heads[ri] += 1;
        head_vals[ri] = read_head(&spill, &runs[ri], heads[ri], key)?;
    }
    Ok(out)
}

fn read_head(
    spill: &HeapFile,
    run: &[instn_storage::page::RecordId],
    pos: usize,
    key: &SortKey,
) -> Result<Option<(Value, AnnotatedTuple)>> {
    match run.get(pos) {
        Some(rid) => {
            let t = decode_annotated(&spill.get(*rid)?)?;
            Ok(Some((key.eval(&t), t)))
        }
        None => Ok(None),
    }
}

/// Stable in-memory sort by key.
fn mem_sort(mut rows: Vec<AnnotatedTuple>, key: &SortKey, desc: bool) -> Vec<AnnotatedTuple> {
    rows.sort_by(|a, b| {
        let ord = key.eval(a).cmp_sql(&key.eval(b));
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    rows
}

/// Serialize a tuple + summaries for sort spills.
fn encode_annotated(t: &AnnotatedTuple) -> Vec<u8> {
    let mut out = Vec::new();
    match t.source {
        Some((table, oid)) => {
            out.push(1);
            out.extend_from_slice(&table.0.to_le_bytes());
            out.extend_from_slice(&oid.0.to_le_bytes());
        }
        None => out.push(0),
    }
    let values = encode_tuple(&t.values);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out.extend_from_slice(&values);
    out.extend_from_slice(&encode_objects(&t.summaries));
    out
}

fn decode_annotated(bytes: &[u8]) -> Result<AnnotatedTuple> {
    let corrupt = || QueryError::Core(instn_core::CoreError::Corrupt("spill record".into()));
    let mut pos = 0usize;
    let flag = *bytes.first().ok_or_else(corrupt)?;
    pos += 1;
    let source = if flag == 1 {
        let table = u32::from_le_bytes(
            bytes
                .get(pos..pos + 4)
                .ok_or_else(corrupt)?
                .try_into()
                .unwrap(),
        );
        pos += 4;
        let oid = u64::from_le_bytes(
            bytes
                .get(pos..pos + 8)
                .ok_or_else(corrupt)?
                .try_into()
                .unwrap(),
        );
        pos += 8;
        Some((TableId(table), instn_storage::Oid(oid)))
    } else {
        None
    };
    let vlen = u32::from_le_bytes(
        bytes
            .get(pos..pos + 4)
            .ok_or_else(corrupt)?
            .try_into()
            .unwrap(),
    ) as usize;
    pos += 4;
    let values = decode_tuple(bytes.get(pos..pos + vlen).ok_or_else(corrupt)?)?;
    pos += vlen;
    let summaries = decode_objects(bytes.get(pos..).ok_or_else(corrupt)?)?;
    Ok(AnnotatedTuple {
        source,
        values,
        summaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, SummaryExpr};
    use instn_annot::{Attachment, Category};
    use instn_core::instance::InstanceKind;
    use instn_index::PointerMode;
    use instn_mining::nb::NaiveBayes;
    use instn_storage::{ColumnType, Oid, Schema};

    fn classifier_kind() -> InstanceKind {
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train(
            "disease outbreak infection virus parasite lesion",
            "Disease",
        );
        model.train(
            "eating foraging migration song nesting stonewort",
            "Behavior",
        );
        InstanceKind::Classifier { model }
    }

    /// db with n birds; bird i: i disease annots + 1 behavior annot.
    fn setup(n: usize) -> (Database, TableId, Vec<Oid>) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "Birds",
                Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
            )
            .unwrap();
        let mut oids = Vec::new();
        for i in 0..n {
            oids.push(
                db.insert_tuple(
                    t,
                    vec![Value::Int(i as i64), Value::Text(format!("fam{}", i % 3))],
                )
                .unwrap(),
            );
        }
        db.link_instance(t, "ClassBird1", classifier_kind(), true)
            .unwrap();
        for (i, &oid) in oids.iter().enumerate() {
            for _ in 0..i {
                db.add_annotation(
                    t,
                    "disease outbreak infection",
                    Category::Disease,
                    "u",
                    vec![Attachment::row(oid)],
                )
                .unwrap();
            }
            db.add_annotation(
                t,
                "eating stonewort foraging",
                Category::Behavior,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        (db, t, oids)
    }

    #[test]
    fn seq_scan_with_and_without_summaries() {
        let (db, t, _) = setup(5);
        let mut ctx = ExecContext::new(&db);
        let with = ctx
            .execute(&PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            })
            .unwrap();
        assert_eq!(with.len(), 5);
        assert!(with.iter().all(|r| r.summary_count() == 1));
        let without = ctx
            .execute(&PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            })
            .unwrap();
        assert!(without.iter().all(|r| r.summary_count() == 0));
    }

    #[test]
    fn filter_on_summary_predicate() {
        let (db, t, _) = setup(8);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 5),
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 2, "tuples with 6 and 7 disease annots");
    }

    #[test]
    fn summary_index_scan_in_count_order() {
        let (db, t, oids) = setup(8);
        let idx = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("idx", idx);
        let plan = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(3),
            hi: None,
            propagate: true,
            reverse: false,
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 5);
        let got: Vec<Oid> = rows.iter().filter_map(|r| r.oid()).collect();
        assert_eq!(got, oids[3..].to_vec(), "ascending disease count");
        assert!(rows.iter().all(|r| r.summary_count() == 1));
        // Reverse order.
        let plan_desc = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(3),
            hi: None,
            propagate: true,
            reverse: true,
        };
        let rows = ctx.execute(&plan_desc).unwrap();
        let got: Vec<Oid> = rows.iter().filter_map(|r| r.oid()).collect();
        let mut expect = oids[3..].to_vec();
        expect.reverse();
        assert_eq!(got, expect);
    }

    #[test]
    fn baseline_index_scan_matches_summary_btree_results() {
        let (db, t, _) = setup(8);
        let sb = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let bl = BaselineIndex::bulk_build(&db, t, "ClassBird1").unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("sb", sb);
        ctx.register_baseline_index("bl", bl);
        let q = |ctx: &mut ExecContext, index: &str, baseline: bool| {
            let plan = if baseline {
                PhysicalPlan::BaselineIndexScan {
                    index: index.into(),
                    label: "Disease".into(),
                    lo: Some(2),
                    hi: Some(6),
                    propagate: true,
                    from_normalized: false,
                }
            } else {
                PhysicalPlan::SummaryIndexScan {
                    index: index.into(),
                    label: "Disease".into(),
                    lo: Some(2),
                    hi: Some(6),
                    propagate: true,
                    reverse: false,
                }
            };
            ctx.execute(&plan).unwrap()
        };
        let a = q(&mut ctx, "sb", false);
        let b = q(&mut ctx, "bl", true);
        assert_eq!(a.len(), b.len());
        let ao: Vec<Oid> = a.iter().filter_map(|r| r.oid()).collect();
        let bo: Vec<Oid> = b.iter().filter_map(|r| r.oid()).collect();
        assert_eq!(ao, bo);
    }

    #[test]
    fn summary_btree_costs_less_io_than_baseline() {
        let (db, t, _) = setup(30);
        let sb = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let bl = BaselineIndex::bulk_build(&db, t, "ClassBird1").unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("sb", sb);
        ctx.register_baseline_index("bl", bl);
        db.stats().reset();
        ctx.execute(&PhysicalPlan::SummaryIndexScan {
            index: "sb".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: Some(20),
            propagate: false,
            reverse: false,
        })
        .unwrap();
        let sb_io = db.stats().snapshot().total();
        db.stats().reset();
        ctx.execute(&PhysicalPlan::BaselineIndexScan {
            index: "bl".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: Some(20),
            propagate: false,
            from_normalized: false,
        })
        .unwrap();
        let bl_io = db.stats().snapshot().total();
        assert!(
            sb_io < bl_io,
            "Summary-BTree {sb_io} I/Os vs baseline {bl_io}"
        );
    }

    #[test]
    fn projection_eliminates_cell_annotation_effects() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "T",
                Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        let oid = db
            .insert_tuple(t, vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.link_instance(t, "C", classifier_kind(), false).unwrap();
        // One annotation on column 0, one on column 1.
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "u",
            vec![Attachment::cells(oid, &[0])],
        )
        .unwrap();
        db.add_annotation(
            t,
            "disease virus",
            Category::Disease,
            "u",
            vec![Attachment::cells(oid, &[1])],
        )
        .unwrap();
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            cols: vec![0],
            eliminate: true,
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows[0].values, vec![Value::Int(1)]);
        let obj = rows[0].summary_by_name("C").unwrap();
        let instn_core::summary::Rep::Classifier(c) = &obj.rep else {
            panic!()
        };
        assert_eq!(
            c.count("Disease"),
            Some(1),
            "column-1 annotation eliminated"
        );
    }

    #[test]
    fn nested_loop_join_merges_summaries() {
        let (db, t, oids) = setup(4);
        let mut db = db;
        // Attach one annotation to both tuple 1 and tuple 2 (common).
        db.add_annotation(
            t,
            "disease on both",
            Category::Disease,
            "u",
            vec![Attachment::row(oids[1]), Attachment::row(oids[2])],
        )
        .unwrap();
        let mut ctx = ExecContext::new(&db);
        // Self-join on id=id-1 shifted: join tuples with equal family.
        let plan = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: true,
                }),
                pred: Expr::col_cmp(0, CmpOp::Eq, Value::Int(1)),
            }),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: true,
                }),
                pred: Expr::col_cmp(0, CmpOp::Eq, Value::Int(2)),
            }),
            pred: JoinPredicate::SummaryCmp {
                left: SummaryExpr::label_value("ClassBird1", "Disease"),
                op: CmpOp::Ne,
                right: SummaryExpr::label_value("ClassBird1", "Disease"),
            },
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 1);
        let merged = rows[0].summary_by_name("ClassBird1").unwrap();
        let instn_core::summary::Rep::Classifier(c) = &merged.rep else {
            panic!()
        };
        // t1: 1 own + shared = 2 disease; t2: 2 own + shared = 3; merged
        // should be 1 + 2 + 1(shared counted once) = 4, not 5.
        assert_eq!(
            c.count("Disease"),
            Some(4),
            "common annotation deduplicated"
        );
        assert_eq!(rows[0].values.len(), 4, "values concatenated");
        assert!(rows[0].source.is_none());
    }

    #[test]
    fn index_join_equals_nested_loop() {
        let (db, t, _) = setup(6);
        let mut db = db;
        let s = db
            .create_table(
                "S",
                Schema::of(&[("c1", ColumnType::Int), ("v", ColumnType::Text)]),
            )
            .unwrap();
        for i in 0..12i64 {
            db.insert_tuple(s, vec![Value::Int(i % 6), Value::Text(format!("s{i}"))])
                .unwrap();
        }
        let cidx = ColumnIndex::build(&db, s, 0).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_column_index(cidx);
        let left = PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        };
        let nl = PhysicalPlan::NestedLoopJoin {
            left: Box::new(left.clone()),
            right: Box::new(PhysicalPlan::SeqScan {
                table: s,
                with_summaries: false,
            }),
            pred: JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            },
        };
        let ij = PhysicalPlan::IndexJoin {
            left: Box::new(left),
            right_table: s,
            left_col: 0,
            right_col: 0,
            residual: None,
            with_summaries: false,
        };
        let a = ctx.execute(&nl).unwrap();
        let b = ctx.execute(&ij).unwrap();
        assert_eq!(a.len(), 12);
        assert_eq!(a.len(), b.len());
        let mut ka: Vec<String> = a.iter().map(|r| format!("{:?}", r.values)).collect();
        let mut kb: Vec<String> = b.iter().map(|r| format!("{:?}", r.values)).collect();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
    }

    #[test]
    fn summary_index_join_equals_nested_loop() {
        // Two-version workload: V2 tuples with matching disease counts.
        let (db, t, _) = setup(8);
        let idx = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("sij", idx);
        let probe_key = SummaryExpr::label_value("ClassBird1", "Disease");
        let pred = JoinPredicate::SummaryCmp {
            left: probe_key.clone(),
            op: CmpOp::Eq,
            right: SummaryExpr::label_value("ClassBird1", "Disease"),
        };
        let nl = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred,
        };
        let sij = PhysicalPlan::SummaryIndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            left_key: probe_key,
            index: "sij".into(),
            label: "Disease".into(),
            residual: None,
            with_summaries: true,
        };
        let a = ctx.execute(&nl).unwrap();
        let b = ctx.execute(&sij).unwrap();
        assert_eq!(a.len(), 8, "distinct counts -> diagonal only");
        assert_eq!(a.len(), b.len());
        let keys = |rows: &[AnnotatedTuple]| {
            let mut v: Vec<String> = rows.iter().map(|r| format!("{:?}", r.values)).collect();
            v.sort();
            v
        };
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn summary_index_join_respects_residual() {
        let (db, t, _) = setup(8);
        let idx = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("sij", idx);
        let plan = PhysicalPlan::SummaryIndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            left_key: SummaryExpr::label_value("ClassBird1", "Disease"),
            index: "sij".into(),
            label: "Disease".into(),
            residual: Some(JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            }),
            with_summaries: false,
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 8, "residual keeps the diagonal");
        // Unknown index errors.
        let bad = PhysicalPlan::SummaryIndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            left_key: SummaryExpr::label_value("ClassBird1", "Disease"),
            index: "missing".into(),
            label: "Disease".into(),
            residual: None,
            with_summaries: false,
        };
        assert!(matches!(
            ctx.execute(&bad),
            Err(QueryError::UnknownIndex(_))
        ));
    }

    #[test]
    fn index_join_without_index_errors() {
        let (db, t, _) = setup(2);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::IndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            right_table: t,
            left_col: 0,
            right_col: 0,
            residual: None,
            with_summaries: false,
        };
        assert!(matches!(ctx.execute(&plan), Err(QueryError::BadPlan(_))));
    }

    #[test]
    fn summary_sort_mem_and_disk_agree() {
        let (db, t, oids) = setup(9);
        let mut ctx = ExecContext::new(&db);
        let base = PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        };
        let key = SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease"));
        let mem = PhysicalPlan::Sort {
            input: Box::new(base.clone()),
            key: key.clone(),
            desc: true,
            disk: false,
        };
        let disk = PhysicalPlan::Sort {
            input: Box::new(base),
            key,
            desc: true,
            disk: true,
        };
        let a = ctx.execute(&mem).unwrap();
        db.stats().reset();
        let b = ctx.execute(&disk).unwrap();
        let disk_io = db.stats().snapshot();
        let ao: Vec<Oid> = a.iter().filter_map(|r| r.oid()).collect();
        let bo: Vec<Oid> = b.iter().filter_map(|r| r.oid()).collect();
        let mut expect = oids.clone();
        expect.reverse();
        assert_eq!(ao, expect, "descending disease counts");
        assert_eq!(ao, bo, "disk sort agrees with memory sort");
        assert!(disk_io.heap_writes > 0, "disk sort spills");
    }

    #[test]
    fn external_sort_with_tiny_memory_spills_multiple_runs() {
        let (db, t, _) = setup(20);
        let mut ctx = ExecContext::new(&db);
        ctx.sort_mem = 4;
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            key: SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease")),
            desc: false,
            disk: true,
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 20);
        let counts: Vec<Value> = rows
            .iter()
            .map(|r| SummaryExpr::label_value("ClassBird1", "Disease").eval(r))
            .collect();
        for w in counts.windows(2) {
            assert!(w[0].cmp_sql(&w[1]) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn group_by_merges_summaries_and_counts() {
        let (db, t, _) = setup(9);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::GroupBy {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            cols: vec![1],
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 3, "three families");
        let total: i64 = rows.iter().map(|r| r.values[1].as_int().unwrap()).sum();
        assert_eq!(total, 9);
        // Each group's merged classifier counts all members' annotations.
        for r in &rows {
            let obj = r.summary_by_name("ClassBird1").unwrap();
            let instn_core::summary::Rep::Classifier(c) = &obj.rep else {
                panic!()
            };
            assert_eq!(
                c.count("Behavior"),
                Some(r.values[1].as_int().unwrap() as u64),
                "one behavior annotation per member"
            );
        }
    }

    #[test]
    fn summary_object_filter_keeps_tuples() {
        let (db, t, _) = setup(3);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::SummaryObjectFilter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: ObjectPred::NameEq("NoSuchInstance".into()),
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 3, "tuples survive with empty summary sets");
        assert!(rows.iter().all(|r| r.summary_count() == 0));
    }

    #[test]
    fn limit_truncates() {
        let (db, t, _) = setup(7);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            n: 3,
        };
        assert_eq!(ctx.execute(&plan).unwrap().len(), 3);
    }

    #[test]
    fn distinct_collapses_and_merges() {
        let (db, t, _) = setup(6);
        let mut ctx = ExecContext::new(&db);
        // Project to the family column only, then deduplicate.
        let plan = PhysicalPlan::Distinct {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: true,
                }),
                cols: vec![1],
                eliminate: true,
            }),
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 3, "three families");
        // Merged summaries cover all underlying birds' annotations.
        let disease: i64 = rows
            .iter()
            .map(|r| {
                SummaryExpr::label_value("ClassBird1", "Disease")
                    .eval(r)
                    .as_int()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(disease, (0..6).sum::<i64>());
        // An input with no duplicates is unchanged.
        let plan = PhysicalPlan::Distinct {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
        };
        assert_eq!(ctx.execute(&plan).unwrap().len(), 6);
    }

    #[test]
    fn explain_renders_the_tree() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::SummaryIndexScan {
                        index: "idx".into(),
                        label: "Disease".into(),
                        lo: Some(5),
                        hi: None,
                        propagate: true,
                        reverse: true,
                    }),
                    pred: Expr::Const(Value::Bool(true)),
                }),
                key: SortKey::Summary(SummaryExpr::label_value("C", "Disease")),
                desc: true,
                disk: true,
            }),
            n: 10,
        };
        let shown = format!("{plan}");
        assert!(shown.contains("Limit(10)"));
        assert!(shown.contains("Sort(O, desc, external)"));
        assert!(shown.contains("SummaryIndexScan(idx, Disease in [5, +∞], desc)"));
        // Indentation deepens down the tree.
        let lines: Vec<&str> = shown.lines().collect();
        assert!(lines[1].starts_with("  "));
        assert!(lines[3].starts_with("      "));
    }

    #[test]
    fn data_column_sort_and_like_filter() {
        let (db, t, _) = setup(10);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: false,
                }),
                pred: Expr::Like(Box::new(Expr::Column(1)), "fam%".into()),
            }),
            key: SortKey::Column(0),
            desc: true,
            disk: false,
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 10);
        let ids: Vec<i64> = rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
        assert_eq!(ids, (0..10).rev().collect::<Vec<i64>>());
    }

    #[test]
    fn combined_contains_join_predicate_executes() {
        // Snippets on both sides; the union must contain all keywords.
        let mut db = Database::new();
        let t = db
            .create_table("T", Schema::of(&[("id", ColumnType::Int)]))
            .unwrap();
        db.link_instance(
            t,
            "Snips",
            InstanceKind::Snippet {
                min_chars: 5,
                max_chars: 200,
            },
            false,
        )
        .unwrap();
        let a = db.insert_tuple(t, vec![Value::Int(1)]).unwrap();
        let b = db.insert_tuple(t, vec![Value::Int(2)]).unwrap();
        db.add_annotation(
            t,
            "alpha keyword here today",
            Category::Comment,
            "u",
            vec![Attachment::row(a)],
        )
        .unwrap();
        db.add_annotation(
            t,
            "beta keyword elsewhere now",
            Category::Comment,
            "u",
            vec![Attachment::row(b)],
        )
        .unwrap();
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: JoinPredicate::CombinedContains {
                instance: "Snips".into(),
                keywords: vec!["alpha".into(), "beta".into()],
            },
        };
        let rows = ctx.execute(&plan).unwrap();
        // Only cross pairs (a,b) and (b,a) have both keywords in the union;
        // (a,a) and (b,b) have one each.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn index_join_applies_residual_predicate() {
        let (db, t, _) = setup(6);
        let mut db = db;
        let s = db
            .create_table(
                "S2",
                Schema::of(&[("c1", ColumnType::Int), ("flag", ColumnType::Int)]),
            )
            .unwrap();
        for i in 0..6i64 {
            db.insert_tuple(s, vec![Value::Int(i), Value::Int(i % 2)])
                .unwrap();
        }
        let cidx = ColumnIndex::build(&db, s, 0).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_column_index(cidx);
        // Join on id with a residual restricting to odd inner flags.
        let plan = PhysicalPlan::IndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            right_table: s,
            left_col: 0,
            right_col: 0,
            residual: Some(JoinPredicate::SummaryCmp {
                // Degenerate summary predicate is awkward here; use DataEq on
                // the flag against itself via a data predicate instead:
                left: SummaryExpr::SetSize,
                op: CmpOp::Eq,
                right: SummaryExpr::SetSize,
            }),
            with_summaries: false,
        };
        let rows = ctx.execute(&plan).unwrap();
        assert_eq!(rows.len(), 6, "trivially-true residual keeps all matches");
        // A residual that never holds drops everything.
        let plan = PhysicalPlan::IndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            right_table: s,
            left_col: 0,
            right_col: 0,
            residual: Some(JoinPredicate::SummaryCmp {
                left: SummaryExpr::SetSize,
                op: CmpOp::Ne,
                right: SummaryExpr::SetSize,
            }),
            with_summaries: false,
        };
        assert!(ctx.execute(&plan).unwrap().is_empty());
    }

    #[test]
    fn query_error_display_variants() {
        let variants: Vec<QueryError> = vec![
            QueryError::UnknownTable("T".into()),
            QueryError::UnknownColumn("c".into()),
            QueryError::UnknownIndex("i".into()),
            QueryError::NotBoolean("5".into()),
            QueryError::BadPlan("m".into()),
            QueryError::Core(instn_core::CoreError::AnnotationNotFound(3)),
        ];
        for v in variants {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn spill_roundtrip_preserves_tuples() {
        let (db, t, _) = setup(3);
        let rows = db.scan_annotated(t).unwrap();
        for r in &rows {
            let back = decode_annotated(&encode_annotated(r)).unwrap();
            assert_eq!(&back, r);
        }
    }

    /// The tentpole regression: LIMIT k over a (backward-pointer) summary
    /// index scan must read k heap pages, not table-size many — the pull
    /// pipeline stops the scan as soon as the cap is reached.
    #[test]
    fn limit_over_summary_index_scan_reads_proportional_to_k() {
        let (db, t, _) = setup(30);
        let idx = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("idx", idx);
        let limited = |k: usize| PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::SummaryIndexScan {
                index: "idx".into(),
                label: "Disease".into(),
                lo: None,
                hi: None,
                propagate: false,
                reverse: true,
            }),
            n: k,
        };
        let heap_reads = |plan: &PhysicalPlan, ctx: &mut ExecContext<'_>| {
            db.stats().reset();
            let rows = ctx.execute(plan).unwrap();
            (rows.len(), db.stats().snapshot().heap_reads)
        };
        let (n3, io3) = heap_reads(&limited(3), &mut ctx);
        let (n10, io10) = heap_reads(&limited(10), &mut ctx);
        let (nall, io_all) = heap_reads(&limited(usize::MAX), &mut ctx);
        assert_eq!((n3, n10, nall), (3, 10, 30));
        // Backward pointers: exactly one heap read per produced tuple.
        assert_eq!(io3, 3, "k=3 reads 3 heap pages");
        assert_eq!(io10, 10, "k=10 reads 10 heap pages");
        assert_eq!(io_all, 30, "unlimited scan reads every tuple");
    }

    /// Once LIMIT has produced its k tuples, further pulls charge no I/O at
    /// all (the child is never pulled again).
    #[test]
    fn stream_stops_charging_io_after_limit_is_reached() {
        let (db, t, _) = setup(12);
        let idx = SummaryBTree::bulk_build(&db, t, "ClassBird1", PointerMode::Backward).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("idx", idx);
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::SummaryIndexScan {
                index: "idx".into(),
                label: "Disease".into(),
                lo: None,
                hi: None,
                propagate: true,
                reverse: true,
            }),
            n: 5,
        };
        let mut stream = ctx.open_stream(&plan).unwrap();
        for _ in 0..5 {
            assert!(stream.next_tuple().unwrap().is_some());
        }
        let at_cap = db.stats().snapshot();
        assert!(stream.next_tuple().unwrap().is_none());
        assert!(stream.next_tuple().unwrap().is_none());
        let after = db.stats().snapshot();
        assert_eq!(
            after.since(&at_cap).total(),
            0,
            "exhausted LIMIT performs no physical I/O"
        );
        assert_eq!(
            after.since(&at_cap).logical_total(),
            0,
            "exhausted LIMIT performs no logical I/O either"
        );
        let metrics = stream.close().unwrap();
        assert_eq!(metrics.rows, 5);
        assert_eq!(metrics.children[0].rows, 5, "scan produced only k tuples");
    }

    /// Block NL join: an inner that fits the sort budget is materialized
    /// once and reused across outer blocks instead of being re-executed.
    #[test]
    fn nl_join_caches_small_inner_across_blocks() {
        // Plain tables (no annotations): the outer spans three NL blocks.
        let mut db = Database::new();
        let outer = db
            .create_table("Outer", Schema::of(&[("k", ColumnType::Int)]))
            .unwrap();
        let inner = db
            .create_table("Inner", Schema::of(&[("k", ColumnType::Int)]))
            .unwrap();
        let n_outer = 2 * NL_BLOCK_SIZE + NL_BLOCK_SIZE / 2;
        for i in 0..n_outer {
            db.insert_tuple(outer, vec![Value::Int(i as i64 % 7)])
                .unwrap();
        }
        for i in 0..7 {
            db.insert_tuple(inner, vec![Value::Int(i)]).unwrap();
        }
        let plan = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: outer,
                with_summaries: false,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                table: inner,
                with_summaries: false,
            }),
            pred: JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            },
        };
        // A: caching on (inner fits the default budget).
        let mut ctx = ExecContext::new(&db);
        db.stats().reset();
        let (rows_cached, metrics_cached) = ctx.execute_with_metrics(&plan).unwrap();
        let io_cached = db.stats().snapshot().total();
        // B: caching off (budget 0 — nothing "fits in memory").
        let mut ctx = ExecContext::new(&db);
        ctx.sort_mem = 0;
        db.stats().reset();
        let (rows_rescan, metrics_rescan) = ctx.execute_with_metrics(&plan).unwrap();
        let io_rescan = db.stats().snapshot().total();
        assert_eq!(rows_cached, rows_rescan, "caching must not change results");
        assert_eq!(rows_cached.len(), n_outer, "every outer row matches once");
        assert_eq!(
            metrics_cached.children[1].opens, 1,
            "cached inner is executed once"
        );
        assert_eq!(
            metrics_rescan.children[1].opens, 3,
            "uncached inner re-executes once per outer block"
        );
        assert!(
            io_rescan > io_cached,
            "re-scanning the inner costs I/O: {io_rescan} <= {io_cached}"
        );
    }

    /// execute_with_metrics reports rows emitted per operator, inclusively
    /// metered I/O, and a renderable tree.
    #[test]
    fn metrics_report_rows_per_operator() {
        let (db, t, _) = setup(6);
        let mut ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("ClassBird1", "Disease", CmpOp::Ge, 4),
        };
        let (rows, metrics) = ctx.execute_with_metrics(&plan).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(metrics.label, "Filter(σ/S)");
        assert_eq!(metrics.rows, 2);
        assert_eq!(metrics.children.len(), 1);
        assert_eq!(metrics.children[0].label, "SeqScan(table#0, +summaries)");
        assert_eq!(metrics.children[0].rows, 6, "scan streamed all tuples");
        assert!(
            metrics.logical_io >= metrics.children[0].logical_io,
            "parent I/O is inclusive of its subtree"
        );
        let report = metrics.render();
        assert!(report.contains("Filter(σ/S) (rows=2"));
        assert!(report.contains("SeqScan(table#0, +summaries) (rows=6"));
    }
}
