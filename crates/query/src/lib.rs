//! # instn-query
//!
//! The extended query engine: standard SQL operators with summary
//! propagation (§2.2) plus the new summary-based operators of §3.2 —
//! filter `F`, selection `S`, join `J`, and sort `O` — implemented as
//! first-class *physical operators*, not UDFs, exactly as the paper argues
//! they must be for the optimizer to reason about them.
//!
//! Modules:
//!
//! * [`expr`] — scalar expressions over data columns *and* summary objects,
//!   exposing the §3.1 manipulation functions (`$`-set functions,
//!   classifier / snippet / cluster object functions),
//! * [`dataindex`] — standard B-Tree indexes on data columns (the substrate
//!   for index-based joins in Figures 14–15),
//! * [`plan`] — the logical algebra: standard and summary-based operators in
//!   a single plan language,
//! * [`exec`] — the physical operators and the executor, including
//!   index scans over Summary-BTrees, baseline-scheme scans, nested-loop and
//!   index joins, in-memory and external (disk) sorts, and grouping with
//!   summary merging,
//! * [`lower`] — the naive logical → physical lowering (the
//!   "optimization-disabled" baseline; the real optimizer lives in
//!   `instn-opt`),
//! * [`session`] — the multi-session layer: [`session::SharedDatabase`]
//!   (readers-writer over the engine) and [`session::Session`] (per-client
//!   index registry with revision-stamped staleness detection), through
//!   which N threads run the executor concurrently.

pub mod dataindex;
pub mod exec;
pub mod expr;
pub mod lower;
pub mod plan;
pub mod plan_cache;
pub mod session;

pub use dataindex::ColumnIndex;
pub use exec::{
    default_dop, parallel_fragment_shape, parallelize_plan, parallelize_plan_where, ExecConfig,
    ExecContext, IndexRegistry, MaintenanceReport, OpMetrics, PhysicalPlan, TupleStream,
    DEFAULT_MORSEL_ROWS,
};
pub use expr::{CmpOp, Expr, ObjFunc, ObjRef, ObjectPred, SummaryExpr};
pub use plan::{JoinPredicate, LogicalPlan, SortKey};
pub use plan_cache::{
    normalize_statement, plan_cache_enabled_from_env, CachedPlan, PlanCache, PlanCacheStats,
    PlanLookup, PlanStamp, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use session::{IndexDescriptors, Session, SharedDatabase};

/// Errors raised during planning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Underlying engine failure.
    Core(instn_core::CoreError),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced index does not exist in the execution context.
    UnknownIndex(String),
    /// A predicate evaluated to a non-boolean value.
    NotBoolean(String),
    /// Plan shape not executable (e.g. summary sort on unordered input).
    BadPlan(String),
    /// The engine `RwLock` is poisoned: a thread panicked while holding the
    /// exclusive write guard, so the engine state is unknown. Serving paths
    /// surface this as a fail-fast error instead of a process abort.
    EnginePoisoned,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Core(e) => write!(f, "engine: {e}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::UnknownIndex(i) => write!(f, "unknown index: {i}"),
            QueryError::NotBoolean(e) => write!(f, "predicate is not boolean: {e}"),
            QueryError::BadPlan(m) => write!(f, "bad plan: {m}"),
            QueryError::EnginePoisoned => write!(
                f,
                "engine lock poisoned: a writer panicked mid-mutation and the \
                 engine state is unknown"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<instn_core::CoreError> for QueryError {
    fn from(e: instn_core::CoreError) -> Self {
        QueryError::Core(e)
    }
}

impl From<instn_storage::StorageError> for QueryError {
    fn from(e: instn_storage::StorageError) -> Self {
        QueryError::Core(instn_core::CoreError::Storage(e))
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
