//! The equivalence and transformation rules of §5.1.
//!
//! Implemented rewrites (numbered as in the paper):
//!
//! * **Rule 1** — `S_p(σ_c(R)) = σ_c(S_p(R))`: σ and `S` commute (they touch
//!   disjoint halves of the tuple), both directions.
//! * **Rule 2** — `S_p(R ⋈ S) = S_p(R) ⋈ S` iff `p` is on instances linked
//!   to R only: push summary selection below the join.
//! * **Rules 3–6** — order preservation: handled at physical planning time
//!   (σ, `S`, and order-preserving joins keep a Summary-BTree's interesting
//!   order, letting the planner eliminate the `O` sort — see
//!   [`crate::planner`]).
//! * **Rule 7** — `F_p(R ⋈ S) = F_p(R) ⋈ S` iff `p`'s instances are on R
//!   only.
//! * **Rule 8** — `F_p(R ⋈ S) = F_p(R) ⋈ F_p(S)` iff `p` is structural.
//! * **Rule 9** — `σ_c(J_p(R,S)) = J_p(σ_c(R), S)` iff `c` is on R's
//!   attributes (column positions within R's arity).
//! * **Rule 10** — `S_p1(J_p2(R,S)) = J_p2(S_p1(R), S)` iff `p1`'s instances
//!   are on R only.
//! * **Rule 11** — `T ⋈_c J_p(R,S) = J_p(T ⋈_c R, S)` iff `p`'s instances
//!   are not on T and `c` does not involve S's attributes.
//!
//! Each rewrite preserves the output column order, so predicates and
//! projections above the rewritten node need no re-indexing.

use std::collections::{HashMap, HashSet};

use instn_core::db::Database;
use instn_query::plan::{JoinPredicate, LogicalPlan};
use instn_storage::TableId;

/// Side-condition context: which instances each table carries, and base
/// table arities (for attribute-side tests).
#[derive(Debug, Clone, Default)]
pub struct RuleContext {
    table_instances: HashMap<String, HashSet<String>>,
    table_arities: HashMap<String, usize>,
}

impl RuleContext {
    /// Build from the live database.
    pub fn from_db(db: &Database) -> RuleContext {
        let mut ctx = RuleContext::default();
        let mut tid = 0u32;
        while let Ok(table) = db.table(TableId(tid)) {
            let name = table.name().to_string();
            ctx.table_arities
                .insert(name.clone(), table.schema().arity());
            let insts: HashSet<String> = db
                .instances(TableId(tid))
                .iter()
                .map(|i| i.name.clone())
                .collect();
            ctx.table_instances.insert(name, insts);
            tid += 1;
        }
        ctx
    }

    /// Manual construction (tests).
    pub fn with_table(mut self, name: &str, arity: usize, instances: &[&str]) -> Self {
        self.table_arities.insert(name.to_string(), arity);
        self.table_instances.insert(
            name.to_string(),
            instances.iter().map(|s| s.to_string()).collect(),
        );
        self
    }

    /// Instances available on a plan subtree (union over its base tables).
    pub fn subtree_instances(&self, plan: &LogicalPlan) -> HashSet<String> {
        plan.tables()
            .iter()
            .flat_map(|t| self.table_instances.get(t).cloned().unwrap_or_default())
            .collect()
    }

    /// Output arity of a plan.
    pub fn output_arity(&self, plan: &LogicalPlan) -> usize {
        match plan {
            LogicalPlan::Scan { table } => self.table_arities.get(table).copied().unwrap_or(0),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::SummarySelect { input, .. }
            | LogicalPlan::SummaryFilter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => self.output_arity(input),
            LogicalPlan::Project { cols, .. } => cols.len(),
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::SummaryJoin { left, right, .. } => {
                self.output_arity(left) + self.output_arity(right)
            }
            LogicalPlan::GroupBy { cols, .. } => cols.len() + 1,
        }
    }
}

/// Column positions referenced by an expression.
fn expr_columns(pred: &instn_query::expr::Expr, out: &mut Vec<usize>) {
    use instn_query::expr::Expr;
    match pred {
        Expr::Const(_) | Expr::Summary(_) => {}
        Expr::Column(i) => out.push(*i),
        Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            expr_columns(a, out);
            expr_columns(b, out);
        }
        Expr::Not(a) | Expr::Like(a, _) => expr_columns(a, out),
    }
}

/// Whether `pred`'s referenced instances all live on `side` and none on
/// `other` — the "on instances in R not in S" side condition.
fn instances_only_on(
    ctx: &RuleContext,
    instances: &[String],
    side: &LogicalPlan,
    other: &LogicalPlan,
) -> bool {
    if instances.is_empty() {
        return false;
    }
    let on_side = ctx.subtree_instances(side);
    let on_other = ctx.subtree_instances(other);
    instances
        .iter()
        .all(|i| on_side.contains(i) && !on_other.contains(i))
}

/// All plans reachable from `plan` by applying one rule at one node.
pub fn apply_rules_once(plan: &LogicalPlan, ctx: &RuleContext) -> Vec<LogicalPlan> {
    let mut out = Vec::new();
    rewrite_node(plan, ctx, &mut out);
    out
}

/// Enumerate rule-equivalent plans up to `limit` alternatives (fixpoint
/// bounded breadth-first closure).
pub fn enumerate_equivalent(
    plan: &LogicalPlan,
    ctx: &RuleContext,
    limit: usize,
) -> Vec<LogicalPlan> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut all: Vec<LogicalPlan> = Vec::new();
    let mut frontier = vec![plan.clone()];
    seen.insert(format!("{plan:?}"));
    all.push(plan.clone());
    while let Some(p) = frontier.pop() {
        if all.len() >= limit {
            break;
        }
        for alt in apply_rules_once(&p, ctx) {
            let key = format!("{alt:?}");
            if seen.insert(key) {
                all.push(alt.clone());
                frontier.push(alt);
                if all.len() >= limit {
                    break;
                }
            }
        }
    }
    all
}

/// Produce rewrites of the whole plan with one rule applied somewhere.
fn rewrite_node(plan: &LogicalPlan, ctx: &RuleContext, out: &mut Vec<LogicalPlan>) {
    // Rewrites at this node.
    for alt in local_rewrites(plan, ctx) {
        out.push(alt);
    }
    // Rewrites within children, re-wrapped.
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Select { input, pred } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::Select {
                    input: Box::new(alt),
                    pred: pred.clone(),
                });
            }
        }
        LogicalPlan::SummarySelect { input, pred } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::SummarySelect {
                    input: Box::new(alt),
                    pred: pred.clone(),
                });
            }
        }
        LogicalPlan::SummaryFilter { input, pred } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::SummaryFilter {
                    input: Box::new(alt),
                    pred: pred.clone(),
                });
            }
        }
        LogicalPlan::Project { input, cols } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::Project {
                    input: Box::new(alt),
                    cols: cols.clone(),
                });
            }
        }
        LogicalPlan::Join { left, right, pred } => {
            for alt in apply_rules_once(left, ctx) {
                out.push(LogicalPlan::Join {
                    left: Box::new(alt),
                    right: right.clone(),
                    pred: pred.clone(),
                });
            }
            for alt in apply_rules_once(right, ctx) {
                out.push(LogicalPlan::Join {
                    left: left.clone(),
                    right: Box::new(alt),
                    pred: pred.clone(),
                });
            }
        }
        LogicalPlan::SummaryJoin { left, right, pred } => {
            for alt in apply_rules_once(left, ctx) {
                out.push(LogicalPlan::SummaryJoin {
                    left: Box::new(alt),
                    right: right.clone(),
                    pred: pred.clone(),
                });
            }
            for alt in apply_rules_once(right, ctx) {
                out.push(LogicalPlan::SummaryJoin {
                    left: left.clone(),
                    right: Box::new(alt),
                    pred: pred.clone(),
                });
            }
        }
        LogicalPlan::Sort { input, key, desc } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::Sort {
                    input: Box::new(alt),
                    key: key.clone(),
                    desc: *desc,
                });
            }
        }
        LogicalPlan::GroupBy { input, cols } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::GroupBy {
                    input: Box::new(alt),
                    cols: cols.clone(),
                });
            }
        }
        LogicalPlan::Distinct { input } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::Distinct {
                    input: Box::new(alt),
                });
            }
        }
        LogicalPlan::Limit { input, n } => {
            for alt in apply_rules_once(input, ctx) {
                out.push(LogicalPlan::Limit {
                    input: Box::new(alt),
                    n: *n,
                });
            }
        }
    }
}

/// Rule applications rooted at this node.
fn local_rewrites(plan: &LogicalPlan, ctx: &RuleContext) -> Vec<LogicalPlan> {
    let mut out = Vec::new();
    match plan {
        // Rule 1 (→): S(σ(R)) = σ(S(R)).
        LogicalPlan::SummarySelect { input, pred } => {
            if let LogicalPlan::Select {
                input: inner,
                pred: data_pred,
            } = input.as_ref()
            {
                out.push(LogicalPlan::Select {
                    input: Box::new(LogicalPlan::SummarySelect {
                        input: inner.clone(),
                        pred: pred.clone(),
                    }),
                    pred: data_pred.clone(),
                });
            }
            // Rule 2: push S below ⋈; Rule 10: push S below J.
            match input.as_ref() {
                LogicalPlan::Join {
                    left,
                    right,
                    pred: jp,
                } => {
                    push_selection_sides(pred, left, right, jp, ctx, false, &mut out);
                }
                LogicalPlan::SummaryJoin {
                    left,
                    right,
                    pred: jp,
                } => {
                    push_selection_sides(pred, left, right, jp, ctx, true, &mut out);
                }
                _ => {}
            }
        }
        // Rule 1 (←): σ(S(R)) = S(σ(R)).
        LogicalPlan::Select { input, pred } => {
            if let LogicalPlan::SummarySelect {
                input: inner,
                pred: sum_pred,
            } = input.as_ref()
            {
                out.push(LogicalPlan::SummarySelect {
                    input: Box::new(LogicalPlan::Select {
                        input: inner.clone(),
                        pred: pred.clone(),
                    }),
                    pred: sum_pred.clone(),
                });
            }
            // Rule 9: σ_c(J(R,S)) = J(σ_c(R), S) when c is on R's columns
            // (and the mirrored push to S with shifted columns).
            if let LogicalPlan::SummaryJoin {
                left,
                right,
                pred: jp,
            } = input.as_ref()
            {
                let mut cols = Vec::new();
                expr_columns(pred, &mut cols);
                let left_arity = ctx.output_arity(left);
                if !cols.is_empty() && cols.iter().all(|&c| c < left_arity) {
                    out.push(LogicalPlan::SummaryJoin {
                        left: Box::new(LogicalPlan::Select {
                            input: left.clone(),
                            pred: pred.clone(),
                        }),
                        right: right.clone(),
                        pred: jp.clone(),
                    });
                }
            }
        }
        // Rules 7/8: push F below ⋈.
        LogicalPlan::SummaryFilter { input, pred } => {
            if let LogicalPlan::Join {
                left,
                right,
                pred: jp,
            } = input.as_ref()
            {
                let insts = pred.referenced_instances();
                // Rule 7: all of p's instances on the left only.
                if instances_only_on(ctx, &insts, left, right) {
                    out.push(LogicalPlan::Join {
                        left: Box::new(LogicalPlan::SummaryFilter {
                            input: left.clone(),
                            pred: pred.clone(),
                        }),
                        right: right.clone(),
                        pred: jp.clone(),
                    });
                }
                if instances_only_on(ctx, &insts, right, left) {
                    out.push(LogicalPlan::Join {
                        left: left.clone(),
                        right: Box::new(LogicalPlan::SummaryFilter {
                            input: right.clone(),
                            pred: pred.clone(),
                        }),
                        pred: jp.clone(),
                    });
                }
                // Rule 8: structural predicates push to both sides.
                if pred.is_structural() {
                    out.push(LogicalPlan::Join {
                        left: Box::new(LogicalPlan::SummaryFilter {
                            input: left.clone(),
                            pred: pred.clone(),
                        }),
                        right: Box::new(LogicalPlan::SummaryFilter {
                            input: right.clone(),
                            pred: pred.clone(),
                        }),
                        pred: jp.clone(),
                    });
                }
            }
        }
        // Rule 11: T ⋈_c J_p(R,S) = J_p(T ⋈_c R, S).
        LogicalPlan::Join { left, right, pred } => {
            if let LogicalPlan::SummaryJoin {
                left: r,
                right: s,
                pred: p,
            } = right.as_ref()
            {
                let p_insts = p.referenced_instances();
                let t_insts = ctx.subtree_instances(left);
                let p_avoids_t =
                    !p_insts.is_empty() && p_insts.iter().all(|i| !t_insts.contains(i));
                // c must not involve S's attributes: its right-side column
                // must fall within R's arity.
                let r_arity = ctx.output_arity(r);
                let c_ok = match pred.data_eq() {
                    Some((_, rc)) => rc < r_arity,
                    None => false,
                };
                if p_avoids_t && c_ok {
                    out.push(LogicalPlan::SummaryJoin {
                        left: Box::new(LogicalPlan::Join {
                            left: left.clone(),
                            right: r.clone(),
                            pred: pred.clone(),
                        }),
                        right: s.clone(),
                        pred: p.clone(),
                    });
                }
            }
        }
        _ => {}
    }
    out
}

/// Rules 2/10: push a summary selection to the join side carrying all of its
/// instances.
fn push_selection_sides(
    pred: &instn_query::expr::Expr,
    left: &LogicalPlan,
    right: &LogicalPlan,
    jp: &JoinPredicate,
    ctx: &RuleContext,
    summary_join: bool,
    out: &mut Vec<LogicalPlan>,
) {
    let insts = pred.referenced_instances();
    let rebuild = |l: LogicalPlan, r: LogicalPlan| {
        if summary_join {
            LogicalPlan::SummaryJoin {
                left: Box::new(l),
                right: Box::new(r),
                pred: jp.clone(),
            }
        } else {
            LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                pred: jp.clone(),
            }
        }
    };
    if instances_only_on(ctx, &insts, left, right) {
        out.push(rebuild(
            LogicalPlan::SummarySelect {
                input: Box::new(left.clone()),
                pred: pred.clone(),
            },
            right.clone(),
        ));
    }
    if instances_only_on(ctx, &insts, right, left) {
        out.push(rebuild(
            left.clone(),
            LogicalPlan::SummarySelect {
                input: Box::new(right.clone()),
                pred: pred.clone(),
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_query::expr::{CmpOp, Expr, ObjectPred, SummaryExpr};
    use instn_storage::Value;

    fn ctx() -> RuleContext {
        RuleContext::default()
            .with_table("R", 3, &["ClassBird1", "TextSummary1"])
            .with_table("S", 2, &["TextSummary1"])
            .with_table("T", 3, &[])
    }

    fn jp() -> JoinPredicate {
        JoinPredicate::DataEq {
            left_col: 0,
            right_col: 0,
        }
    }

    #[test]
    fn rule1_commutes_both_ways() {
        let c = ctx();
        let s_over_sigma = LogicalPlan::scan("R")
            .select(Expr::col_cmp(1, CmpOp::Eq, Value::Int(2)))
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 5));
        let alts = apply_rules_once(&s_over_sigma, &c);
        assert!(alts.iter().any(|a| matches!(
            a,
            LogicalPlan::Select { input, .. }
                if matches!(input.as_ref(), LogicalPlan::SummarySelect { .. })
        )));
        // And back.
        let sigma_over_s = &alts[0];
        let back = apply_rules_once(sigma_over_s, &c);
        assert!(back
            .iter()
            .any(|a| format!("{a:?}") == format!("{s_over_sigma:?}")));
    }

    #[test]
    fn rule2_pushes_s_below_join_only_when_instance_is_one_sided() {
        let c = ctx();
        // Predicate on ClassBird1: linked to R only -> pushable.
        let plan = LogicalPlan::scan("R")
            .join(LogicalPlan::scan("S"), jp())
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 5));
        let alts = apply_rules_once(&plan, &c);
        let pushed = alts.iter().any(|a| {
            matches!(
                a,
                LogicalPlan::Join { left, .. }
                    if matches!(left.as_ref(), LogicalPlan::SummarySelect { .. })
            )
        });
        assert!(pushed, "rule 2 should fire");

        // Predicate on TextSummary1: linked to BOTH -> not pushable.
        let plan2 = LogicalPlan::scan("R")
            .join(LogicalPlan::scan("S"), jp())
            .summary_select(Expr::Cmp(
                Box::new(Expr::Summary(SummaryExpr::Obj {
                    obj: instn_query::expr::ObjRef::ByName("TextSummary1".into()),
                    func: instn_query::expr::ObjFunc::ContainsUnion(vec!["x".into()]),
                })),
                CmpOp::Eq,
                Box::new(Expr::Const(Value::Bool(true))),
            ));
        let alts2 = apply_rules_once(&plan2, &c);
        let pushed2 = alts2.iter().any(|a| {
            matches!(
                a,
                LogicalPlan::Join { left, right, .. }
                    if matches!(left.as_ref(), LogicalPlan::SummarySelect { .. })
                        || matches!(right.as_ref(), LogicalPlan::SummarySelect { .. })
            )
        });
        assert!(
            !pushed2,
            "rule 2 must not fire when the instance is on both sides"
        );
    }

    #[test]
    fn rule7_pushes_filter_to_owning_side() {
        let c = ctx();
        let plan = LogicalPlan::scan("R")
            .join(LogicalPlan::scan("T"), jp())
            .summary_filter(ObjectPred::NameEq("ClassBird1".into()));
        let alts = apply_rules_once(&plan, &c);
        assert!(alts.iter().any(|a| matches!(
            a,
            LogicalPlan::Join { left, .. }
                if matches!(left.as_ref(), LogicalPlan::SummaryFilter { .. })
        )));
    }

    #[test]
    fn rule8_pushes_structural_filter_to_both_sides() {
        let c = ctx();
        let plan = LogicalPlan::scan("R")
            .join(LogicalPlan::scan("S"), jp())
            .summary_filter(ObjectPred::TypeEq(
                instn_core::summary::SummaryType::Classifier,
            ));
        let alts = apply_rules_once(&plan, &c);
        assert!(alts.iter().any(|a| matches!(
            a,
            LogicalPlan::Join { left, right, .. }
                if matches!(left.as_ref(), LogicalPlan::SummaryFilter { .. })
                    && matches!(right.as_ref(), LogicalPlan::SummaryFilter { .. })
        )));
        // Non-structural (size) predicates must not double-push.
        let plan2 = LogicalPlan::scan("R")
            .join(LogicalPlan::scan("S"), jp())
            .summary_filter(ObjectPred::SizeCmp(CmpOp::Gt, 1));
        let alts2 = apply_rules_once(&plan2, &c);
        assert!(!alts2.iter().any(|a| matches!(
            a,
            LogicalPlan::Join { left, right, .. }
                if matches!(left.as_ref(), LogicalPlan::SummaryFilter { .. })
                    && matches!(right.as_ref(), LogicalPlan::SummaryFilter { .. })
        )));
    }

    #[test]
    fn rule9_pushes_sigma_below_summary_join() {
        let c = ctx();
        let plan = LogicalPlan::scan("R")
            .summary_join(
                LogicalPlan::scan("S"),
                JoinPredicate::CombinedContains {
                    instance: "TextSummary1".into(),
                    keywords: vec!["k".into()],
                },
            )
            .select(Expr::col_cmp(1, CmpOp::Eq, Value::Int(7)));
        let alts = apply_rules_once(&plan, &c);
        assert!(alts.iter().any(|a| matches!(
            a,
            LogicalPlan::SummaryJoin { left, .. }
                if matches!(left.as_ref(), LogicalPlan::Select { .. })
        )));
        // A predicate on S's columns (index >= R arity) must not push left.
        let plan2 = LogicalPlan::scan("R")
            .summary_join(
                LogicalPlan::scan("S"),
                JoinPredicate::CombinedContains {
                    instance: "TextSummary1".into(),
                    keywords: vec!["k".into()],
                },
            )
            .select(Expr::col_cmp(4, CmpOp::Eq, Value::Int(7)));
        let alts2 = apply_rules_once(&plan2, &c);
        assert!(!alts2.iter().any(|a| matches!(
            a,
            LogicalPlan::SummaryJoin { left, .. }
                if matches!(left.as_ref(), LogicalPlan::Select { .. })
        )));
    }

    #[test]
    fn rule10_pushes_summary_select_below_summary_join() {
        let c = ctx();
        let plan = LogicalPlan::scan("R")
            .summary_join(
                LogicalPlan::scan("S"),
                JoinPredicate::CombinedContains {
                    instance: "TextSummary1".into(),
                    keywords: vec!["k".into()],
                },
            )
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 3));
        let alts = apply_rules_once(&plan, &c);
        assert!(alts.iter().any(|a| matches!(
            a,
            LogicalPlan::SummaryJoin { left, .. }
                if matches!(left.as_ref(), LogicalPlan::SummarySelect { .. })
        )));
    }

    #[test]
    fn rule11_swaps_join_order() {
        let c = ctx();
        // T ⋈ J(R, S) with c on T/R columns and p (TextSummary1) not on T.
        let inner = LogicalPlan::scan("R").summary_join(
            LogicalPlan::scan("S"),
            JoinPredicate::CombinedContains {
                instance: "TextSummary1".into(),
                keywords: vec!["k".into()],
            },
        );
        let plan = LogicalPlan::scan("T").join(inner, jp());
        let alts = apply_rules_once(&plan, &c);
        let swapped = alts.iter().find(|a| {
            matches!(
                a,
                LogicalPlan::SummaryJoin { left, .. }
                    if matches!(left.as_ref(), LogicalPlan::Join { .. })
            )
        });
        assert!(swapped.is_some(), "rule 11 should fire");
    }

    #[test]
    fn rule11_respects_side_conditions() {
        // p's instance IS linked to T -> no rewrite.
        let c = RuleContext::default()
            .with_table("R", 3, &["TextSummary1"])
            .with_table("S", 2, &["TextSummary1"])
            .with_table("T", 3, &["TextSummary1"]);
        let inner = LogicalPlan::scan("R").summary_join(
            LogicalPlan::scan("S"),
            JoinPredicate::CombinedContains {
                instance: "TextSummary1".into(),
                keywords: vec!["k".into()],
            },
        );
        let plan = LogicalPlan::scan("T").join(inner, jp());
        let alts = apply_rules_once(&plan, &c);
        assert!(!alts.iter().any(|a| matches!(
            a,
            LogicalPlan::SummaryJoin { left, .. }
                if matches!(left.as_ref(), LogicalPlan::Join { .. })
        )));
    }

    #[test]
    fn enumeration_bounded_and_includes_original() {
        let c = ctx();
        let plan = LogicalPlan::scan("R")
            .join(LogicalPlan::scan("S"), jp())
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 5))
            .sort(
                instn_query::plan::SortKey::Summary(SummaryExpr::label_value(
                    "ClassBird1",
                    "Disease",
                )),
                false,
            );
        let all = enumerate_equivalent(&plan, &c, 32);
        assert!(all.len() >= 2, "at least the pushdown alternative");
        assert!(all.len() <= 32);
        assert!(all.iter().any(|a| format!("{a:?}") == format!("{plan:?}")));
    }
}
