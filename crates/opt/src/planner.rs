//! The optimizer driver.
//!
//! Pipeline: enumerate rule-equivalent logical plans (§5.1) → lower each to
//! a physical plan choosing access paths, join algorithms, and sort
//! algorithms — including *sort elimination* when a Summary-BTree scan
//! already provides the interesting order (Rules 3–6) → cost every
//! candidate (§5.2) → return the cheapest.

use std::collections::{HashMap, HashSet};

use instn_core::db::Database;
use instn_query::exec::PhysicalPlan;
use instn_query::expr::Expr;
use instn_query::lower::is_base_shape;
use instn_query::plan::{JoinPredicate, LogicalPlan, SortKey};
use instn_query::{QueryError, Result};
use instn_storage::TableId;

use crate::cost::{CostModel, IndexInfo, PlanCost};
use crate::rules::{enumerate_equivalent, RuleContext};
use crate::stats::Statistics;

/// What the planner knows about the available indexes and memory.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Registered Summary-BTrees: name → (table, instance, labels `k`).
    pub summary_indexes: HashMap<String, (TableId, String, usize)>,
    /// Registered baseline indexes: name → (table, instance, labels `k`).
    pub baseline_indexes: HashMap<String, (TableId, String, usize)>,
    /// Available data-column indexes.
    pub column_indexes: HashSet<(TableId, usize)>,
    /// Bound on rule-enumeration alternatives.
    pub max_alternatives: usize,
    /// Tuples that fit the in-memory sort budget.
    pub sort_mem_tuples: usize,
    /// Whether the final output must carry summaries (InsightNotes
    /// propagates by default).
    pub propagate_output: bool,
    /// Buffer-pool capacity (pages) the cost model should assume. `0`
    /// keeps costs identical to the uncached model; [`Optimizer::new`]
    /// fills it in from the database's pool when left at `0`.
    pub cache_pages: usize,
    /// Degree of parallelism available to the executor. `1` (the default)
    /// disables the parallelization post-pass and keeps every plan
    /// identical to the serial planner's output.
    pub dop: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            summary_indexes: HashMap::new(),
            baseline_indexes: HashMap::new(),
            column_indexes: HashSet::new(),
            max_alternatives: 64,
            sort_mem_tuples: instn_query::exec::DEFAULT_SORT_MEM,
            propagate_output: true,
            cache_pages: 0,
            dop: 1,
        }
    }
}

impl PlannerConfig {
    /// Register a Summary-BTree.
    pub fn with_summary_index(
        mut self,
        name: &str,
        table: TableId,
        instance: &str,
        k: usize,
    ) -> Self {
        self.summary_indexes
            .insert(name.to_string(), (table, instance.to_string(), k));
        self
    }

    /// Register a data-column index.
    pub fn with_column_index(mut self, table: TableId, col: usize) -> Self {
        self.column_indexes.insert((table, col));
        self
    }

    /// Assume a buffer pool of `pages` when costing repeated index probes.
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Let the planner parallelize eligible fragments across `dop` workers
    /// (cost-gated: a fragment is only wrapped in an Exchange when the
    /// DOP-aware model prices the wrapped plan cheaper).
    pub fn with_dop(mut self, dop: usize) -> Self {
        self.dop = dop.max(1);
        self
    }

    /// The cost model's view of the indexes.
    pub fn index_info(&self) -> IndexInfo {
        IndexInfo {
            summary: self.summary_indexes.clone(),
            baseline: self.baseline_indexes.clone(),
            columns: self.column_indexes.clone(),
        }
    }

    fn summary_index_on(&self, table: TableId, instance: &str) -> Option<&str> {
        self.summary_indexes
            .iter()
            .find(|(_, (t, i, _))| *t == table && i == instance)
            .map(|(name, _)| name.as_str())
    }
}

/// The chosen plan plus costing/explain metadata.
#[derive(Debug)]
pub struct OptimizedPlan {
    /// The physical plan to execute.
    pub physical: PhysicalPlan,
    /// Its estimated cost.
    pub cost: PlanCost,
    /// The logical alternative it came from (EXPLAIN text).
    pub explain: String,
    /// Number of logical alternatives considered.
    pub considered: usize,
}

/// The extended, summary-aware optimizer.
pub struct Optimizer<'a> {
    db: &'a Database,
    stats: Statistics,
    config: PlannerConfig,
    rule_ctx: RuleContext,
}

impl<'a> Optimizer<'a> {
    /// Build an optimizer, collecting statistics via ANALYZE.
    pub fn new(db: &'a Database, config: PlannerConfig) -> Result<Self> {
        let stats = Statistics::analyze(db)?;
        Ok(Self::with_stats(db, stats, config))
    }

    /// Use pre-collected statistics.
    pub fn with_stats(db: &'a Database, stats: Statistics, mut config: PlannerConfig) -> Self {
        if config.cache_pages == 0 {
            // Cost with the pool the engine actually runs with. A disabled
            // pool (capacity 0) leaves every cost bit-identical.
            config.cache_pages = db.buffer_pool().capacity();
        }
        Self {
            rule_ctx: RuleContext::from_db(db),
            db,
            stats,
            config,
        }
    }

    /// The collected statistics.
    pub fn stats(&self) -> &Statistics {
        &self.stats
    }

    /// The cost model this optimizer prices plans with.
    fn model<'b>(&'b self, info: &'b IndexInfo) -> CostModel<'b> {
        CostModel::with_cache_pages(&self.stats, info, self.config.cache_pages)
            .with_dop(self.config.dop)
    }

    /// Optimize a logical plan: enumerate, lower, cost, pick cheapest.
    pub fn optimize(&self, logical: &LogicalPlan) -> Result<OptimizedPlan> {
        let alternatives =
            enumerate_equivalent(logical, &self.rule_ctx, self.config.max_alternatives);
        let info = self.config.index_info();
        let model = self.model(&info);
        let uses_summaries = self.config.propagate_output || plan_uses_summaries(logical);
        let mut best: Option<(PhysicalPlan, PlanCost, String)> = None;
        for alt in &alternatives {
            let physical = self.lower_opt(alt, uses_summaries, None)?;
            let cost = model.cost(&physical);
            let better = match &best {
                None => true,
                Some((_, c, _)) => cost.total() < c.total(),
            };
            if better {
                best = Some((physical, cost, format!("{alt}")));
            }
        }
        let (physical, mut cost, explain) =
            best.ok_or_else(|| QueryError::BadPlan("no alternative lowered".into()))?;
        // Parallelization post-pass: wrap eligible fragments in an Exchange
        // wherever the DOP-aware model prices the parallel plan cheaper
        // (small fragments stay serial — the morsel/worker startup tax
        // outweighs the divided scan cost).
        let physical = if self.config.dop > 1 {
            let dop = self.config.dop;
            let wrapped = instn_query::exec::parallelize_plan_where(&physical, dop, &|frag| {
                let candidate = PhysicalPlan::Exchange {
                    input: Box::new(frag.clone()),
                    dop,
                };
                model.cost(&candidate).total() < model.cost(frag).total()
            });
            cost = model.cost(&wrapped);
            wrapped
        } else {
            physical
        };
        Ok(OptimizedPlan {
            physical,
            cost,
            explain,
            considered: alternatives.len(),
        })
    }

    /// Cost-aware lowering of one logical alternative.
    ///
    /// `limit` is the tightest LIMIT known to sit above this subtree with
    /// only pipelined operators in between — access-path decisions below a
    /// top-k can then credit early termination (the streaming executor
    /// stops pulling once the limit is satisfied). Pipeline breakers
    /// (GroupBy, Distinct, join inputs) clear it; LIMIT nodes tighten it.
    fn lower_opt(
        &self,
        plan: &LogicalPlan,
        summaries: bool,
        limit: Option<usize>,
    ) -> Result<PhysicalPlan> {
        Ok(match plan {
            LogicalPlan::Scan { table } => PhysicalPlan::SeqScan {
                table: self.db.table_id(table)?,
                with_summaries: summaries,
            },
            LogicalPlan::Select { input, pred } | LogicalPlan::SummarySelect { input, pred } => {
                let seq = PhysicalPlan::Filter {
                    input: Box::new(self.lower_opt(input, summaries, limit)?),
                    pred: pred.clone(),
                };
                // Index path: predicate conjunct answerable by a
                // Summary-BTree directly above a base scan. Both access
                // paths are costed and the cheaper one wins.
                if let LogicalPlan::Scan { table } = input.as_ref() {
                    let tid = self.db.table_id(table)?;
                    if let Some((scan, residual)) = self.try_index_path(tid, pred, summaries) {
                        let indexed = match residual {
                            Some(r) => PhysicalPlan::Filter {
                                input: Box::new(scan),
                                pred: r,
                            },
                            None => scan,
                        };
                        return Ok(self.cheaper_under(indexed, seq, limit));
                    }
                }
                seq
            }
            LogicalPlan::SummaryFilter { input, pred } => PhysicalPlan::SummaryObjectFilter {
                input: Box::new(self.lower_opt(input, summaries, limit)?),
                pred: pred.clone(),
            },
            LogicalPlan::Project { input, cols } => PhysicalPlan::Project {
                input: Box::new(self.lower_opt(input, summaries, limit)?),
                cols: cols.clone(),
                eliminate: is_base_shape(input),
            },
            LogicalPlan::Join { left, right, pred }
            | LogicalPlan::SummaryJoin { left, right, pred } => {
                // A limit above a join doesn't bound either input directly
                // (match multiplicity is unknown at lowering time); the
                // whole-join candidates are still compared under it.
                let nl = PhysicalPlan::NestedLoopJoin {
                    left: Box::new(self.lower_opt(left, summaries, None)?),
                    right: Box::new(self.lower_opt(right, summaries, None)?),
                    pred: pred.clone(),
                };
                // Index join when the inner is a base scan with an index on
                // the join column; costed against the nested loop.
                if let (Some((lc, rc)), LogicalPlan::Scan { table }) =
                    (pred.data_eq(), right.as_ref())
                {
                    let rt = self.db.table_id(table)?;
                    if self.config.column_indexes.contains(&(rt, rc)) {
                        let residual = strip_data_eq(pred);
                        let indexed = PhysicalPlan::IndexJoin {
                            left: Box::new(self.lower_opt(left, summaries, None)?),
                            right_table: rt,
                            left_col: lc,
                            right_col: rc,
                            residual,
                            with_summaries: summaries,
                        };
                        return Ok(self.cheaper_under(indexed, nl, limit));
                    }
                }
                // Index-based summary join (the second J implementation of
                // §5.2): an equality on the inner side's getLabelValue can
                // be answered by probing its Summary-BTree per outer tuple.
                if let (Some((lk, inst, label)), LogicalPlan::Scan { table }) =
                    (summary_eq_probe(pred), right.as_ref())
                {
                    let rt = self.db.table_id(table)?;
                    if let Some(index) = self.config.summary_index_on(rt, &inst) {
                        let indexed = PhysicalPlan::SummaryIndexJoin {
                            left: Box::new(self.lower_opt(left, summaries, None)?),
                            left_key: lk,
                            index: index.to_string(),
                            label,
                            residual: strip_summary_eq(pred),
                            with_summaries: summaries,
                        };
                        return Ok(self.cheaper_under(indexed, nl, limit));
                    }
                }
                nl
            }
            LogicalPlan::Sort { input, key, desc } => {
                if let SortKey::Summary(se) = key {
                    if let Some((instance, label)) = summary_sort_target(se) {
                        // Rules 3–6: sort elimination on an interesting
                        // order. The limit stays visible below: when
                        // elimination fires, the order-providing index scan
                        // IS the streamed subtree the limit terminates
                        // early.
                        let lowered = self.lower_opt(input, summaries, limit)?;
                        if let Some(order) =
                            provided_order(&lowered, self.db, &self.config.summary_indexes)
                        {
                            if order.instance == instance && order.label == label {
                                return Ok(if order.reversed == *desc {
                                    lowered
                                } else {
                                    flip_scan_direction(lowered)
                                });
                            }
                        }
                        // The lowering didn't come out ordered, but an
                        // ordered access path may still exist (full-range
                        // Summary-BTree scan in the requested direction).
                        // Under a top-k limit the streamed, early-
                        // terminating scan often beats sorting everything;
                        // cost both under the limit and keep the winner.
                        if let Some(ordered) =
                            self.order_path(input, &instance, &label, *desc, summaries)?
                        {
                            let sorted = self.blocking_sort(
                                self.lower_opt(input, summaries, None)?,
                                key,
                                *desc,
                            );
                            return Ok(self.cheaper_under(ordered, sorted, limit));
                        }
                    }
                }
                // A limit above a blocking sort cannot shrink its input.
                self.blocking_sort(self.lower_opt(input, summaries, None)?, key, *desc)
            }
            LogicalPlan::GroupBy { input, cols } => PhysicalPlan::GroupBy {
                input: Box::new(self.lower_opt(input, summaries, None)?),
                cols: cols.clone(),
            },
            LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
                input: Box::new(self.lower_opt(input, summaries, None)?),
            },
            LogicalPlan::Limit { input, n } => PhysicalPlan::Limit {
                input: Box::new(self.lower_opt(
                    input,
                    summaries,
                    Some(limit.map_or(*n, |l| l.min(*n))),
                )?),
                n: *n,
            },
        })
    }

    /// Pick the cheaper of two physical alternatives, costing both under
    /// the LIMIT (if any) known to terminate them early.
    fn cheaper_under(
        &self,
        a: PhysicalPlan,
        b: PhysicalPlan,
        limit: Option<usize>,
    ) -> PhysicalPlan {
        let info = self.config.index_info();
        let model = self.model(&info);
        if model.cost_with_limit(&a, limit).total() <= model.cost_with_limit(&b, limit).total() {
            a
        } else {
            b
        }
    }

    /// Wrap a lowered subtree in the blocking sort operator, spilling to
    /// disk when the estimated input exceeds the in-memory budget.
    fn blocking_sort(&self, lowered: PhysicalPlan, key: &SortKey, desc: bool) -> PhysicalPlan {
        let info = self.config.index_info();
        let model = self.model(&info);
        let rows = model.cost(&lowered).rows;
        PhysicalPlan::Sort {
            input: Box::new(lowered),
            key: key.clone(),
            desc,
            disk: rows > self.config.sort_mem_tuples as f64,
        }
    }

    /// An order-providing access path for `ORDER BY getLabelValue(instance,
    /// label)`: a full-range Summary-BTree scan in the requested direction,
    /// with any selection re-applied on top. Only recognized directly above
    /// a base scan (joins keep their own order-propagation analysis).
    fn order_path(
        &self,
        input: &LogicalPlan,
        instance: &str,
        label: &str,
        desc: bool,
        summaries: bool,
    ) -> Result<Option<PhysicalPlan>> {
        let (table, pred) = match input {
            LogicalPlan::Scan { table } => (table, None),
            LogicalPlan::Select { input, pred } | LogicalPlan::SummarySelect { input, pred } => {
                match input.as_ref() {
                    LogicalPlan::Scan { table } => (table, Some(pred)),
                    _ => return Ok(None),
                }
            }
            _ => return Ok(None),
        };
        let tid = self.db.table_id(table)?;
        let Some(index) = self.config.summary_index_on(tid, instance) else {
            return Ok(None);
        };
        let scan = PhysicalPlan::SummaryIndexScan {
            index: index.to_string(),
            label: label.to_string(),
            lo: None,
            hi: None,
            propagate: summaries,
            reverse: desc,
        };
        Ok(Some(match pred {
            Some(p) => PhysicalPlan::Filter {
                input: Box::new(scan),
                pred: p.clone(),
            },
            None => scan,
        }))
    }

    /// Try to answer (part of) a predicate with a Summary-BTree scan.
    fn try_index_path(
        &self,
        table: TableId,
        pred: &Expr,
        summaries: bool,
    ) -> Option<(PhysicalPlan, Option<Expr>)> {
        let conjuncts = flatten_and(pred);
        for (i, c) in conjuncts.iter().enumerate() {
            let Some(range) = c.indexable_range() else {
                continue;
            };
            let Some(index) = self.config.summary_index_on(table, &range.instance) else {
                continue;
            };
            let scan = PhysicalPlan::SummaryIndexScan {
                index: index.to_string(),
                label: range.label.clone(),
                lo: range.lo,
                hi: range.hi,
                propagate: summaries,
                reverse: false,
            };
            let rest: Vec<Expr> = conjuncts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, e)| (*e).clone())
                .collect();
            let residual = rest.into_iter().reduce(Expr::and);
            return Some((scan, residual));
        }
        None
    }
}

/// Flatten an AND chain into conjuncts.
fn flatten_and(pred: &Expr) -> Vec<&Expr> {
    match pred {
        Expr::And(a, b) => {
            let mut v = flatten_and(a);
            v.extend(flatten_and(b));
            v
        }
        other => vec![other],
    }
}

/// Recognize a `SummaryCmp { left, Eq, getLabelValue(instance, label) }`
/// conjunct: the probe shape the index-based summary join answers.
/// Returns `(outer key expression, inner instance, inner label)`.
fn summary_eq_probe(
    pred: &JoinPredicate,
) -> Option<(instn_query::expr::SummaryExpr, String, String)> {
    match pred {
        JoinPredicate::SummaryCmp {
            left,
            op: instn_query::expr::CmpOp::Eq,
            right,
        } => summary_sort_target(right).map(|(inst, label)| (left.clone(), inst, label)),
        JoinPredicate::And(a, b) => summary_eq_probe(a).or_else(|| summary_eq_probe(b)),
        _ => None,
    }
}

/// Remove the *first* index-answerable summary-equality conjunct (only one
/// probe is answered by the index; any further ones stay as residual).
fn strip_summary_eq(pred: &JoinPredicate) -> Option<JoinPredicate> {
    fn go(pred: &JoinPredicate, stripped: &mut bool) -> Option<JoinPredicate> {
        match pred {
            JoinPredicate::SummaryCmp {
                op: instn_query::expr::CmpOp::Eq,
                right,
                ..
            } if !*stripped && summary_sort_target(right).is_some() => {
                *stripped = true;
                None
            }
            JoinPredicate::And(a, b) => {
                let left = go(a, stripped);
                let right = go(b, stripped);
                match (left, right) {
                    (None, None) => None,
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (Some(x), Some(y)) => Some(JoinPredicate::And(Box::new(x), Box::new(y))),
                }
            }
            other => Some(other.clone()),
        }
    }
    go(pred, &mut false)
}

/// Remove the first data-equality conjunct from a join predicate.
fn strip_data_eq(pred: &JoinPredicate) -> Option<JoinPredicate> {
    match pred {
        JoinPredicate::DataEq { .. } => None,
        JoinPredicate::And(a, b) => match (strip_data_eq(a), strip_data_eq(b)) {
            (None, None) => None,
            (Some(x), None) | (None, Some(x)) => Some(x),
            (Some(x), Some(y)) => Some(JoinPredicate::And(Box::new(x), Box::new(y))),
        },
        other => Some(other.clone()),
    }
}

/// Whether the query references summaries anywhere.
pub fn plan_uses_summaries(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Select { input, pred } => pred.uses_summaries() || plan_uses_summaries(input),
        LogicalPlan::SummarySelect { .. } | LogicalPlan::SummaryFilter { .. } => true,
        LogicalPlan::Project { input, .. }
        | LogicalPlan::GroupBy { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => plan_uses_summaries(input),
        LogicalPlan::Join { left, right, pred } => {
            pred.is_summary_based() || plan_uses_summaries(left) || plan_uses_summaries(right)
        }
        LogicalPlan::SummaryJoin { .. } => true,
        LogicalPlan::Sort { input, key, .. } => key.is_summary() || plan_uses_summaries(input),
    }
}

/// The `(instance, label)` a summary sort key orders by, if recognizable.
fn summary_sort_target(se: &instn_query::expr::SummaryExpr) -> Option<(String, String)> {
    use instn_query::expr::{ObjFunc, ObjRef, SummaryExpr};
    match se {
        SummaryExpr::Obj {
            obj: ObjRef::ByName(instance),
            func: ObjFunc::GetLabelValue(label),
        } => Some((instance.clone(), label.clone())),
        _ => None,
    }
}

/// An interesting order provided by a physical subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvidedOrder {
    /// Instance whose label counts order the stream.
    pub instance: String,
    /// The ordered label.
    pub label: String,
    /// Whether the stream is descending.
    pub reversed: bool,
}

/// Order-propagation analysis (the physical half of Rules 3–6): σ, `S`, `F`,
/// π, and LIMIT preserve order; joins preserve the *outer* order when the
/// ordering instance is not linked to the inner relation. `index_instances`
/// maps registered Summary-BTree names to `(table, instance, k)`.
pub fn provided_order(
    plan: &PhysicalPlan,
    db: &Database,
    index_instances: &HashMap<String, (TableId, String, usize)>,
) -> Option<ProvidedOrder> {
    match plan {
        PhysicalPlan::SummaryIndexScan {
            index,
            label,
            reverse,
            ..
        } => {
            let (_, instance, _) = index_instances.get(index)?;
            Some(ProvidedOrder {
                instance: instance.clone(),
                label: label.clone(),
                reversed: *reverse,
            })
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::SummaryObjectFilter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Distinct { input }
        | PhysicalPlan::Limit { input, .. } => provided_order(input, db, index_instances),
        PhysicalPlan::NestedLoopJoin { left, right, .. } => {
            let order = provided_order(left, db, index_instances)?;
            if inner_lacks_instance(right, &order.instance, db) {
                Some(order)
            } else {
                None
            }
        }
        PhysicalPlan::IndexJoin {
            left, right_table, ..
        } => {
            let order = provided_order(left, db, index_instances)?;
            if db.instance_by_name(*right_table, &order.instance).is_err() {
                Some(order)
            } else {
                None
            }
        }
        PhysicalPlan::SummaryIndexJoin { left, index, .. } => {
            let order = provided_order(left, db, index_instances)?;
            let inner_table = index_instances.get(index).map(|(t, _, _)| *t)?;
            if db.instance_by_name(inner_table, &order.instance).is_err() {
                Some(order)
            } else {
                None
            }
        }
        PhysicalPlan::Sort {
            key: SortKey::Summary(se),
            desc,
            ..
        } => summary_sort_target(se).map(|(instance, label)| ProvidedOrder {
            instance,
            label,
            reversed: *desc,
        }),
        _ => None,
    }
}

fn inner_lacks_instance(plan: &PhysicalPlan, instance: &str, db: &Database) -> bool {
    if instance.is_empty() {
        return true;
    }
    match plan {
        PhysicalPlan::SeqScan { table, .. } | PhysicalPlan::DataIndexScan { table, .. } => {
            db.instance_by_name(*table, instance).is_err()
        }
        PhysicalPlan::SummaryIndexScan { .. } | PhysicalPlan::BaselineIndexScan { .. } => false,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::SummaryObjectFilter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::GroupBy { input, .. }
        | PhysicalPlan::Distinct { input }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Exchange { input, .. } => inner_lacks_instance(input, instance, db),
        PhysicalPlan::NestedLoopJoin { left, right, .. } => {
            inner_lacks_instance(left, instance, db) && inner_lacks_instance(right, instance, db)
        }
        PhysicalPlan::IndexJoin {
            left, right_table, ..
        } => {
            inner_lacks_instance(left, instance, db)
                && db.instance_by_name(*right_table, instance).is_err()
        }
        // Conservative: an index-based summary join materializes the inner
        // table's summary objects, so assume the instance may be present.
        PhysicalPlan::SummaryIndexJoin { .. } => false,
    }
}

/// Flip the direction of the ordering index scan beneath order-preserving
/// operators (used when the provided order is the mirror of the wanted one).
fn flip_scan_direction(plan: PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::SummaryIndexScan {
            index,
            label,
            lo,
            hi,
            propagate,
            reverse,
        } => PhysicalPlan::SummaryIndexScan {
            index,
            label,
            lo,
            hi,
            propagate,
            reverse: !reverse,
        },
        PhysicalPlan::Filter { input, pred } => PhysicalPlan::Filter {
            input: Box::new(flip_scan_direction(*input)),
            pred,
        },
        PhysicalPlan::SummaryObjectFilter { input, pred } => PhysicalPlan::SummaryObjectFilter {
            input: Box::new(flip_scan_direction(*input)),
            pred,
        },
        PhysicalPlan::Project {
            input,
            cols,
            eliminate,
        } => PhysicalPlan::Project {
            input: Box::new(flip_scan_direction(*input)),
            cols,
            eliminate,
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(flip_scan_direction(*input)),
            n,
        },
        PhysicalPlan::NestedLoopJoin { left, right, pred } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(flip_scan_direction(*left)),
            right,
            pred,
        },
        PhysicalPlan::IndexJoin {
            left,
            right_table,
            left_col,
            right_col,
            residual,
            with_summaries,
        } => PhysicalPlan::IndexJoin {
            left: Box::new(flip_scan_direction(*left)),
            right_table,
            left_col,
            right_col,
            residual,
            with_summaries,
        },
        PhysicalPlan::SummaryIndexJoin {
            left,
            left_key,
            index,
            label,
            residual,
            with_summaries,
        } => PhysicalPlan::SummaryIndexJoin {
            left: Box::new(flip_scan_direction(*left)),
            left_key,
            index,
            label,
            residual,
            with_summaries,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_annot::{Attachment, Category};
    use instn_core::instance::InstanceKind;
    use instn_index::{PointerMode, SummaryBTree};
    use instn_mining::nb::NaiveBayes;
    use instn_query::exec::ExecContext;
    use instn_query::expr::{CmpOp, SummaryExpr};
    use instn_query::lower::lower_naive;
    use instn_storage::{ColumnType, Oid, Schema, Value};

    fn classifier_kind() -> InstanceKind {
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train("disease outbreak infection virus", "Disease");
        model.train("eating foraging migration song", "Behavior");
        InstanceKind::Classifier { model }
    }

    /// Birds(id, family) with i disease annots on tuple i; Synonyms(id,
    /// bird_id) 3 per bird, no summary instances.
    fn setup(n: usize) -> (Database, TableId, TableId, Vec<Oid>) {
        let mut db = Database::new();
        // A fat description column makes sequential scans realistically
        // expensive, as in the paper's 450 MB Birds table.
        let birds = db
            .create_table(
                "Birds",
                Schema::of(&[
                    ("id", ColumnType::Int),
                    ("family", ColumnType::Text),
                    ("descr", ColumnType::Text),
                ]),
            )
            .unwrap();
        let syn = db
            .create_table(
                "Synonyms",
                Schema::of(&[("id", ColumnType::Int), ("bird_id", ColumnType::Int)]),
            )
            .unwrap();
        db.link_instance(birds, "ClassBird1", classifier_kind(), true)
            .unwrap();
        let mut oids = Vec::new();
        for i in 0..n {
            let oid = db
                .insert_tuple(
                    birds,
                    vec![
                        Value::Int(i as i64),
                        Value::Text(format!("f{}", i % 3)),
                        Value::Text("d".repeat(1200)),
                    ],
                )
                .unwrap();
            oids.push(oid);
            for _ in 0..i {
                db.add_annotation(
                    birds,
                    "disease outbreak infection",
                    Category::Disease,
                    "u",
                    vec![Attachment::row(oid)],
                )
                .unwrap();
            }
            for s in 0..3i64 {
                db.insert_tuple(
                    syn,
                    vec![Value::Int(i as i64 * 3 + s), Value::Int(i as i64)],
                )
                .unwrap();
            }
        }
        (db, birds, syn, oids)
    }

    #[test]
    fn optimizer_picks_summary_index_scan() {
        let (db, birds, _, _) = setup(200);
        let config = PlannerConfig::default().with_summary_index("idx", birds, "ClassBird1", 2);
        let opt = Optimizer::new(&db, config).unwrap();
        let logical = LogicalPlan::scan("Birds").summary_select(Expr::label_cmp(
            "ClassBird1",
            "Disease",
            CmpOp::Gt,
            190,
        ));
        let plan = opt.optimize(&logical).unwrap();
        assert!(
            matches!(plan.physical, PhysicalPlan::SummaryIndexScan { .. }),
            "got {:?}",
            plan.physical
        );
        assert!(plan.considered >= 1);
    }

    #[test]
    fn optimizer_keeps_seq_scan_without_index() {
        let (db, _, _, _) = setup(10);
        let opt = Optimizer::new(&db, PlannerConfig::default()).unwrap();
        let logical = LogicalPlan::scan("Birds").summary_select(Expr::label_cmp(
            "ClassBird1",
            "Disease",
            CmpOp::Gt,
            5,
        ));
        let plan = opt.optimize(&logical).unwrap();
        assert!(matches!(plan.physical, PhysicalPlan::Filter { .. }));
    }

    #[test]
    fn planner_dop_post_pass_wraps_profitable_fragments() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "Wide",
                Schema::of(&[("id", ColumnType::Int), ("descr", ColumnType::Text)]),
            )
            .unwrap();
        for i in 0..3000 {
            db.insert_tuple(t, vec![Value::Int(i), Value::Text("d".repeat(64))])
                .unwrap();
        }
        let logical =
            LogicalPlan::scan("Wide").select(Expr::col_cmp(0, CmpOp::Ge, Value::Int(1500)));
        // Serial planner (default DOP 1): no Exchange anywhere.
        let serial = Optimizer::new(&db, PlannerConfig::default())
            .unwrap()
            .optimize(&logical)
            .unwrap();
        assert!(!matches!(serial.physical, PhysicalPlan::Exchange { .. }));
        // DOP 4: the multi-morsel scan fragment prices cheaper divided
        // across workers, so the post-pass wraps it.
        let par = Optimizer::new(&db, PlannerConfig::default().with_dop(4))
            .unwrap()
            .optimize(&logical)
            .unwrap();
        match &par.physical {
            PhysicalPlan::Exchange { dop, .. } => assert_eq!(*dop, 4),
            other => panic!("expected Exchange at the root, got {other:?}"),
        }
        assert!(par.cost.total() < serial.cost.total());
        // Both plans produce identical rows.
        let mut ctx = ExecContext::new(&db);
        let a = ctx.execute(&par.physical).unwrap();
        let b = ctx.execute(&serial.physical).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn planner_dop_leaves_tiny_tables_serial() {
        let (db, _, _, _) = setup(20);
        let logical = LogicalPlan::scan("Birds").summary_select(Expr::label_cmp(
            "ClassBird1",
            "Disease",
            CmpOp::Gt,
            5,
        ));
        let plan = Optimizer::new(&db, PlannerConfig::default().with_dop(8))
            .unwrap()
            .optimize(&logical)
            .unwrap();
        assert!(
            !matches!(plan.physical, PhysicalPlan::Exchange { .. }),
            "single-morsel fragment stays serial: {:?}",
            plan.physical
        );
    }

    #[test]
    fn sort_elimination_via_interesting_order() {
        let (db, birds, _, _) = setup(200);
        let config = PlannerConfig::default().with_summary_index("idx", birds, "ClassBird1", 2);
        let opt = Optimizer::new(&db, config).unwrap();
        let logical = LogicalPlan::scan("Birds")
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Ge, 180))
            .sort(
                SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease")),
                false,
            );
        let plan = opt.optimize(&logical).unwrap();
        assert!(
            !contains_sort(&plan.physical),
            "sort should be eliminated: {:?}",
            plan.physical
        );
        // Descending flips the scan instead of sorting.
        let logical_desc = LogicalPlan::scan("Birds")
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Ge, 180))
            .sort(
                SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease")),
                true,
            );
        let plan = opt.optimize(&logical_desc).unwrap();
        assert!(!contains_sort(&plan.physical));
        assert!(scan_reversed(&plan.physical));
    }

    fn contains_sort(p: &PhysicalPlan) -> bool {
        match p {
            PhysicalPlan::Sort { .. } => true,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::SummaryObjectFilter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::GroupBy { input, .. }
            | PhysicalPlan::Limit { input, .. } => contains_sort(input),
            PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                contains_sort(left) || contains_sort(right)
            }
            PhysicalPlan::IndexJoin { left, .. } => contains_sort(left),
            _ => false,
        }
    }

    fn scan_reversed(p: &PhysicalPlan) -> bool {
        match p {
            PhysicalPlan::SummaryIndexScan { reverse, .. } => *reverse,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::SummaryObjectFilter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Limit { input, .. } => scan_reversed(input),
            PhysicalPlan::NestedLoopJoin { left, .. } | PhysicalPlan::IndexJoin { left, .. } => {
                scan_reversed(left)
            }
            _ => false,
        }
    }

    #[test]
    fn fig14_shape_optimized_plan_beats_naive() {
        // S(sort(Birds ⋈ Synonyms)) with disease predicate: the optimizer
        // should push the selection below the join (Rule 2), use the index
        // (order), and eliminate the sort (Rule 5).
        let (db, birds, syn, _) = setup(200);
        let config = PlannerConfig::default()
            .with_summary_index("idx", birds, "ClassBird1", 2)
            .with_column_index(syn, 1);
        let opt = Optimizer::new(&db, config).unwrap();
        let logical = LogicalPlan::scan("Birds")
            .join(
                LogicalPlan::scan("Synonyms"),
                JoinPredicate::DataEq {
                    left_col: 0,
                    right_col: 1,
                },
            )
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 190))
            .sort(
                SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease")),
                false,
            );
        let plan = opt.optimize(&logical).unwrap();
        assert!(!contains_sort(&plan.physical), "{}", plan.explain);
        // The chosen plan must start from the index scan.
        fn has_index_scan(p: &PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::SummaryIndexScan { .. } => true,
                PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::SummaryObjectFilter { input, .. }
                | PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Limit { input, .. }
                | PhysicalPlan::Sort { input, .. }
                | PhysicalPlan::GroupBy { input, .. } => has_index_scan(input),
                PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                    has_index_scan(left) || has_index_scan(right)
                }
                PhysicalPlan::IndexJoin { left, .. } => has_index_scan(left),
                _ => false,
            }
        }
        assert!(has_index_scan(&plan.physical), "{:?}", plan.physical);

        // The naive plan costs strictly more.
        let info = opt.config.index_info();
        let model = CostModel::new(opt.stats(), &info);
        let naive = lower_naive(&db, &logical).unwrap();
        assert!(
            model.cost(&plan.physical).total() < model.cost(&naive).total(),
            "optimized {} vs naive {}",
            model.cost(&plan.physical).total(),
            model.cost(&naive).total()
        );
    }

    #[test]
    fn optimized_plan_produces_same_rows_as_naive() {
        let (db, birds, syn, _) = setup(25);
        let config = PlannerConfig::default()
            .with_summary_index("idx", birds, "ClassBird1", 2)
            .with_column_index(syn, 1);
        let opt = Optimizer::new(&db, config).unwrap();
        let logical = LogicalPlan::scan("Birds")
            .join(
                LogicalPlan::scan("Synonyms"),
                JoinPredicate::DataEq {
                    left_col: 0,
                    right_col: 1,
                },
            )
            .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Gt, 20))
            .sort(
                SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease")),
                false,
            );
        let optimized = opt.optimize(&logical).unwrap();
        let naive = lower_naive(&db, &logical).unwrap();

        let run = |plan: &PhysicalPlan| {
            let mut ctx = ExecContext::new(&db);
            ctx.register_summary_index(
                "idx",
                SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).unwrap(),
            );
            ctx.register_column_index(
                instn_query::dataindex::ColumnIndex::build(&db, syn, 1).unwrap(),
            );
            ctx.execute(plan).unwrap()
        };
        let a = run(&optimized.physical);
        let b = run(&naive);
        assert_eq!(a.len(), b.len());
        // Same multiset of data values and same disease-count order.
        let key = |r: &instn_core::AnnotatedTuple| {
            SummaryExpr::label_value("ClassBird1", "Disease")
                .eval(r)
                .as_int()
                .unwrap()
        };
        let ka: Vec<i64> = a.iter().map(key).collect();
        let kb: Vec<i64> = b.iter().map(key).collect();
        assert_eq!(ka, kb, "identical order");
    }

    #[test]
    fn top_k_prefers_limited_reverse_index_scan_over_sort() {
        let (db, birds, _, _) = setup(200);
        let config = PlannerConfig::default().with_summary_index("idx", birds, "ClassBird1", 2);
        let opt = Optimizer::new(&db, config).unwrap();
        let key = SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease"));
        // Top-5 most-annotated birds, no predicate: a full sort would read
        // and order all 200 fat tuples; the reversed index scan streams
        // straight into the limit and stops after 5.
        let logical = LogicalPlan::scan("Birds").top_k(key.clone(), true, 5);
        let plan = opt.optimize(&logical).unwrap();
        assert!(
            !contains_sort(&plan.physical),
            "top-k should use the ordered scan: {:?}",
            plan.physical
        );
        assert!(matches!(plan.physical, PhysicalPlan::Limit { .. }));
        assert!(scan_reversed(&plan.physical), "{:?}", plan.physical);
        assert!(plan.cost.rows <= 5.0, "cost rows {}", plan.cost.rows);

        // Without the limit, sorting the sequential scan is cheaper than
        // walking the whole index with per-tuple heap fetches.
        let unlimited = LogicalPlan::scan("Birds").sort(key, true);
        let plan = opt.optimize(&unlimited).unwrap();
        assert!(
            contains_sort(&plan.physical),
            "full ordering should still sort: {:?}",
            plan.physical
        );
    }

    #[test]
    fn plan_uses_summaries_detection() {
        let p1 = LogicalPlan::scan("Birds").select(Expr::col_cmp(0, CmpOp::Eq, Value::Int(1)));
        assert!(!plan_uses_summaries(&p1));
        let p2 = LogicalPlan::scan("Birds").summary_select(Expr::label_cmp("C", "D", CmpOp::Gt, 1));
        assert!(plan_uses_summaries(&p2));
        let p3 = LogicalPlan::scan("Birds")
            .sort(SortKey::Summary(SummaryExpr::label_value("C", "D")), false);
        assert!(plan_uses_summaries(&p3));
    }

    #[test]
    fn optimizer_picks_index_based_summary_join() {
        let (db, birds, _, _) = setup(200);
        let config = PlannerConfig::default().with_summary_index("sij", birds, "ClassBird1", 2);
        let opt = Optimizer::new(&db, config).unwrap();
        // Self-join on equal disease counts with a highly selective outer:
        // few probes, so the index-based J beats re-scanning the inner.
        let logical = LogicalPlan::scan("Birds")
            .select(Expr::col_cmp(0, CmpOp::Eq, Value::Int(5)))
            .summary_join(
                LogicalPlan::scan("Birds"),
                JoinPredicate::SummaryCmp {
                    left: SummaryExpr::label_value("ClassBird1", "Disease"),
                    op: CmpOp::Eq,
                    right: SummaryExpr::label_value("ClassBird1", "Disease"),
                },
            );
        let plan = opt.optimize(&logical).unwrap();
        fn has_sij(p: &PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::SummaryIndexJoin { .. } => true,
                PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::SummaryObjectFilter { input, .. }
                | PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Sort { input, .. }
                | PhysicalPlan::GroupBy { input, .. }
                | PhysicalPlan::Limit { input, .. } => has_sij(input),
                PhysicalPlan::NestedLoopJoin { left, right, .. } => has_sij(left) || has_sij(right),
                PhysicalPlan::IndexJoin { left, .. } => has_sij(left),
                _ => false,
            }
        }
        assert!(
            has_sij(&plan.physical),
            "expected an index-based summary join: {:?}",
            plan.physical
        );
    }

    #[test]
    fn strip_summary_eq_removes_only_one_probe() {
        let eq = |_i: u32| JoinPredicate::SummaryCmp {
            left: SummaryExpr::label_value("C", "Disease"),
            op: CmpOp::Eq,
            right: SummaryExpr::label_value("C", "Disease"),
        };
        let pred = JoinPredicate::And(Box::new(eq(0)), Box::new(eq(1)));
        let rest = strip_summary_eq(&pred).expect("one conjunct remains");
        assert!(matches!(rest, JoinPredicate::SummaryCmp { .. }));
        assert!(strip_summary_eq(&eq(0)).is_none());
    }

    #[test]
    fn strip_data_eq_leaves_residual() {
        let pred = JoinPredicate::And(
            Box::new(JoinPredicate::DataEq {
                left_col: 0,
                right_col: 1,
            }),
            Box::new(JoinPredicate::CombinedContains {
                instance: "T".into(),
                keywords: vec!["k".into()],
            }),
        );
        let rest = strip_data_eq(&pred).unwrap();
        assert!(matches!(rest, JoinPredicate::CombinedContains { .. }));
        assert!(strip_data_eq(&JoinPredicate::DataEq {
            left_col: 0,
            right_col: 0
        })
        .is_none());
    }
}
