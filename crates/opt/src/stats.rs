//! Statistics over summary objects (§5.2, Fig. 6).
//!
//! For every classifier instance linked to a relation, the optimizer keeps
//! one structure per class label holding `{Min, Max, NumDistinct,
//! Equi-Width Histogram}` over that label's per-tuple counts, plus the
//! instance's `AvgObjectSize`. The statistics are built by an ANALYZE-style
//! pass and maintained incrementally "whenever a summary object is updated"
//! — driven here by the same [`SummaryDelta`] stream the indexes consume.
//!
//! Since the delta-journal refactor the statistics are *revision-stamped*:
//! [`Statistics::analyze`] records the database revision it observed, and
//! [`Statistics::catch_up`] replays the [`instn_core::DeltaJournal`] gap
//! `(as_of, current]` — folding summary deltas into the per-label
//! structures and tuple-level changes into the row counts — so planner
//! statistics stop going stale between explicit ANALYZE passes. When the
//! journal has been truncated past the stamp, `catch_up` falls back to a
//! full re-analyze.

use std::collections::{HashMap, HashSet};

use instn_core::db::Database;
use instn_core::journal::DataChange;
use instn_core::maintain::SummaryDelta;
use instn_core::summary::Rep;
use instn_core::Result;
use instn_storage::TableId;

/// Histogram buckets per label.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Per-label statistics over annotation counts.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelStats {
    /// Smallest observed count.
    pub min: u64,
    /// Largest observed count.
    pub max: u64,
    /// Number of distinct counts.
    pub num_distinct: u64,
    /// Equi-width histogram over `[min, max]`.
    pub histogram: Vec<u64>,
    /// Total objects observed.
    pub total: u64,
    /// Exact count frequencies (kept to rebuild the histogram and
    /// `num_distinct` under incremental updates; a real system would
    /// approximate — the accuracy experiments don't depend on it).
    freq: HashMap<u64, u64>,
}

impl Default for LabelStats {
    fn default() -> Self {
        Self {
            min: 0,
            max: 0,
            num_distinct: 0,
            histogram: vec![0; HISTOGRAM_BUCKETS],
            total: 0,
            freq: HashMap::new(),
        }
    }
}

impl LabelStats {
    /// Record one observed count.
    pub fn add(&mut self, count: u64) {
        *self.freq.entry(count).or_insert(0) += 1;
        self.total += 1;
        self.refresh();
    }

    /// Remove one observed count.
    pub fn remove(&mut self, count: u64) {
        if let Some(f) = self.freq.get_mut(&count) {
            *f -= 1;
            if *f == 0 {
                self.freq.remove(&count);
            }
            self.total -= 1;
            self.refresh();
        }
    }

    fn refresh(&mut self) {
        self.num_distinct = self.freq.len() as u64;
        self.min = self.freq.keys().min().copied().unwrap_or(0);
        self.max = self.freq.keys().max().copied().unwrap_or(0);
        let span = (self.max - self.min + 1).max(1);
        let width = span.div_ceil(HISTOGRAM_BUCKETS as u64).max(1);
        self.histogram = vec![0; HISTOGRAM_BUCKETS];
        for (&count, &f) in &self.freq {
            let b = (((count - self.min) / width) as usize).min(HISTOGRAM_BUCKETS - 1);
            self.histogram[b] += f;
        }
    }

    /// Estimated fraction of objects with count in `[lo, hi]` (inclusive,
    /// open bounds allowed) using the histogram with intra-bucket
    /// interpolation.
    pub fn selectivity(&self, lo: Option<u64>, hi: Option<u64>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = lo.unwrap_or(self.min).max(self.min);
        let hi = hi.unwrap_or(self.max).min(self.max);
        if lo > hi {
            return 0.0;
        }
        let span = (self.max - self.min + 1).max(1);
        let width = span.div_ceil(HISTOGRAM_BUCKETS as u64).max(1) as f64;
        // A bound saturated at the observed extreme covers its whole bucket:
        // without this, intra-bucket interpolation would undercount mass
        // sitting exactly at min/max.
        let hi = if hi >= self.max {
            self.min + (width as u64) * HISTOGRAM_BUCKETS as u64 - 1
        } else {
            hi
        };
        let mut matched = 0.0f64;
        for (b, &f) in self.histogram.iter().enumerate() {
            if f == 0 {
                continue;
            }
            let b_lo = self.min + b as u64 * width as u64;
            let b_hi = b_lo + width as u64 - 1;
            let o_lo = lo.max(b_lo);
            let o_hi = hi.min(b_hi);
            if o_lo > o_hi {
                continue;
            }
            let frac = (o_hi - o_lo + 1) as f64 / width;
            matched += f as f64 * frac.min(1.0);
        }
        (matched / self.total as f64).clamp(0.0, 1.0)
    }

    /// Estimated rows selected from `n` input rows.
    pub fn estimate_rows(&self, n: f64, lo: Option<u64>, hi: Option<u64>) -> f64 {
        n * self.selectivity(lo, hi)
    }
}

/// Per-instance statistics.
#[derive(Debug, Clone, Default)]
pub struct InstanceStats {
    /// Average serialized object size in bytes.
    pub avg_object_size: f64,
    /// Per-label count statistics.
    pub labels: HashMap<String, LabelStats>,
}

/// Database-wide optimizer statistics.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    /// Per (table, instance name) statistics.
    instances: HashMap<(TableId, String), InstanceStats>,
    /// Per-table tuple counts.
    table_rows: HashMap<TableId, u64>,
    /// Per-table heap pages.
    table_pages: HashMap<TableId, u64>,
    /// Per-table SummaryStorage pages.
    summary_pages: HashMap<TableId, u64>,
    /// Database revision these statistics reflect (0 = never analyzed).
    as_of: u64,
}

impl Statistics {
    /// ANALYZE: collect statistics over every table of the database.
    pub fn analyze(db: &Database) -> Result<Statistics> {
        let mut stats = Statistics::default();
        let mut tid = 0u32;
        while let Ok(table) = db.table(TableId(tid)) {
            let t = TableId(tid);
            stats.table_rows.insert(t, table.len() as u64);
            stats.table_pages.insert(t, table.page_count() as u64);
            let storage = db.summary_storage(t);
            stats.summary_pages.insert(t, storage.page_count() as u64);
            let mut sizes: HashMap<String, (u64, u64)> = HashMap::new(); // (bytes, n)
            for oid in storage.oids() {
                for obj in storage.read(oid)? {
                    let mut buf = Vec::new();
                    obj.encode(&mut buf);
                    let e = sizes.entry(obj.instance_name.clone()).or_insert((0, 0));
                    e.0 += buf.len() as u64;
                    e.1 += 1;
                    if let Rep::Classifier(c) = &obj.rep {
                        let inst = stats
                            .instances
                            .entry((t, obj.instance_name.clone()))
                            .or_default();
                        for (label, &count) in c.labels.iter().zip(c.counts.iter()) {
                            inst.labels.entry(label.clone()).or_default().add(count);
                        }
                    }
                }
            }
            for (name, (bytes, n)) in sizes {
                let inst = stats.instances.entry((t, name)).or_default();
                inst.avg_object_size = if n > 0 { bytes as f64 / n as f64 } else { 0.0 };
            }
            tid += 1;
        }
        stats.as_of = db.revision();
        Ok(stats)
    }

    /// The database revision these statistics reflect.
    pub fn as_of(&self) -> u64 {
        self.as_of
    }

    /// Bring the statistics up to the database's current revision by
    /// replaying the delta journal over the gap `(as_of, current]`.
    ///
    /// Summary deltas fold into the per-label structures exactly as the
    /// live [`Statistics::apply_delta`] path would; tuple inserts and
    /// deletes adjust the per-table row counts; page counts of touched
    /// tables are re-read from the live tables (an O(1) accessor). A
    /// structural change (instance drop) or a journal truncated past
    /// `as_of` cannot be replayed — those fall back to a full re-analyze.
    ///
    /// Returns `true` when the fallback re-analyze ran, `false` when the
    /// gap was replayed (or there was no gap at all).
    pub fn catch_up(&mut self, db: &Database) -> Result<bool> {
        let current = db.revision();
        if current == self.as_of {
            return Ok(false);
        }
        let journal = db.journal();
        let Some(entries) = journal.replay_range(self.as_of) else {
            *self = Statistics::analyze(db)?;
            return Ok(true);
        };
        let mut touched: HashSet<TableId> = HashSet::new();
        let mut row_adjust: HashMap<TableId, i64> = HashMap::new();
        let mut deltas: Vec<SummaryDelta> = Vec::new();
        for entry in entries {
            if entry.structural {
                *self = Statistics::analyze(db)?;
                return Ok(true);
            }
            touched.extend(entry.tables.iter().copied());
            for ch in &entry.data {
                match ch {
                    DataChange::Insert { table, .. } => *row_adjust.entry(*table).or_insert(0) += 1,
                    DataChange::Delete { table, .. } => *row_adjust.entry(*table).or_insert(0) -= 1,
                    DataChange::Update { .. } => {}
                }
            }
            deltas.extend(entry.summary.iter().cloned());
        }
        for d in &deltas {
            self.apply_delta(d);
        }
        for (table, adj) in row_adjust {
            let rows = self.table_rows.entry(table).or_insert(0);
            *rows = rows.saturating_add_signed(adj);
        }
        for table in touched {
            if let Ok(t) = db.table(table) {
                self.table_pages.insert(table, t.page_count() as u64);
                self.summary_pages
                    .insert(table, db.summary_storage(table).page_count() as u64);
            }
        }
        self.as_of = current;
        Ok(false)
    }

    /// Incrementally fold a summary delta into the statistics.
    pub fn apply_delta(&mut self, delta: &SummaryDelta) {
        for ch in &delta.changes {
            let inst = self
                .instances
                .entry((delta.table, ch.instance_name.clone()))
                .or_default();
            let label = inst.labels.entry(ch.label.clone()).or_default();
            if let Some(old) = ch.old {
                label.remove(old);
            }
            if let Some(new) = ch.new {
                label.add(new);
            }
        }
    }

    /// Tuple count of a table (0 when unknown).
    pub fn rows(&self, table: TableId) -> f64 {
        self.table_rows.get(&table).copied().unwrap_or(0) as f64
    }

    /// Heap pages of a table.
    pub fn pages(&self, table: TableId) -> f64 {
        self.table_pages.get(&table).copied().unwrap_or(0) as f64
    }

    /// SummaryStorage pages of a table.
    pub fn summary_pages(&self, table: TableId) -> f64 {
        self.summary_pages.get(&table).copied().unwrap_or(0) as f64
    }

    /// Per-label statistics, if collected.
    pub fn label_stats(&self, table: TableId, instance: &str, label: &str) -> Option<&LabelStats> {
        self.instances
            .get(&(table, instance.to_string()))?
            .labels
            .get(label)
    }

    /// Average object size of an instance.
    pub fn avg_object_size(&self, table: TableId, instance: &str) -> f64 {
        self.instances
            .get(&(table, instance.to_string()))
            .map(|i| i.avg_object_size)
            .unwrap_or(0.0)
    }

    /// Whether a table has the given summary instance linked (for the
    /// "L is not defined on S" rule side conditions).
    pub fn has_instance(&self, table: TableId, instance: &str) -> bool {
        self.instances.contains_key(&(table, instance.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_annot::{Attachment, Category};
    use instn_core::instance::InstanceKind;
    use instn_mining::nb::NaiveBayes;
    use instn_storage::{ColumnType, Oid, Schema, Value};

    fn classifier_kind() -> InstanceKind {
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train("disease outbreak infection virus", "Disease");
        model.train("eating foraging migration song", "Behavior");
        InstanceKind::Classifier { model }
    }

    fn setup(n: usize) -> (Database, TableId, Vec<Oid>) {
        let mut db = Database::new();
        let t = db
            .create_table("Birds", Schema::of(&[("id", ColumnType::Int)]))
            .unwrap();
        let mut oids = Vec::new();
        for i in 0..n {
            oids.push(db.insert_tuple(t, vec![Value::Int(i as i64)]).unwrap());
        }
        db.link_instance(t, "C", classifier_kind(), true).unwrap();
        for (i, &oid) in oids.iter().enumerate() {
            for _ in 0..i {
                db.add_annotation(
                    t,
                    "disease outbreak",
                    Category::Disease,
                    "u",
                    vec![Attachment::row(oid)],
                )
                .unwrap();
            }
            db.add_annotation(
                t,
                "eating song",
                Category::Behavior,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        (db, t, oids)
    }

    #[test]
    fn analyze_collects_min_max_ndistinct() {
        let (db, t, _) = setup(10);
        let stats = Statistics::analyze(&db).unwrap();
        let ls = stats.label_stats(t, "C", "Disease").unwrap();
        assert_eq!(ls.min, 0);
        assert_eq!(ls.max, 9);
        assert_eq!(ls.num_distinct, 10);
        assert_eq!(ls.total, 10);
        let lb = stats.label_stats(t, "C", "Behavior").unwrap();
        assert_eq!((lb.min, lb.max, lb.num_distinct), (1, 1, 1));
        assert!(stats.avg_object_size(t, "C") > 0.0);
        assert_eq!(stats.rows(t), 10.0);
        assert!(stats.has_instance(t, "C"));
        assert!(!stats.has_instance(t, "Nope"));
    }

    #[test]
    fn selectivity_estimates_ranges() {
        let (db, t, _) = setup(100);
        let stats = Statistics::analyze(&db).unwrap();
        let ls = stats.label_stats(t, "C", "Disease").unwrap();
        // Counts are uniform 0..=99: [90, inf) is ~10%.
        let sel = ls.selectivity(Some(90), None);
        assert!((sel - 0.10).abs() < 0.04, "selectivity {sel}");
        // Full range is ~100%.
        assert!(ls.selectivity(None, None) > 0.95);
        // Empty range.
        assert_eq!(ls.selectivity(Some(500), Some(600)), 0.0);
        assert_eq!(ls.selectivity(Some(50), Some(10)), 0.0);
        // Row estimate.
        let rows = ls.estimate_rows(stats.rows(t), Some(90), None);
        assert!((rows - 10.0).abs() < 4.0, "rows {rows}");
    }

    #[test]
    fn incremental_delta_updates() {
        let (mut db, t, oids) = setup(5);
        let mut stats = Statistics::analyze(&db).unwrap();
        let (_, deltas) = db
            .add_annotation(
                t,
                "disease outbreak",
                Category::Disease,
                "u",
                vec![Attachment::row(oids[4])],
            )
            .unwrap();
        for d in &deltas {
            stats.apply_delta(d);
        }
        let ls = stats.label_stats(t, "C", "Disease").unwrap();
        assert_eq!(ls.max, 5, "tuple 4 moved from 4 to 5 disease annots");
        assert_eq!(ls.total, 5);
    }

    #[test]
    fn catch_up_replays_journal_gap() {
        let (mut db, t, oids) = setup(5);
        let mut stats = Statistics::analyze(&db).unwrap();
        assert_eq!(stats.as_of(), db.revision());
        // No gap: nothing to do.
        assert!(!stats.catch_up(&db).unwrap());
        // Mutate past the stamp: annotations + a tuple insert + a delete.
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "u",
            vec![Attachment::row(oids[4])],
        )
        .unwrap();
        db.insert_tuple(t, vec![Value::Int(99)]).unwrap();
        db.delete_tuple(t, oids[0]).unwrap();
        assert!(stats.as_of() < db.revision());
        let reanalyzed = stats.catch_up(&db).unwrap();
        assert!(!reanalyzed, "retained gap must replay, not re-analyze");
        assert_eq!(stats.as_of(), db.revision());
        let fresh = Statistics::analyze(&db).unwrap();
        assert_eq!(stats.rows(t), fresh.rows(t), "row counts track the journal");
        let (ls, lf) = (
            stats.label_stats(t, "C", "Disease").unwrap(),
            fresh.label_stats(t, "C", "Disease").unwrap(),
        );
        assert_eq!((ls.min, ls.max, ls.total), (lf.min, lf.max, lf.total));
    }

    #[test]
    fn catch_up_falls_back_when_truncated() {
        let (mut db, t, oids) = setup(5);
        let mut stats = Statistics::analyze(&db).unwrap();
        // Retention 0: every entry is truncated immediately, so the gap
        // is unreplayable and catch_up must re-analyze.
        db.set_journal_retention(0);
        db.delete_tuple(t, oids[0]).unwrap();
        assert!(stats.catch_up(&db).unwrap(), "truncated gap re-analyzes");
        assert_eq!(stats.as_of(), db.revision());
        assert_eq!(stats.rows(t), 4.0);
    }

    #[test]
    fn catch_up_falls_back_on_structural_change() {
        let (mut db, t, _) = setup(5);
        let mut stats = Statistics::analyze(&db).unwrap();
        db.drop_instance(t, "C").unwrap();
        assert!(stats.catch_up(&db).unwrap(), "instance drop re-analyzes");
        assert!(!stats.has_instance(t, "C"));
    }

    #[test]
    fn empty_label_stats() {
        let ls = LabelStats::default();
        assert_eq!(ls.selectivity(None, None), 0.0);
        assert_eq!(ls.estimate_rows(100.0, Some(1), None), 0.0);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut ls = LabelStats::default();
        for c in [3u64, 5, 5, 9] {
            ls.add(c);
        }
        assert_eq!((ls.min, ls.max, ls.num_distinct, ls.total), (3, 9, 3, 4));
        ls.remove(9);
        assert_eq!((ls.min, ls.max, ls.num_distinct, ls.total), (3, 5, 2, 3));
        ls.remove(3);
        ls.remove(5);
        ls.remove(5);
        assert_eq!(ls.total, 0);
        assert_eq!(ls.num_distinct, 0);
    }
}
