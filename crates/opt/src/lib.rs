//! # instn-opt
//!
//! The extended, summary-aware query optimizer (§5 of the paper).
//!
//! * [`stats`] — statistics over the summary objects: per classifier label
//!   `{Min, Max, NumDistinct, Equi-Width Histogram}` plus `AvgObjectSize`
//!   per instance, maintained incrementally from summary deltas (Fig. 6),
//! * [`cost`] — cardinality estimation and an I/O-based cost model that
//!   reuses the standard operators' heuristics for the new summary-based
//!   operators (§5.2),
//! * [`rules`] — the equivalence and transformation rules 1–11 of §5.1
//!   (pushing `S`/`F` below joins, commuting σ with `S`, swapping the order
//!   of data- and summary-based joins, and the interesting-order rules that
//!   let a Summary-BTree eliminate a sort),
//! * [`planner`] — the optimizer driver: enumerate rule-equivalent logical
//!   plans, pick physical implementations (index scans, index joins,
//!   memory/disk sorts, sort elimination) per the cost model, return the
//!   cheapest plan with an `EXPLAIN`-able rationale.

pub mod cost;
pub mod planner;
pub mod rules;
pub mod stats;

pub use cost::{CostModel, PlanCost};
pub use planner::{Optimizer, PlannerConfig};
pub use rules::apply_rules_once;
pub use stats::{LabelStats, Statistics};
