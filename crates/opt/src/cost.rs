//! Cardinality estimation and the I/O-based cost model (§5.2).
//!
//! The paper's principle: "to avoid re-inventing the wheel, the new
//! summary-based operators leverage the same heuristics that the standard
//! SQL operators use". Concretely:
//!
//! * summary-based selection `S` estimates like σ, using the per-label
//!   `{Min, Max, NumDistinct, Histogram}` statistics,
//! * the filter `F` estimates like π, using `AvgObjectSize`,
//! * the summary join `J` estimates like ⋈, dividing the cross product by
//!   the larger `NumDistinct` of the joined label,
//! * index-answerable predicates are costed from the Summary-BTree's
//!   theoretical bounds (`O(log_B kN)` descent plus one heap page per
//!   qualifying tuple).
//!
//! # Cache awareness
//!
//! When the engine runs with a buffer pool ([`CostModel::with_cache_pages`]),
//! repeated descents through the same B-Tree — an index join probing once
//! per outer row, per-result OID-index lookups — hit the tree's upper
//! levels in cache after the first probe. The model discounts those
//! descents by the number of *fully cacheable* levels: the largest `l`
//! such that `Σ_{i<l} B^i ≤ cache_pages` (root = level 0, fanout `B`).
//! The discounted descent never drops below one page (the leaf).
//! With `cache_pages == 0` every cost expression is bit-identical to the
//! uncached model.

use std::collections::{HashMap, HashSet};

use instn_query::exec::{PhysicalPlan, NL_BLOCK_SIZE};
use instn_query::expr::Expr;
use instn_query::plan::JoinPredicate;
use instn_storage::TableId;

use crate::stats::Statistics;

/// Weight of one CPU tuple-operation relative to one page I/O.
pub const CPU_WEIGHT: f64 = 0.001;

/// Default selectivity for predicates the statistics can't estimate.
pub const DEFAULT_SEL: f64 = 0.1;

/// Default selectivity of data equality predicates (no column stats kept).
pub const DEFAULT_EQ_SEL: f64 = 0.01;

/// B-Tree fanout assumed by the bound-based index cost.
pub const BTREE_FANOUT: f64 = 64.0;

/// Estimated cost and cardinality of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Page I/Os.
    pub io: f64,
    /// CPU tuple operations.
    pub cpu: f64,
    /// Output cardinality.
    pub rows: f64,
}

impl PlanCost {
    /// Scalar cost for plan comparison.
    pub fn total(&self) -> f64 {
        self.io + self.cpu * CPU_WEIGHT
    }
}

/// Index metadata the cost model needs (mirrors the executor registry).
#[derive(Debug, Clone, Default)]
pub struct IndexInfo {
    /// Summary-BTree name → (table, instance, labels-per-object `k`).
    pub summary: HashMap<String, (TableId, String, usize)>,
    /// Baseline index name → (table, instance, labels-per-object `k`).
    pub baseline: HashMap<String, (TableId, String, usize)>,
    /// Available data-column indexes.
    pub columns: HashSet<(TableId, usize)>,
}

/// The cost model: statistics + index metadata + buffer-pool budget.
#[derive(Debug)]
pub struct CostModel<'a> {
    stats: &'a Statistics,
    indexes: &'a IndexInfo,
    cache_pages: usize,
    /// Precomputed from `cache_pages`: B-Tree levels fully resident.
    cached_levels: f64,
}

impl<'a> CostModel<'a> {
    /// Build over collected statistics and index metadata, with no buffer
    /// pool (every page access is a physical transfer).
    pub fn new(stats: &'a Statistics, indexes: &'a IndexInfo) -> Self {
        Self::with_cache_pages(stats, indexes, 0)
    }

    /// Build a cache-aware model: `cache_pages` is the buffer-pool
    /// capacity the engine runs with. `0` reproduces [`CostModel::new`]
    /// bit for bit.
    pub fn with_cache_pages(
        stats: &'a Statistics,
        indexes: &'a IndexInfo,
        cache_pages: usize,
    ) -> Self {
        Self {
            stats,
            indexes,
            cache_pages,
            cached_levels: Self::cacheable_levels(cache_pages),
        }
    }

    /// The buffer-pool budget this model assumes.
    pub fn cache_pages(&self) -> usize {
        self.cache_pages
    }

    /// Number of B-Tree levels (root = level 0) whose pages *all* fit in a
    /// pool of `cache_pages`: the largest `l` with `Σ_{i<l} B^i ≤ budget`.
    fn cacheable_levels(cache_pages: usize) -> f64 {
        let budget = cache_pages as f64;
        let mut levels = 0.0;
        let mut level_pages = 1.0; // pages at the current level
        let mut total = 1.0; // pages in levels 0..=current
        while total <= budget {
            levels += 1.0;
            level_pages *= BTREE_FANOUT;
            total += level_pages;
        }
        levels
    }

    /// Height of a B-Tree with `keys` entries.
    fn btree_height(keys: f64) -> f64 {
        if keys <= 1.0 {
            1.0
        } else {
            (keys.ln() / BTREE_FANOUT.ln()).ceil().max(1.0)
        }
    }

    /// Physical pages charged for one descent of a *repeatedly probed*
    /// B-Tree with `keys` entries: the upper levels that fit in the buffer
    /// pool are hit in cache after the first probe, so only the remaining
    /// levels (at least the leaf) are charged.
    fn probe_height(&self, keys: f64) -> f64 {
        (Self::btree_height(keys) - self.cached_levels).max(1.0)
    }

    /// Estimate the full plan.
    pub fn cost(&self, plan: &PhysicalPlan) -> PlanCost {
        self.cost_inner(plan).0
    }

    /// Returns `(cost, base_table)` — the base table when the subtree is
    /// still single-sourced, for predicate selectivity lookups.
    fn cost_inner(&self, plan: &PhysicalPlan) -> (PlanCost, Option<TableId>) {
        match plan {
            PhysicalPlan::SeqScan {
                table,
                with_summaries,
            } => {
                let rows = self.stats.rows(*table);
                let mut io = self.stats.pages(*table).max(1.0);
                if *with_summaries {
                    io += self.stats.summary_pages(*table);
                }
                (
                    PlanCost {
                        io,
                        cpu: rows,
                        rows,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::SummaryIndexScan {
                index,
                label,
                lo,
                hi,
                propagate,
                ..
            } => {
                let Some((table, instance, k)) = self.indexes.summary.get(index) else {
                    return (
                        PlanCost {
                            io: f64::INFINITY,
                            cpu: 0.0,
                            rows: 0.0,
                        },
                        None,
                    );
                };
                let n = self.stats.rows(*table);
                let sel = self
                    .stats
                    .label_stats(*table, instance, label)
                    .map(|ls| ls.selectivity(*lo, *hi))
                    .unwrap_or(DEFAULT_SEL);
                let rows = (n * sel).max(0.0);
                let keys = n * (*k as f64).max(1.0);
                // Descent + leaf walk + one heap page per result
                // (+ one SummaryStorage row read when propagating). The
                // descent is discounted by cached upper levels: index roots
                // stay hot across queries.
                let mut io = self.probe_height(keys) + (rows / BTREE_FANOUT).ceil() + rows;
                if *propagate {
                    io += rows;
                }
                (
                    PlanCost {
                        io,
                        cpu: rows,
                        rows,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::BaselineIndexScan {
                index,
                label,
                lo,
                hi,
                propagate,
                from_normalized,
            } => {
                let Some((table, instance, k)) = self.indexes.baseline.get(index) else {
                    return (
                        PlanCost {
                            io: f64::INFINITY,
                            cpu: 0.0,
                            rows: 0.0,
                        },
                        None,
                    );
                };
                let n = self.stats.rows(*table);
                let sel = self
                    .stats
                    .label_stats(*table, instance, label)
                    .map(|ls| ls.selectivity(*lo, *hi))
                    .unwrap_or(DEFAULT_SEL);
                let rows = n * sel;
                let keys = n * (*k as f64).max(1.0);
                // Descent + per result: normalized row read + OID-index
                // probe + data heap read — the extra join levels. The
                // per-result OID probes repeat through the same tree, so
                // their descents get the cached-level discount.
                let mut io = self.probe_height(keys)
                    + (rows / BTREE_FANOUT).ceil()
                    + rows * (1.0 + self.probe_height(n) + 1.0);
                if *propagate {
                    io += if *from_normalized {
                        // k normalized rows re-read per object rebuild.
                        rows * (self.probe_height(keys) + *k as f64)
                    } else {
                        rows
                    };
                }
                (
                    PlanCost {
                        io,
                        cpu: rows,
                        rows,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::Filter { input, pred } => {
                let (c, base) = self.cost_inner(input);
                let sel = self.predicate_selectivity(pred, base);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: (c.rows * sel).max(0.0),
                    },
                    base,
                )
            }
            PhysicalPlan::SummaryObjectFilter { input, .. } => {
                let (c, base) = self.cost_inner(input);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: c.rows,
                    },
                    base,
                )
            }
            PhysicalPlan::Project { input, .. } => {
                let (c, base) = self.cost_inner(input);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: c.rows,
                    },
                    base,
                )
            }
            PhysicalPlan::NestedLoopJoin { left, right, pred } => {
                let (cl, _) = self.cost_inner(left);
                let (cr, _) = self.cost_inner(right);
                let blocks = (cl.rows / NL_BLOCK_SIZE as f64).ceil().max(1.0);
                let cross = cl.rows * cr.rows;
                let rows = cross * self.join_selectivity(pred, cl.rows, cr.rows);
                (
                    PlanCost {
                        io: cl.io + blocks * cr.io,
                        cpu: cl.cpu + blocks * cr.cpu + cross,
                        rows,
                    },
                    None,
                )
            }
            PhysicalPlan::IndexJoin {
                left,
                right_table,
                with_summaries,
                ..
            } => {
                let (cl, _) = self.cost_inner(left);
                let n_r = self.stats.rows(*right_table);
                let matches = 1.0f64.max(n_r * DEFAULT_EQ_SEL / 2.0).min(n_r);
                // One probe per outer row: the inner tree's upper levels
                // stay resident between probes.
                let probe = self.probe_height(n_r)
                    + matches * (1.0 + self.probe_height(n_r))
                    + if *with_summaries { matches } else { 0.0 };
                (
                    PlanCost {
                        io: cl.io + cl.rows * probe,
                        cpu: cl.cpu + cl.rows * (1.0 + matches),
                        rows: cl.rows * matches,
                    },
                    None,
                )
            }
            PhysicalPlan::SummaryIndexJoin {
                left,
                index,
                label,
                with_summaries,
                ..
            } => {
                let (cl, _) = self.cost_inner(left);
                let Some((table, instance, k)) = self.indexes.summary.get(index) else {
                    return (
                        PlanCost {
                            io: f64::INFINITY,
                            cpu: 0.0,
                            rows: 0.0,
                        },
                        None,
                    );
                };
                let n_r = self.stats.rows(*table);
                let keys = n_r * (*k as f64).max(1.0);
                // Matches per probe ≈ rows / ndistinct of the probed label.
                let nd = self
                    .stats
                    .label_stats(*table, instance, label)
                    .map(|ls| ls.num_distinct.max(1) as f64)
                    .unwrap_or(1.0);
                let matches = (n_r / nd).max(0.0);
                // One probe per outer row: the inner Summary-BTree's upper
                // levels stay resident between probes.
                let probe = self.probe_height(keys)
                    + matches * (1.0 + if *with_summaries { 1.0 } else { 0.0 });
                (
                    PlanCost {
                        io: cl.io + cl.rows * probe,
                        cpu: cl.cpu + cl.rows * (1.0 + matches),
                        rows: cl.rows * matches,
                    },
                    None,
                )
            }
            PhysicalPlan::Sort { input, disk, .. } => {
                let (c, base) = self.cost_inner(input);
                let n = c.rows.max(1.0);
                let sort_cpu = n * n.ln().max(1.0);
                let io = if *disk {
                    // Spill every tuple out and back (~20 tuples per page).
                    c.io + 2.0 * (n / 20.0).ceil()
                } else {
                    c.io
                };
                (
                    PlanCost {
                        io,
                        cpu: c.cpu + sort_cpu,
                        rows: c.rows,
                    },
                    base,
                )
            }
            PhysicalPlan::GroupBy { input, .. } => {
                let (c, _) = self.cost_inner(input);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: (c.rows / 10.0).max(1.0),
                    },
                    None,
                )
            }
            PhysicalPlan::Distinct { input } => {
                let (c, _) = self.cost_inner(input);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: (c.rows * 0.9).max(1.0),
                    },
                    None,
                )
            }
            PhysicalPlan::Limit { input, n } => {
                let (c, base) = self.cost_inner(input);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu,
                        rows: c.rows.min(*n as f64),
                    },
                    base,
                )
            }
        }
    }

    /// Selectivity of a tuple predicate.
    fn predicate_selectivity(&self, pred: &Expr, base: Option<TableId>) -> f64 {
        match pred {
            Expr::And(a, b) => {
                self.predicate_selectivity(a, base) * self.predicate_selectivity(b, base)
            }
            Expr::Or(a, b) => {
                (self.predicate_selectivity(a, base) + self.predicate_selectivity(b, base)).min(1.0)
            }
            Expr::Not(a) => 1.0 - self.predicate_selectivity(a, base),
            Expr::Like(..) => 0.05,
            _ => {
                if let (Some(r), Some(t)) = (pred.indexable_range(), base) {
                    if let Some(ls) = self.stats.label_stats(t, &r.instance, &r.label) {
                        return ls.selectivity(r.lo, r.hi);
                    }
                }
                if pred.uses_summaries() {
                    DEFAULT_SEL
                } else {
                    DEFAULT_EQ_SEL.max(0.01)
                }
            }
        }
    }

    /// Selectivity of a join predicate over the cross product.
    fn join_selectivity(&self, pred: &JoinPredicate, rows_l: f64, rows_r: f64) -> f64 {
        match pred {
            JoinPredicate::DataEq { .. } => 1.0 / rows_l.max(rows_r).max(1.0),
            JoinPredicate::SummaryCmp { .. } => DEFAULT_SEL,
            JoinPredicate::CombinedContains { .. } => 0.05,
            JoinPredicate::And(a, b) => {
                self.join_selectivity(a, rows_l, rows_r) * self.join_selectivity(b, rows_l, rows_r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_annot::{Attachment, Category};
    use instn_core::db::Database;
    use instn_core::instance::InstanceKind;
    use instn_mining::nb::NaiveBayes;
    use instn_query::expr::{CmpOp, SummaryExpr};
    use instn_storage::{ColumnType, Schema, Value};

    fn setup(n: usize) -> (Database, TableId) {
        let mut db = Database::new();
        // A fat description column makes sequential scans realistically
        // expensive (the paper's Birds tuples average ~10 KB).
        let t = db
            .create_table(
                "Birds",
                Schema::of(&[("id", ColumnType::Int), ("descr", ColumnType::Text)]),
            )
            .unwrap();
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train("disease outbreak infection", "Disease");
        model.train("eating foraging song", "Behavior");
        db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
            .unwrap();
        for i in 0..n {
            let oid = db
                .insert_tuple(t, vec![Value::Int(i as i64), Value::Text("d".repeat(1500))])
                .unwrap();
            for _ in 0..(i % 100) {
                db.add_annotation(
                    t,
                    "disease outbreak",
                    Category::Disease,
                    "u",
                    vec![Attachment::row(oid)],
                )
                .unwrap();
            }
            db.add_annotation(
                t,
                "eating song",
                Category::Behavior,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        (db, t)
    }

    fn index_info(t: TableId) -> IndexInfo {
        let mut info = IndexInfo::default();
        info.summary.insert("idx".into(), (t, "C".into(), 2));
        info.baseline.insert("bl".into(), (t, "C".into(), 2));
        info
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_predicates() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let seq = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Eq, 99),
        };
        let idx = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(99),
            hi: Some(99),
            propagate: true,
            reverse: false,
        };
        let c_seq = model.cost(&seq);
        let c_idx = model.cost(&idx);
        assert!(
            c_idx.total() < c_seq.total(),
            "index {} vs seq {}",
            c_idx.total(),
            c_seq.total()
        );
        // Cardinalities should roughly agree.
        assert!((c_seq.rows - c_idx.rows).abs() <= c_seq.rows.max(2.0));
    }

    #[test]
    fn summary_btree_cheaper_than_baseline() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let sb = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: None,
            propagate: true,
            reverse: false,
        };
        let bl = PhysicalPlan::BaselineIndexScan {
            index: "bl".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: None,
            propagate: true,
            from_normalized: false,
        };
        assert!(model.cost(&sb).total() < model.cost(&bl).total());
    }

    #[test]
    fn disk_sort_costs_more_io_than_mem_sort() {
        let (db, t) = setup(100);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let base = PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        };
        let mk = |disk: bool| PhysicalPlan::Sort {
            input: Box::new(base.clone()),
            key: instn_query::plan::SortKey::Column(0),
            desc: false,
            disk,
        };
        assert!(model.cost(&mk(true)).io > model.cost(&mk(false)).io);
    }

    #[test]
    fn nested_loop_cost_scales_with_blocks() {
        let (db, t) = setup(50);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let join = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            pred: JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            },
        };
        let c = model.cost(&join);
        assert!(c.cpu >= 50.0 * 50.0, "cross product cpu");
        assert!(c.rows > 0.0 && c.rows <= 60.0, "equi-join rows {}", c.rows);
    }

    #[test]
    fn unknown_index_is_infinite() {
        let (db, t) = setup(10);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let bad = PhysicalPlan::SummaryIndexScan {
            index: "nope".into(),
            label: "Disease".into(),
            lo: None,
            hi: None,
            propagate: false,
            reverse: false,
        };
        assert!(model.cost(&bad).total().is_infinite());
    }

    #[test]
    fn zero_cache_pages_is_bit_identical_to_uncached_model() {
        let (db, t) = setup(150);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let base = CostModel::new(&stats, &info);
        let zero = CostModel::with_cache_pages(&stats, &info, 0);
        let plans = [
            PhysicalPlan::SummaryIndexScan {
                index: "idx".into(),
                label: "Disease".into(),
                lo: Some(5),
                hi: None,
                propagate: true,
                reverse: false,
            },
            PhysicalPlan::BaselineIndexScan {
                index: "bl".into(),
                label: "Disease".into(),
                lo: Some(5),
                hi: None,
                propagate: true,
                from_normalized: true,
            },
            PhysicalPlan::SummaryIndexJoin {
                left: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: false,
                }),
                left_key: SummaryExpr::label_value("C", "Disease"),
                index: "idx".into(),
                label: "Disease".into(),
                residual: None,
                with_summaries: true,
            },
        ];
        for plan in &plans {
            let a = base.cost(plan);
            let b = zero.cost(plan);
            assert_eq!(a.io.to_bits(), b.io.to_bits(), "{plan:?}");
            assert_eq!(a.cpu.to_bits(), b.cpu.to_bits(), "{plan:?}");
            assert_eq!(a.rows.to_bits(), b.rows.to_bits(), "{plan:?}");
        }
    }

    #[test]
    fn cache_discount_lowers_repeated_probe_cost_not_rows() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let cold = CostModel::new(&stats, &info);
        let warm = CostModel::with_cache_pages(&stats, &info, 1 << 20);
        let join = PhysicalPlan::SummaryIndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            left_key: SummaryExpr::label_value("C", "Disease"),
            index: "idx".into(),
            label: "Disease".into(),
            residual: None,
            with_summaries: true,
        };
        let c = cold.cost(&join);
        let w = warm.cost(&join);
        assert!(w.io < c.io, "warm {} vs cold {}", w.io, c.io);
        assert_eq!(w.rows.to_bits(), c.rows.to_bits());
        assert_eq!(w.cpu.to_bits(), c.cpu.to_bits());
    }

    #[test]
    fn cache_discount_is_monotone_in_budget_and_floors_at_leaf() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let scan = PhysicalPlan::BaselineIndexScan {
            index: "bl".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: None,
            propagate: false,
            from_normalized: false,
        };
        let mut last = f64::INFINITY;
        // Root-only budget, root+inner budget, effectively infinite.
        for pages in [0usize, 1, 100, 1 << 30] {
            let model = CostModel::with_cache_pages(&stats, &info, pages);
            let io = model.cost(&scan).io;
            assert!(io <= last, "budget {pages}: {io} > {last}");
            // Even an infinite budget still charges the leaf touches and
            // per-result heap reads — cost stays positive.
            assert!(io >= 1.0);
            last = io;
        }
    }

    #[test]
    fn conjunctive_selectivity_multiplies() {
        let (db, t) = setup(100);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let single = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 5),
        };
        let double = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::and(
                Expr::label_cmp("C", "Disease", CmpOp::Ge, 5),
                Expr::col_cmp(0, CmpOp::Eq, Value::Int(3)),
            ),
        };
        assert!(model.cost(&double).rows < model.cost(&single).rows);
    }
}
