//! Cardinality estimation and the I/O-based cost model (§5.2).
//!
//! The paper's principle: "to avoid re-inventing the wheel, the new
//! summary-based operators leverage the same heuristics that the standard
//! SQL operators use". Concretely:
//!
//! * summary-based selection `S` estimates like σ, using the per-label
//!   `{Min, Max, NumDistinct, Histogram}` statistics,
//! * the filter `F` estimates like π, using `AvgObjectSize`,
//! * the summary join `J` estimates like ⋈, dividing the cross product by
//!   the larger `NumDistinct` of the joined label,
//! * index-answerable predicates are costed from the Summary-BTree's
//!   theoretical bounds (`O(log_B kN)` descent plus one heap page per
//!   qualifying tuple).
//!
//! # Cache awareness
//!
//! When the engine runs with a buffer pool ([`CostModel::with_cache_pages`]),
//! repeated descents through the same B-Tree — an index join probing once
//! per outer row, per-result OID-index lookups — hit the tree's upper
//! levels in cache after the first probe. The model discounts those
//! descents by the number of *fully cacheable* levels: the largest `l`
//! such that `Σ_{i<l} B^i ≤ cache_pages` (root = level 0, fanout `B`).
//! The discounted descent never drops below one page (the leaf).
//! With `cache_pages == 0` every cost expression is bit-identical to the
//! uncached model.

use std::collections::{HashMap, HashSet};

use instn_query::exec::{PhysicalPlan, DEFAULT_MORSEL_ROWS, DEFAULT_SORT_MEM, NL_BLOCK_SIZE};
use instn_query::expr::Expr;
use instn_query::plan::JoinPredicate;
use instn_storage::TableId;

use crate::stats::Statistics;

/// Weight of one CPU tuple-operation relative to one page I/O.
pub const CPU_WEIGHT: f64 = 0.001;

/// Default selectivity for predicates the statistics can't estimate.
pub const DEFAULT_SEL: f64 = 0.1;

/// Default selectivity of data equality predicates (no column stats kept).
pub const DEFAULT_EQ_SEL: f64 = 0.01;

/// B-Tree fanout assumed by the bound-based index cost.
pub const BTREE_FANOUT: f64 = 64.0;

/// Page I/Os charged per replayed journal change during index refresh:
/// one descent to retire the old key, one to insert the new one, plus the
/// heap/summary resolution the delta carries. Mirrors the executor's
/// replay-vs-rebuild factor (`instn_query::exec`) so the model and the
/// runtime maintenance ladder pick the same side of the threshold.
pub const REPLAY_CHANGE_IO: f64 = 4.0;

/// Minimum page I/Os charged for a bulk index rebuild (fixed per-build
/// overhead: catalog lookups, root split, stats refresh). Matches the
/// executor's `rows.max(16)` floor.
pub const MIN_REBUILD_IO: f64 = 16.0;

/// CPU tuple-operations charged per morsel claimed from the shared queue
/// (queue contention, per-morsel cursor open).
pub const MORSEL_STARTUP_CPU: f64 = 50.0;

/// CPU tuple-operations charged per worker thread spawned at an Exchange
/// (thread spawn + join + gather bookkeeping).
pub const WORKER_STARTUP_CPU: f64 = 500.0;

/// Estimated cost and cardinality of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Page I/Os.
    pub io: f64,
    /// CPU tuple operations.
    pub cpu: f64,
    /// Output cardinality.
    pub rows: f64,
}

impl PlanCost {
    /// Scalar cost for plan comparison.
    pub fn total(&self) -> f64 {
        self.io + self.cpu * CPU_WEIGHT
    }
}

/// Index metadata the cost model needs (mirrors the executor registry).
#[derive(Debug, Clone, Default)]
pub struct IndexInfo {
    /// Summary-BTree name → (table, instance, labels-per-object `k`).
    pub summary: HashMap<String, (TableId, String, usize)>,
    /// Baseline index name → (table, instance, labels-per-object `k`).
    pub baseline: HashMap<String, (TableId, String, usize)>,
    /// Available data-column indexes.
    pub columns: HashSet<(TableId, usize)>,
}

/// The cost model: statistics + index metadata + buffer-pool budget.
#[derive(Debug)]
pub struct CostModel<'a> {
    stats: &'a Statistics,
    indexes: &'a IndexInfo,
    cache_pages: usize,
    /// Precomputed from `cache_pages`: B-Tree levels fully resident.
    cached_levels: f64,
    /// Degree of parallelism assumed for `Exchange { dop: 0 }` fragments.
    dop: usize,
}

impl<'a> CostModel<'a> {
    /// Build over collected statistics and index metadata, with no buffer
    /// pool (every page access is a physical transfer).
    pub fn new(stats: &'a Statistics, indexes: &'a IndexInfo) -> Self {
        Self::with_cache_pages(stats, indexes, 0)
    }

    /// Build a cache-aware model: `cache_pages` is the buffer-pool
    /// capacity the engine runs with. `0` reproduces [`CostModel::new`]
    /// bit for bit.
    pub fn with_cache_pages(
        stats: &'a Statistics,
        indexes: &'a IndexInfo,
        cache_pages: usize,
    ) -> Self {
        Self {
            stats,
            indexes,
            cache_pages,
            cached_levels: Self::cacheable_levels(cache_pages),
            dop: 1,
        }
    }

    /// Set the degree of parallelism assumed for Exchange fragments whose
    /// `dop` is `0` (= inherit from the execution config). `dop <= 1`
    /// leaves every cost expression bit-identical to the serial model.
    pub fn with_dop(mut self, dop: usize) -> Self {
        self.dop = dop.max(1);
        self
    }

    /// The degree of parallelism this model assumes.
    pub fn dop(&self) -> usize {
        self.dop
    }

    /// The buffer-pool budget this model assumes.
    pub fn cache_pages(&self) -> usize {
        self.cache_pages
    }

    /// Number of B-Tree levels (root = level 0) whose pages *all* fit in a
    /// pool of `cache_pages`: the largest `l` with `Σ_{i<l} B^i ≤ budget`.
    fn cacheable_levels(cache_pages: usize) -> f64 {
        let budget = cache_pages as f64;
        let mut levels = 0.0;
        let mut level_pages = 1.0; // pages at the current level
        let mut total = 1.0; // pages in levels 0..=current
        while total <= budget {
            levels += 1.0;
            level_pages *= BTREE_FANOUT;
            total += level_pages;
        }
        levels
    }

    /// Height of a B-Tree with `keys` entries.
    fn btree_height(keys: f64) -> f64 {
        if keys <= 1.0 {
            1.0
        } else {
            (keys.ln() / BTREE_FANOUT.ln()).ceil().max(1.0)
        }
    }

    /// Physical pages charged for one descent of a *repeatedly probed*
    /// B-Tree with `keys` entries: the upper levels that fit in the buffer
    /// pool are hit in cache after the first probe, so only the remaining
    /// levels (at least the leaf) are charged.
    fn probe_height(&self, keys: f64) -> f64 {
        (Self::btree_height(keys) - self.cached_levels).max(1.0)
    }

    /// Estimate the full plan.
    pub fn cost(&self, plan: &PhysicalPlan) -> PlanCost {
        self.cost_capped(plan, None).0
    }

    /// Estimate the plan assuming at most `limit` rows will be pulled from
    /// it (a LIMIT the planner knows sits above this subtree). Streaming
    /// operators get credited — a lazy index scan under a small limit only
    /// pays for the tuples it produces — while pipeline breakers (sort,
    /// group-by, the NL build side) still pay in full.
    pub fn cost_with_limit(&self, plan: &PhysicalPlan, limit: Option<usize>) -> PlanCost {
        self.cost_capped(plan, limit.map(|n| n as f64)).0
    }

    /// `rows` clipped to a pushed-down row cap. `None` returns `rows`
    /// unchanged, keeping the uncapped model bit-identical.
    fn cap_rows(rows: f64, cap: Option<f64>) -> f64 {
        match cap {
            None => rows,
            Some(c) => rows.min(c.max(0.0)),
        }
    }

    /// Returns `(cost, base_table)` — the base table when the subtree is
    /// still single-sourced, for predicate selectivity lookups. `cap` is the
    /// maximum number of rows a LIMIT above will ever pull from this node
    /// (`None` = unbounded); streaming operators scale their per-row costs
    /// by it, blocking operators consume their input in full regardless.
    fn cost_capped(&self, plan: &PhysicalPlan, cap: Option<f64>) -> (PlanCost, Option<TableId>) {
        match plan {
            PhysicalPlan::SeqScan {
                table,
                with_summaries,
            } => {
                let rows = self.stats.rows(*table);
                let rows_eff = Self::cap_rows(rows, cap);
                let mut io = self.stats.pages(*table).max(1.0);
                if *with_summaries {
                    io += self.stats.summary_pages(*table);
                }
                // A capped scan stops after the cap'th tuple: charge the
                // corresponding fraction of the pages.
                if cap.is_some() && rows > 0.0 {
                    io = (io * (rows_eff / rows)).max(1.0);
                }
                (
                    PlanCost {
                        io,
                        cpu: rows_eff,
                        rows: rows_eff,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::SummaryIndexScan {
                index,
                label,
                lo,
                hi,
                propagate,
                ..
            } => {
                let Some((table, instance, k)) = self.indexes.summary.get(index) else {
                    return (
                        PlanCost {
                            io: f64::INFINITY,
                            cpu: 0.0,
                            rows: 0.0,
                        },
                        None,
                    );
                };
                let n = self.stats.rows(*table);
                let sel = self
                    .stats
                    .label_stats(*table, instance, label)
                    .map(|ls| ls.selectivity(*lo, *hi))
                    .unwrap_or(DEFAULT_SEL);
                let rows = (n * sel).max(0.0);
                // The scan is fully lazy: under a row cap only the first
                // `cap` entries are walked and fetched.
                let rows_eff = Self::cap_rows(rows, cap);
                let keys = n * (*k as f64).max(1.0);
                // Descent + leaf walk + one heap page per result
                // (+ one SummaryStorage row read when propagating). The
                // descent is discounted by cached upper levels: index roots
                // stay hot across queries.
                let mut io = self.probe_height(keys) + (rows_eff / BTREE_FANOUT).ceil() + rows_eff;
                if *propagate {
                    io += rows_eff;
                }
                (
                    PlanCost {
                        io,
                        cpu: rows_eff,
                        rows: rows_eff,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::DataIndexScan {
                table,
                lo,
                hi,
                with_summaries,
                ..
            } => {
                let n = self.stats.rows(*table);
                // No per-column histograms yet: a bounded range selects the
                // default fraction, an unbounded scan selects everything.
                let sel = if lo.is_none() && hi.is_none() {
                    1.0
                } else {
                    DEFAULT_SEL
                };
                let rows = (n * sel).max(0.0);
                let rows_eff = Self::cap_rows(rows, cap);
                // Descent + leaf walk + one heap page per result
                // (+ one SummaryStorage row read when propagating).
                let mut io =
                    self.probe_height(n.max(1.0)) + (rows_eff / BTREE_FANOUT).ceil() + rows_eff;
                if *with_summaries {
                    io += rows_eff;
                }
                (
                    PlanCost {
                        io,
                        cpu: rows_eff,
                        rows: rows_eff,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::BaselineIndexScan {
                index,
                label,
                lo,
                hi,
                propagate,
                from_normalized,
            } => {
                let Some((table, instance, k)) = self.indexes.baseline.get(index) else {
                    return (
                        PlanCost {
                            io: f64::INFINITY,
                            cpu: 0.0,
                            rows: 0.0,
                        },
                        None,
                    );
                };
                let n = self.stats.rows(*table);
                let sel = self
                    .stats
                    .label_stats(*table, instance, label)
                    .map(|ls| ls.selectivity(*lo, *hi))
                    .unwrap_or(DEFAULT_SEL);
                let rows = n * sel;
                // The per-OID indirection is walked lazily too.
                let rows_eff = Self::cap_rows(rows, cap);
                let keys = n * (*k as f64).max(1.0);
                // Descent + per result: normalized row read + OID-index
                // probe + data heap read — the extra join levels. The
                // per-result OID probes repeat through the same tree, so
                // their descents get the cached-level discount.
                let mut io = self.probe_height(keys)
                    + (rows_eff / BTREE_FANOUT).ceil()
                    + rows_eff * (1.0 + self.probe_height(n) + 1.0);
                if *propagate {
                    io += if *from_normalized {
                        // k normalized rows re-read per object rebuild.
                        rows_eff * (self.probe_height(keys) + *k as f64)
                    } else {
                        rows_eff
                    };
                }
                (
                    PlanCost {
                        io,
                        cpu: rows_eff,
                        rows: rows_eff,
                    },
                    Some(*table),
                )
            }
            PhysicalPlan::Filter { input, pred } => {
                // A capped filter needs ~cap/sel input rows before it has
                // produced cap survivors; pass the inflated cap down (the
                // selectivity needs the base table, resolved by a cheap
                // uncapped pre-pass).
                let inner_cap = cap.map(|c| {
                    let (_, base) = self.cost_capped(input, None);
                    c / self.predicate_selectivity(pred, base).max(1e-6)
                });
                let (c, base) = self.cost_capped(input, inner_cap);
                let sel = self.predicate_selectivity(pred, base);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: Self::cap_rows((c.rows * sel).max(0.0), cap),
                    },
                    base,
                )
            }
            PhysicalPlan::SummaryObjectFilter { input, .. } => {
                let (c, base) = self.cost_capped(input, cap);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: c.rows,
                    },
                    base,
                )
            }
            PhysicalPlan::Project { input, .. } => {
                let (c, base) = self.cost_capped(input, cap);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: c.rows,
                    },
                    base,
                )
            }
            PhysicalPlan::NestedLoopJoin { left, right, pred } => {
                // The build side is a pipeline breaker and the outer must be
                // consumed block by block: no cap reaches the children.
                let (cl, _) = self.cost_capped(left, None);
                let (cr, _) = self.cost_capped(right, None);
                let blocks = (cl.rows / NL_BLOCK_SIZE as f64).ceil().max(1.0);
                // An inner that fits the sort budget is materialized once
                // and cached across blocks (the executor keeps it).
                let rescans = if cr.rows <= DEFAULT_SORT_MEM as f64 {
                    1.0
                } else {
                    blocks
                };
                let cross = cl.rows * cr.rows;
                let rows = cross * self.join_selectivity(pred, cl.rows, cr.rows);
                (
                    PlanCost {
                        io: cl.io + rescans * cr.io,
                        cpu: cl.cpu + rescans * cr.cpu + cross,
                        rows: Self::cap_rows(rows, cap),
                    },
                    None,
                )
            }
            PhysicalPlan::IndexJoin {
                left,
                right_table,
                with_summaries,
                ..
            } => {
                let n_r = self.stats.rows(*right_table);
                let matches = 1.0f64.max(n_r * DEFAULT_EQ_SEL / 2.0).min(n_r);
                // The outer is streamed: with a cap, only ~cap/matches
                // outer rows are pulled before the limit is satisfied.
                let inner_cap = cap.map(|c| (c / matches.max(1e-6)).max(1.0));
                let (cl, _) = self.cost_capped(left, inner_cap);
                // One probe per outer row: the inner tree's upper levels
                // stay resident between probes.
                let probe = self.probe_height(n_r)
                    + matches * (1.0 + self.probe_height(n_r))
                    + if *with_summaries { matches } else { 0.0 };
                (
                    PlanCost {
                        io: cl.io + cl.rows * probe,
                        cpu: cl.cpu + cl.rows * (1.0 + matches),
                        rows: Self::cap_rows(cl.rows * matches, cap),
                    },
                    None,
                )
            }
            PhysicalPlan::SummaryIndexJoin {
                left,
                index,
                label,
                with_summaries,
                ..
            } => {
                let Some((table, instance, k)) = self.indexes.summary.get(index) else {
                    return (
                        PlanCost {
                            io: f64::INFINITY,
                            cpu: 0.0,
                            rows: 0.0,
                        },
                        None,
                    );
                };
                let n_r = self.stats.rows(*table);
                let keys = n_r * (*k as f64).max(1.0);
                // Matches per probe ≈ rows / ndistinct of the probed label.
                let nd = self
                    .stats
                    .label_stats(*table, instance, label)
                    .map(|ls| ls.num_distinct.max(1) as f64)
                    .unwrap_or(1.0);
                let matches = (n_r / nd).max(0.0);
                // Streamed outer: a cap translates to fewer probes.
                let inner_cap = cap.map(|c| (c / matches.max(1e-6)).max(1.0));
                let (cl, _) = self.cost_capped(left, inner_cap);
                // One probe per outer row: the inner Summary-BTree's upper
                // levels stay resident between probes.
                let probe = self.probe_height(keys)
                    + matches * (1.0 + if *with_summaries { 1.0 } else { 0.0 });
                (
                    PlanCost {
                        io: cl.io + cl.rows * probe,
                        cpu: cl.cpu + cl.rows * (1.0 + matches),
                        rows: Self::cap_rows(cl.rows * matches, cap),
                    },
                    None,
                )
            }
            PhysicalPlan::Sort { input, disk, .. } => {
                // Pipeline breaker: every input row is consumed before the
                // first output row, so a downstream limit buys nothing.
                let (c, base) = self.cost_capped(input, None);
                let n = c.rows.max(1.0);
                let sort_cpu = n * n.ln().max(1.0);
                let io = if *disk {
                    // Spill every tuple out and back (~20 tuples per page).
                    c.io + 2.0 * (n / 20.0).ceil()
                } else {
                    c.io
                };
                (
                    PlanCost {
                        io,
                        cpu: c.cpu + sort_cpu,
                        rows: Self::cap_rows(c.rows, cap),
                    },
                    base,
                )
            }
            PhysicalPlan::GroupBy { input, .. } => {
                // Pipeline breaker: the hash table sees all input rows.
                let (c, _) = self.cost_capped(input, None);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: Self::cap_rows((c.rows / 10.0).max(1.0), cap),
                    },
                    None,
                )
            }
            PhysicalPlan::Distinct { input } => {
                // Pipeline breaker (set-building), same as GroupBy.
                let (c, _) = self.cost_capped(input, None);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu + c.rows,
                        rows: Self::cap_rows((c.rows * 0.9).max(1.0), cap),
                    },
                    None,
                )
            }
            PhysicalPlan::Exchange { input, dop } => {
                // Materializing pipeline breaker: the fragment runs to
                // completion across the workers before the gather hands up
                // its first row, so no row cap reaches the input.
                let (c, base) = self.cost_capped(input, None);
                let eff_dop = if *dop == 0 { self.dop } else { *dop };
                if eff_dop <= 1 {
                    // DOP 1 delegates to the serial operator tree:
                    // bit-identical cost, plus nothing.
                    return (
                        PlanCost {
                            io: c.io,
                            cpu: c.cpu,
                            rows: Self::cap_rows(c.rows, cap),
                        },
                        base,
                    );
                }
                // Morsels split the *source*, so size the queue from the
                // base table when the fragment is single-sourced.
                let src_rows = base
                    .map(|t| self.stats.rows(t))
                    .unwrap_or(c.rows)
                    .max(c.rows)
                    .max(1.0);
                let morsels = (src_rows / DEFAULT_MORSEL_ROWS as f64).ceil().max(1.0);
                // Workers beyond the morsel count sit idle.
                let eff = (eff_dop as f64).min(morsels);
                (
                    PlanCost {
                        io: c.io / eff,
                        cpu: c.cpu / eff
                            + morsels * MORSEL_STARTUP_CPU
                            + eff_dop as f64 * WORKER_STARTUP_CPU,
                        rows: Self::cap_rows(c.rows, cap),
                    },
                    base,
                )
            }
            PhysicalPlan::Limit { input, n } => {
                // The limit itself is the cap source: tighten whatever cap
                // is already in force and push it into the input.
                let inner_cap = Some(match cap {
                    None => *n as f64,
                    Some(c) => c.min(*n as f64),
                });
                let (c, base) = self.cost_capped(input, inner_cap);
                (
                    PlanCost {
                        io: c.io,
                        cpu: c.cpu,
                        rows: c.rows.min(*n as f64),
                    },
                    base,
                )
            }
        }
    }

    /// Cost of replaying a journal gap of `gap_changes` deltas into an
    /// index over `table` (the incremental-maintenance arm).
    ///
    /// Each change pays [`REPLAY_CHANGE_IO`] physical pages and one tree
    /// descent of CPU. The CPU term is proportional to the I/O term with
    /// the same per-table constant as [`CostModel::rebuild_cost`], so the
    /// ordering of `total()` between the two arms is *exactly* the
    /// executor's `gap × factor ≤ max(rows, floor)` ladder — the model
    /// never disagrees with the runtime about which side is cheaper.
    pub fn replay_cost(&self, table: TableId, gap_changes: u64) -> PlanCost {
        let rows = self.stats.rows(table);
        let io = gap_changes as f64 * REPLAY_CHANGE_IO;
        PlanCost {
            io,
            cpu: io * Self::btree_height(rows.max(1.0)),
            rows,
        }
    }

    /// Cost of bulk-rebuilding an index over `table` from scratch: every
    /// tuple's summary is resolved and itemized (one page touch each, the
    /// dominant term), floored at the fixed per-build overhead.
    pub fn rebuild_cost(&self, table: TableId) -> PlanCost {
        let rows = self.stats.rows(table);
        let io = rows.max(MIN_REBUILD_IO);
        PlanCost {
            io,
            cpu: io * Self::btree_height(rows.max(1.0)),
            rows,
        }
    }

    /// Cost of bringing a stale index over `table` up to date. `gap_changes`
    /// is the number of journal changes in the index's staleness gap, or
    /// `None` when the journal has been truncated past the index's built
    /// revision (replay impossible — rebuild is the only arm). With a
    /// retained gap the model returns whichever arm is cheaper.
    pub fn refresh_cost(&self, table: TableId, gap_changes: Option<u64>) -> PlanCost {
        match gap_changes {
            None => self.rebuild_cost(table),
            Some(gap) => {
                let replay = self.replay_cost(table, gap);
                let rebuild = self.rebuild_cost(table);
                if replay.total() <= rebuild.total() {
                    replay
                } else {
                    rebuild
                }
            }
        }
    }

    /// Selectivity of a tuple predicate.
    fn predicate_selectivity(&self, pred: &Expr, base: Option<TableId>) -> f64 {
        match pred {
            Expr::And(a, b) => {
                self.predicate_selectivity(a, base) * self.predicate_selectivity(b, base)
            }
            Expr::Or(a, b) => {
                (self.predicate_selectivity(a, base) + self.predicate_selectivity(b, base)).min(1.0)
            }
            Expr::Not(a) => 1.0 - self.predicate_selectivity(a, base),
            Expr::Like(..) => 0.05,
            _ => {
                if let (Some(r), Some(t)) = (pred.indexable_range(), base) {
                    if let Some(ls) = self.stats.label_stats(t, &r.instance, &r.label) {
                        return ls.selectivity(r.lo, r.hi);
                    }
                }
                if pred.uses_summaries() {
                    DEFAULT_SEL
                } else {
                    DEFAULT_EQ_SEL.max(0.01)
                }
            }
        }
    }

    /// Selectivity of a join predicate over the cross product.
    fn join_selectivity(&self, pred: &JoinPredicate, rows_l: f64, rows_r: f64) -> f64 {
        match pred {
            JoinPredicate::DataEq { .. } => 1.0 / rows_l.max(rows_r).max(1.0),
            JoinPredicate::SummaryCmp { .. } => DEFAULT_SEL,
            JoinPredicate::CombinedContains { .. } => 0.05,
            JoinPredicate::And(a, b) => {
                self.join_selectivity(a, rows_l, rows_r) * self.join_selectivity(b, rows_l, rows_r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_annot::{Attachment, Category};
    use instn_core::db::Database;
    use instn_core::instance::InstanceKind;
    use instn_mining::nb::NaiveBayes;
    use instn_query::expr::{CmpOp, SummaryExpr};
    use instn_storage::{ColumnType, Schema, Value};

    fn setup(n: usize) -> (Database, TableId) {
        let mut db = Database::new();
        // A fat description column makes sequential scans realistically
        // expensive (the paper's Birds tuples average ~10 KB).
        let t = db
            .create_table(
                "Birds",
                Schema::of(&[("id", ColumnType::Int), ("descr", ColumnType::Text)]),
            )
            .unwrap();
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train("disease outbreak infection", "Disease");
        model.train("eating foraging song", "Behavior");
        db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
            .unwrap();
        for i in 0..n {
            let oid = db
                .insert_tuple(t, vec![Value::Int(i as i64), Value::Text("d".repeat(1500))])
                .unwrap();
            for _ in 0..(i % 100) {
                db.add_annotation(
                    t,
                    "disease outbreak",
                    Category::Disease,
                    "u",
                    vec![Attachment::row(oid)],
                )
                .unwrap();
            }
            db.add_annotation(
                t,
                "eating song",
                Category::Behavior,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        (db, t)
    }

    fn index_info(t: TableId) -> IndexInfo {
        let mut info = IndexInfo::default();
        info.summary.insert("idx".into(), (t, "C".into(), 2));
        info.baseline.insert("bl".into(), (t, "C".into(), 2));
        info
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_predicates() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let seq = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Eq, 99),
        };
        let idx = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(99),
            hi: Some(99),
            propagate: true,
            reverse: false,
        };
        let c_seq = model.cost(&seq);
        let c_idx = model.cost(&idx);
        assert!(
            c_idx.total() < c_seq.total(),
            "index {} vs seq {}",
            c_idx.total(),
            c_seq.total()
        );
        // Cardinalities should roughly agree.
        assert!((c_seq.rows - c_idx.rows).abs() <= c_seq.rows.max(2.0));
    }

    #[test]
    fn summary_btree_cheaper_than_baseline() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let sb = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: None,
            propagate: true,
            reverse: false,
        };
        let bl = PhysicalPlan::BaselineIndexScan {
            index: "bl".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: None,
            propagate: true,
            from_normalized: false,
        };
        assert!(model.cost(&sb).total() < model.cost(&bl).total());
    }

    #[test]
    fn disk_sort_costs_more_io_than_mem_sort() {
        let (db, t) = setup(100);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let base = PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        };
        let mk = |disk: bool| PhysicalPlan::Sort {
            input: Box::new(base.clone()),
            key: instn_query::plan::SortKey::Column(0),
            desc: false,
            disk,
        };
        assert!(model.cost(&mk(true)).io > model.cost(&mk(false)).io);
    }

    #[test]
    fn nested_loop_cost_scales_with_blocks() {
        let (db, t) = setup(50);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let join = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            pred: JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            },
        };
        let c = model.cost(&join);
        assert!(c.cpu >= 50.0 * 50.0, "cross product cpu");
        assert!(c.rows > 0.0 && c.rows <= 60.0, "equi-join rows {}", c.rows);
    }

    #[test]
    fn unknown_index_is_infinite() {
        let (db, t) = setup(10);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let bad = PhysicalPlan::SummaryIndexScan {
            index: "nope".into(),
            label: "Disease".into(),
            lo: None,
            hi: None,
            propagate: false,
            reverse: false,
        };
        assert!(model.cost(&bad).total().is_infinite());
    }

    #[test]
    fn zero_cache_pages_is_bit_identical_to_uncached_model() {
        let (db, t) = setup(150);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let base = CostModel::new(&stats, &info);
        let zero = CostModel::with_cache_pages(&stats, &info, 0);
        let plans = [
            PhysicalPlan::SummaryIndexScan {
                index: "idx".into(),
                label: "Disease".into(),
                lo: Some(5),
                hi: None,
                propagate: true,
                reverse: false,
            },
            PhysicalPlan::BaselineIndexScan {
                index: "bl".into(),
                label: "Disease".into(),
                lo: Some(5),
                hi: None,
                propagate: true,
                from_normalized: true,
            },
            PhysicalPlan::SummaryIndexJoin {
                left: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: false,
                }),
                left_key: SummaryExpr::label_value("C", "Disease"),
                index: "idx".into(),
                label: "Disease".into(),
                residual: None,
                with_summaries: true,
            },
        ];
        for plan in &plans {
            let a = base.cost(plan);
            let b = zero.cost(plan);
            assert_eq!(a.io.to_bits(), b.io.to_bits(), "{plan:?}");
            assert_eq!(a.cpu.to_bits(), b.cpu.to_bits(), "{plan:?}");
            assert_eq!(a.rows.to_bits(), b.rows.to_bits(), "{plan:?}");
        }
    }

    #[test]
    fn cache_discount_lowers_repeated_probe_cost_not_rows() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let cold = CostModel::new(&stats, &info);
        let warm = CostModel::with_cache_pages(&stats, &info, 1 << 20);
        let join = PhysicalPlan::SummaryIndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            left_key: SummaryExpr::label_value("C", "Disease"),
            index: "idx".into(),
            label: "Disease".into(),
            residual: None,
            with_summaries: true,
        };
        let c = cold.cost(&join);
        let w = warm.cost(&join);
        assert!(w.io < c.io, "warm {} vs cold {}", w.io, c.io);
        assert_eq!(w.rows.to_bits(), c.rows.to_bits());
        assert_eq!(w.cpu.to_bits(), c.cpu.to_bits());
    }

    #[test]
    fn cache_discount_is_monotone_in_budget_and_floors_at_leaf() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let scan = PhysicalPlan::BaselineIndexScan {
            index: "bl".into(),
            label: "Disease".into(),
            lo: Some(5),
            hi: None,
            propagate: false,
            from_normalized: false,
        };
        let mut last = f64::INFINITY;
        // Root-only budget, root+inner budget, effectively infinite.
        for pages in [0usize, 1, 100, 1 << 30] {
            let model = CostModel::with_cache_pages(&stats, &info, pages);
            let io = model.cost(&scan).io;
            assert!(io <= last, "budget {pages}: {io} > {last}");
            // Even an infinite budget still charges the leaf touches and
            // per-result heap reads — cost stays positive.
            assert!(io >= 1.0);
            last = io;
        }
    }

    #[test]
    fn conjunctive_selectivity_multiplies() {
        let (db, t) = setup(100);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let single = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 5),
        };
        let double = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::and(
                Expr::label_cmp("C", "Disease", CmpOp::Ge, 5),
                Expr::col_cmp(0, CmpOp::Eq, Value::Int(3)),
            ),
        };
        assert!(model.cost(&double).rows < model.cost(&single).rows);
    }

    #[test]
    fn limit_pushdown_credits_lazy_index_scan() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let scan = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: None,
            hi: None,
            propagate: true,
            reverse: true,
        };
        let full = model.cost(&scan);
        // Cap via the explicit entry point …
        let capped = model.cost_with_limit(&scan, Some(5));
        assert!(
            capped.io < full.io / 2.0,
            "capped {} vs full {}",
            capped.io,
            full.io
        );
        assert!(capped.rows <= 5.0);
        // … and via a Limit node, which pushes its own cap down.
        let lim = PhysicalPlan::Limit {
            input: Box::new(scan.clone()),
            n: 5,
        };
        let via_node = model.cost(&lim);
        assert!(
            via_node.io < full.io / 2.0,
            "limit node {} vs full {}",
            via_node.io,
            full.io
        );
        // No cap requested → identical to the plain cost.
        let uncapped = model.cost_with_limit(&scan, None);
        assert_eq!(uncapped.io.to_bits(), full.io.to_bits());
        assert_eq!(uncapped.rows.to_bits(), full.rows.to_bits());
    }

    #[test]
    fn blocking_sort_denies_limit_credit_to_its_input() {
        let (db, t) = setup(100);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let seq = PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        };
        let sort = PhysicalPlan::Sort {
            input: Box::new(seq.clone()),
            key: instn_query::plan::SortKey::Column(0),
            desc: true,
            disk: false,
        };
        // A limit above a sort cannot shrink the sort's input: the sort
        // consumes everything before emitting its first row.
        let lim_sort = PhysicalPlan::Limit {
            input: Box::new(sort.clone()),
            n: 3,
        };
        assert_eq!(
            model.cost(&lim_sort).io.to_bits(),
            model.cost(&sort).io.to_bits()
        );
        // The same limit directly over the pipelined scan is credited.
        let lim_scan = PhysicalPlan::Limit {
            input: Box::new(seq.clone()),
            n: 3,
        };
        assert!(model.cost(&lim_scan).io < model.cost(&seq).io);
    }

    #[test]
    fn dop_one_exchange_is_bit_identical_to_its_input() {
        let (db, t) = setup(150);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let frag = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 5),
        };
        let wrapped = PhysicalPlan::Exchange {
            input: Box::new(frag.clone()),
            dop: 1,
        };
        let a = model.cost(&frag);
        let b = model.cost(&wrapped);
        assert_eq!(a.io.to_bits(), b.io.to_bits());
        assert_eq!(a.cpu.to_bits(), b.cpu.to_bits());
        assert_eq!(a.rows.to_bits(), b.rows.to_bits());
        // `dop: 0` with a serial model resolves to DOP 1: same bits.
        let inherit = PhysicalPlan::Exchange {
            input: Box::new(frag),
            dop: 0,
        };
        let c = model.cost(&inherit);
        assert_eq!(a.io.to_bits(), c.io.to_bits());
        assert_eq!(a.cpu.to_bits(), c.cpu.to_bits());
    }

    #[test]
    fn parallel_exchange_divides_scan_cost_but_taxes_startup() {
        // A multi-morsel table (> DEFAULT_MORSEL_ROWS rows) without the
        // quadratic annotation load of `setup`.
        let mut db = Database::new();
        let t = db
            .create_table(
                "Wide",
                Schema::of(&[("id", ColumnType::Int), ("descr", ColumnType::Text)]),
            )
            .unwrap();
        for i in 0..(3 * DEFAULT_MORSEL_ROWS) {
            db.insert_tuple(t, vec![Value::Int(i as i64), Value::Text("d".repeat(64))])
                .unwrap();
        }
        let stats = Statistics::analyze(&db).unwrap();
        let info = IndexInfo::default();
        let model = CostModel::new(&stats, &info);
        let frag = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            pred: Expr::col_cmp(0, CmpOp::Ge, Value::Int(1500)),
        };
        let wrap = |dop| PhysicalPlan::Exchange {
            input: Box::new(frag.clone()),
            dop,
        };
        let serial = model.cost(&frag);
        let par4 = model.cost(&wrap(4));
        // The big scan parallelizes: I/O divides by the effective DOP …
        assert!(
            par4.io < serial.io,
            "par {} vs serial {}",
            par4.io,
            serial.io
        );
        assert_eq!(
            par4.rows.to_bits(),
            serial.rows.to_bits(),
            "cardinality unchanged"
        );
        // … but the startup tax means higher DOP is not free: CPU grows
        // with the per-worker spawn cost once the scan is split thin.
        let par2 = model.cost(&wrap(2));
        assert!(par4.cpu + 2.0 * WORKER_STARTUP_CPU > par2.cpu);
        // `dop: 0` inherits the model's DOP.
        let par_model = CostModel::new(&stats, &info).with_dop(4);
        let inherited = par_model.cost(&wrap(0));
        assert_eq!(inherited.io.to_bits(), par4.io.to_bits());
    }

    #[test]
    fn startup_tax_keeps_tiny_fragments_serial() {
        let (db, t) = setup(20);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let frag = PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        };
        let wrapped = PhysicalPlan::Exchange {
            input: Box::new(frag.clone()),
            dop: 8,
        };
        // 20 rows = one morsel: the worker startup tax dominates whatever
        // the division saves, so the serial plan prices cheaper.
        assert!(model.cost(&wrapped).total() > model.cost(&frag).total());
    }

    #[test]
    fn small_inner_nested_loop_charges_single_inner_scan() {
        let mut db = Database::new();
        let outer = db
            .create_table("Outer", Schema::of(&[("a", ColumnType::Int)]))
            .unwrap();
        let small = db
            .create_table("Small", Schema::of(&[("a", ColumnType::Int)]))
            .unwrap();
        let big = db
            .create_table("Big", Schema::of(&[("a", ColumnType::Int)]))
            .unwrap();
        for i in 0..(3 * NL_BLOCK_SIZE) {
            db.insert_tuple(outer, vec![Value::Int(i as i64)]).unwrap();
        }
        for i in 0..7 {
            db.insert_tuple(small, vec![Value::Int(i)]).unwrap();
        }
        for i in 0..(DEFAULT_SORT_MEM + 50) {
            db.insert_tuple(big, vec![Value::Int(i as i64)]).unwrap();
        }
        let stats = Statistics::analyze(&db).unwrap();
        let info = IndexInfo::default();
        let model = CostModel::new(&stats, &info);
        let scan = |t| PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        };
        let join = |inner| PhysicalPlan::NestedLoopJoin {
            left: Box::new(scan(outer)),
            right: Box::new(scan(inner)),
            pred: JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            },
        };
        let io_outer = model.cost(&scan(outer)).io;
        let io_small = model.cost(&scan(small)).io;
        let io_big = model.cost(&scan(big)).io;
        // Small inner (fits the sort budget): cached after the first
        // block, so exactly one inner scan despite a 3-block outer.
        let c_small = model.cost(&join(small));
        assert!(
            (c_small.io - (io_outer + io_small)).abs() < 1e-9,
            "cached inner: {} vs {}",
            c_small.io,
            io_outer + io_small
        );
        // Oversized inner: re-scanned once per outer block.
        let c_big = model.cost(&join(big));
        assert!(
            c_big.io >= io_outer + 2.5 * io_big,
            "rescanned inner: {} vs outer {} + 3×{}",
            c_big.io,
            io_outer,
            io_big
        );
    }

    #[test]
    fn refresh_cost_matches_executor_ladder() {
        let (db, t) = setup(200);
        let stats = Statistics::analyze(&db).unwrap();
        let info = index_info(t);
        let model = CostModel::new(&stats, &info);
        let rows = stats.rows(t) as u64;
        assert_eq!(rows, 200);
        // The executor's maintenance ladder replays iff
        // gap × 4 ≤ max(rows, 16); the model must agree at every gap.
        for gap in [0u64, 1, 10, 49, 50, 51, 100, 1000] {
            let replay = model.replay_cost(t, gap);
            let rebuild = model.rebuild_cost(t);
            let executor_replays = gap * 4 <= rows.max(16);
            assert_eq!(
                replay.total() <= rebuild.total(),
                executor_replays,
                "gap {gap}: model and executor disagree"
            );
            let chosen = model.refresh_cost(t, Some(gap));
            let want = if executor_replays { replay } else { rebuild };
            assert_eq!(chosen, want, "gap {gap}");
        }
        // Truncated journal: replay impossible, only the rebuild arm.
        assert_eq!(model.refresh_cost(t, None), model.rebuild_cost(t));
        // Rebuild never drops below the fixed floor.
        let empty = Statistics::default();
        let model = CostModel::new(&empty, &info);
        assert_eq!(model.rebuild_cost(t).io, MIN_REBUILD_IO);
    }
}
