//! Cost-based planning on the live query path (DESIGN.md §12).
//!
//! Every interactive `SELECT` — shell, wire server, prepared statements —
//! funnels through [`plan_statement`]: parse, fingerprint, probe the
//! session's [`PlanCache`](instn_query::PlanCache), and only on a miss run
//! the full `instn_opt::Optimizer` pipeline. The optimizer is seeded with
//! the session's registered indexes, the engine's buffer-pool capacity,
//! and the session DOP, so the plan that runs is the plan the cost model
//! actually chose — `lower_naive` stays a bench baseline, not a serving
//! path.
//!
//! Planning cost on repeat is bounded by two caches:
//!
//! * **Plans** — keyed by an AST-normalized statement fingerprint prefixed
//!   with the planner-relevant session state (DOP, sort budget, registry
//!   epoch), revalidated against per-table journal high-water marks on
//!   every use (see `instn_query::plan_cache`).
//! * **Statistics** — a per-session [`Statistics`] snapshot that rides
//!   [`Statistics::catch_up`] over the journal gap instead of re-scanning
//!   the database (`Statistics::analyze`) for every plan.

use std::sync::Arc;
use std::time::Instant;

use instn_core::db::Database;
use instn_opt::{Optimizer, PlannerConfig, Statistics};
use instn_query::plan_cache::{normalize_statement, CachedPlan, PlanLookup, PlanStamp};
use instn_query::session::IndexDescriptors;
use instn_query::Session;
use instn_storage::TableId;

use crate::ast::{SelectStmt, Statement};
use crate::lower::lower_select;
use crate::{Result, SqlError};

/// How a [`PlannedStatement`] obtained its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Served from the session plan cache; the optimizer did not run.
    CacheHit,
    /// No cached entry under this fingerprint; freshly optimized and
    /// stored.
    CacheMiss,
    /// A cached entry existed but a touched table advanced past its
    /// stamp; the entry was dropped and the statement replanned.
    Invalidated,
    /// The plan cache is disabled (`INSTN_PLAN_CACHE=0` or `\plancache
    /// off`); freshly optimized, nothing stored.
    CacheDisabled,
}

impl PlanSource {
    /// The EXPLAIN / EXPLAIN ANALYZE `plan:` line for this outcome.
    pub fn describe(&self) -> &'static str {
        match self {
            PlanSource::CacheHit => "cache hit (reused)",
            PlanSource::CacheMiss => "cache miss (optimized)",
            PlanSource::Invalidated => "invalidated (replanned)",
            PlanSource::CacheDisabled => "cache disabled (optimized)",
        }
    }
}

/// A statement planned through the optimizer (or served from the cache),
/// ready to execute.
#[derive(Debug, Clone)]
pub struct PlannedStatement {
    /// The plan plus output header, EXPLAIN text, and validity stamp.
    pub plan: Arc<CachedPlan>,
    /// Where the plan came from.
    pub source: PlanSource,
    /// Wall-clock nanoseconds spent planning (0 on a cache hit).
    pub plan_wall_ns: u64,
}

/// Cross-query planner state a session carries in its opaque slot:
/// the cached optimizer statistics.
struct PlannerState {
    stats: Statistics,
}

fn bind<E: std::fmt::Display>(e: E) -> SqlError {
    SqlError::Bind(e.to_string())
}

/// The plan-cache key for `sel` under this session's planner-relevant
/// state. The statement body is the parsed AST's debug form, so layout and
/// keyword-case differences (and an `EXPLAIN` prefix) share an entry while
/// identifier case stays significant; the prefix folds in everything else
/// a plan depends on — DOP, sort budget, and the index-registry epoch
/// (registering an index must force a replan, not reuse a plan chosen
/// without it).
pub fn statement_fingerprint(session: &Session, sel: &SelectStmt) -> String {
    format!(
        "dop={};sort={};epoch={}|{:?}",
        session.exec_config.dop,
        session.sort_mem,
        session.registry_epoch(),
        sel
    )
}

/// This session's optimizer statistics, caught up over the journal gap —
/// the cheap replacement for the full `Statistics::analyze` rescan.
/// Returns the statistics plus whether a full re-analyze was needed
/// (first use, journal truncated past the gap, or a structural change).
pub fn refresh_statistics(session: &mut Session, db: &Database) -> Result<(Statistics, bool)> {
    let slot = session.planner_state_mut();
    if let Some(state) = slot.as_mut().and_then(|b| b.downcast_mut::<PlannerState>()) {
        let rescanned = state.stats.catch_up(db).map_err(bind)?;
        return Ok((state.stats.clone(), rescanned));
    }
    let stats = Statistics::analyze(db).map_err(bind)?;
    *slot = Some(Box::new(PlannerState {
        stats: stats.clone(),
    }));
    Ok((stats, true))
}

/// Build a [`PlannerConfig`] mirroring the session's registered indexes
/// (labels-`k` looked up from each instance's definition), its sort
/// budget, and its DOP. Buffer-pool capacity is filled in by
/// [`Optimizer::with_stats`] from the engine itself.
pub(crate) fn planner_config(
    db: &Database,
    descriptors: &IndexDescriptors,
    sort_mem: usize,
    dop: usize,
) -> PlannerConfig {
    let labels_k = |table: TableId, instance: &str| {
        db.instance_by_name(table, instance)
            .ok()
            .and_then(|i| i.labels())
            .map(|l| l.len())
            .unwrap_or(2)
    };
    let mut config = PlannerConfig {
        sort_mem_tuples: sort_mem,
        ..PlannerConfig::default()
    };
    for (name, table, instance) in &descriptors.summary {
        config = config.with_summary_index(name, *table, instance, labels_k(*table, instance));
    }
    for (name, table, instance) in &descriptors.baseline {
        config.baseline_indexes.insert(
            name.clone(),
            (*table, instance.clone(), labels_k(*table, instance)),
        );
    }
    for (table, col) in &descriptors.column {
        config = config.with_column_index(*table, *col);
    }
    config.with_dop(dop)
}

/// Lower + optimize `sel` into a cache-ready entry. The DOP post-pass runs
/// inside the optimizer (cost-gated Exchange placement), so the returned
/// physical plan is final — callers do not re-parallelize it.
fn build_plan(
    db: &Database,
    descriptors: &IndexDescriptors,
    sort_mem: usize,
    dop: usize,
    stats: Statistics,
    sel: &SelectStmt,
) -> Result<CachedPlan> {
    let lowered = lower_select(db, sel)?;
    let config = planner_config(db, descriptors, sort_mem, dop);
    let optimizer = Optimizer::with_stats(db, stats, config);
    let optimized = optimizer.optimize(&lowered.plan).map_err(bind)?;
    let tables = sel.from.iter().filter_map(|(t, _)| db.table_id(t).ok());
    let stamp = PlanStamp::capture(db, tables);
    Ok(CachedPlan {
        plan: Arc::new(optimized.physical),
        columns: lowered.columns,
        explain: optimized.explain,
        cost: optimized.cost.total(),
        stamp,
    })
}

/// Plan one parsed `SELECT` for this session: probe the plan cache
/// (revalidating the entry's journal stamp), and on a miss or
/// invalidation run the optimizer — with statistics caught up over the
/// journal gap, the session's indexes, the engine's buffer pool, and the
/// session DOP — and store the result.
///
/// Cache events are mirrored into the engine's metrics registry when it
/// is enabled (`plan_cache_{hits,misses,invalidations}_total`; fresh
/// planning time lands in the `plan_wall_ns` histogram).
pub fn plan_select(session: &mut Session, sel: &SelectStmt) -> Result<PlannedStatement> {
    let fingerprint = statement_fingerprint(session, sel);
    let shared = session.shared().clone();
    let db = shared
        .try_read()
        .map_err(|_| SqlError::Bind("engine lock poisoned".into()))?;
    let metrics = Arc::clone(db.metrics());
    let observed = metrics.is_enabled();
    let lookup = session.plan_cache.lookup(&fingerprint, &db);
    if let PlanLookup::Hit(entry) = lookup {
        if observed {
            metrics
                .counter(
                    "plan_cache_hits_total",
                    "Statements served from a cached plan (no optimizer run)",
                )
                .inc();
        }
        return Ok(PlannedStatement {
            plan: entry,
            source: PlanSource::CacheHit,
            plan_wall_ns: 0,
        });
    }
    let source = if !session.plan_cache.enabled() {
        PlanSource::CacheDisabled
    } else if matches!(lookup, PlanLookup::Invalidated) {
        PlanSource::Invalidated
    } else {
        PlanSource::CacheMiss
    };
    let started = Instant::now();
    // With the cache disabled the session plans like the pre-cache engine:
    // fresh statistics (a full analyze rescan) plus a fresh optimizer pass
    // on every statement. That is the always-replan baseline the figures
    // harness compares against; enabled sessions instead ride
    // `Statistics::catch_up` over the journal gap.
    let stats = if matches!(source, PlanSource::CacheDisabled) {
        Statistics::analyze(&db).map_err(bind)?
    } else {
        refresh_statistics(session, &db)?.0
    };
    let descriptors = session.index_descriptors();
    let entry = build_plan(
        &db,
        &descriptors,
        session.sort_mem,
        session.exec_config.dop,
        stats,
        sel,
    )?;
    let plan_wall = instn_obs::elapsed_ns(started);
    if observed {
        match source {
            PlanSource::Invalidated => metrics
                .counter(
                    "plan_cache_invalidations_total",
                    "Cached plans dropped because a touched table advanced",
                )
                .inc(),
            PlanSource::CacheMiss => metrics
                .counter(
                    "plan_cache_misses_total",
                    "Statements planned because no cached plan existed",
                )
                .inc(),
            PlanSource::CacheDisabled | PlanSource::CacheHit => {}
        }
        metrics
            .histogram("plan_wall_ns", "Fresh statement-planning wall time (ns)")
            .record(plan_wall);
    }
    let plan = session.plan_cache.insert(&fingerprint, entry);
    Ok(PlannedStatement {
        plan,
        source,
        plan_wall_ns: plan_wall,
    })
}

/// Parse `input` and, when it is a `SELECT`, plan it through
/// [`plan_select`]. Any other statement — or input that does not parse —
/// comes back as `Ok(None)`: the caller falls through to
/// [`crate::lower::execute_statement`], which re-parses and surfaces the
/// real error.
pub fn plan_statement(session: &mut Session, input: &str) -> Result<Option<PlannedStatement>> {
    let Ok(Statement::Select(sel)) = crate::parser::parse(input) else {
        return Ok(None);
    };
    plan_select(session, &sel).map(Some)
}

/// Render the `EXPLAIN` view of a planned statement: the *actual*
/// optimized (possibly parallelized) physical plan that would execute,
/// followed by the cache-status and cost line — not the naive logical
/// plan the serving layer used to show.
pub fn render_explain(planned: &PlannedStatement) -> String {
    format!(
        "{}plan: {}  cost={:.1}\n",
        planned.plan.plan,
        planned.source.describe(),
        planned.plan.cost
    )
}

/// Normalize a statement for display/dedup purposes (re-exported next to
/// the planning entry points for callers that key UI state off statement
/// text rather than the AST fingerprint).
pub fn normalized(input: &str) -> String {
    normalize_statement(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_query::SharedDatabase;
    use instn_storage::{ColumnType, Schema, Value};

    fn shared() -> (SharedDatabase, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "T",
                Schema::of(&[("id", ColumnType::Int), ("name", ColumnType::Text)]),
            )
            .unwrap();
        for i in 0..4i64 {
            db.insert_tuple(t, vec![Value::Int(i), Value::Text(format!("n{i}"))])
                .unwrap();
        }
        (SharedDatabase::new(db), t)
    }

    #[test]
    fn hit_miss_invalidate_roundtrip() {
        let (shared, t) = shared();
        let mut session = shared.session();
        session.plan_cache.set_enabled(true);
        let p1 = plan_statement(&mut session, "SELECT id FROM T")
            .unwrap()
            .unwrap();
        assert_eq!(p1.source, PlanSource::CacheMiss);
        assert_eq!(p1.plan.columns, vec!["id".to_string()]);
        // Layout and keyword case differences share the entry.
        let p2 = plan_statement(&mut session, "select  id\nfrom T ;")
            .unwrap()
            .unwrap();
        assert_eq!(p2.source, PlanSource::CacheHit);
        assert_eq!(p2.plan_wall_ns, 0);
        // DML on T invalidates it.
        shared
            .with_write(|db| db.insert_tuple(t, vec![Value::Int(9), Value::Text("x".into())]))
            .unwrap();
        let p3 = plan_statement(&mut session, "SELECT id FROM T")
            .unwrap()
            .unwrap();
        assert_eq!(p3.source, PlanSource::Invalidated);
        // Executing the cached plan yields the fresh rows.
        let rows = session.execute(&p3.plan.plan).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn session_state_changes_force_replans() {
        let (shared, _t) = shared();
        let mut session = shared.session();
        session.plan_cache.set_enabled(true);
        let sql = "SELECT id FROM T";
        assert_eq!(
            plan_statement(&mut session, sql).unwrap().unwrap().source,
            PlanSource::CacheMiss
        );
        // A DOP change is part of the fingerprint: no stale-shape reuse.
        session.exec_config.dop = 4;
        assert_eq!(
            plan_statement(&mut session, sql).unwrap().unwrap().source,
            PlanSource::CacheMiss
        );
        // Registering an index bumps the epoch and forces a replan.
        session.register_column_index(_t, 0).unwrap();
        assert_eq!(
            plan_statement(&mut session, sql).unwrap().unwrap().source,
            PlanSource::CacheMiss
        );
    }

    #[test]
    fn non_select_and_unparsable_fall_through() {
        let (shared, _t) = shared();
        let mut session = shared.session();
        assert!(plan_statement(&mut session, "ANALYZE").unwrap().is_none());
        assert!(plan_statement(&mut session, "not sql").unwrap().is_none());
    }

    #[test]
    fn statistics_ride_the_journal_gap() {
        let (shared, t) = shared();
        let mut session = shared.session();
        let (s1, rescanned) = shared
            .with_read(|db| refresh_statistics(&mut session, db))
            .unwrap();
        assert!(rescanned, "first use analyzes from scratch");
        shared
            .with_write(|db| db.insert_tuple(t, vec![Value::Int(9), Value::Text("x".into())]))
            .unwrap();
        let (s2, rescanned) = shared
            .with_read(|db| refresh_statistics(&mut session, db))
            .unwrap();
        assert!(!rescanned, "gap replayed from the journal, no rescan");
        assert!(s2.as_of() > s1.as_of());
    }
}
