//! Name resolution and lowering: AST → [`LogicalPlan`] / engine commands.
//!
//! `SELECT` lowering classifies each WHERE conjunct:
//!
//! * cross-alias `col = col` → data join predicate (⋈),
//! * cross-alias summary-chain comparison → summary join predicate (`J`),
//! * single-side data predicate → σ above that side's scan,
//! * single-side summary predicate → `S` above that side's scan,
//!
//! and assembles scans → selections → join → GROUP BY → ORDER BY (data
//! column or the summary-based `O` sort) → projection → LIMIT. The produced
//! logical plan is exactly what `instn_opt::Optimizer` rewrites with the
//! §5.1 rules.
//!
//! Note on projections: the SQL path places the projection above the final
//! operators, so cell-level annotation-effect elimination (Fig. 3 step 1)
//! applies only when the projection ends up adjacent to a base scan — the
//! same condition under which the paper's Theorems 1–2 require it.

use std::collections::HashMap;

use instn_annot::Annotation;
use instn_core::db::Database;
use instn_core::instance::InstanceKind;
use instn_core::maintain::SummaryDelta;
use instn_core::summary::InstanceId;
use instn_core::zoom::{zoom_in, ZoomTarget};
use instn_query::expr::{CmpOp, Expr, ObjFunc, ObjRef, SummaryExpr};
use instn_query::plan::{JoinPredicate, LogicalPlan, SortKey};
use instn_storage::{TableId, Value};

use crate::ast::{
    AlterAction, AstExpr, CmpOpAst, ColRef, Lit, MethodCall, SelectList, SelectStmt, Statement,
    ZoomTargetAst,
};
use crate::{Result, SqlError};

/// A lowered `SELECT`.
#[derive(Debug)]
pub struct LoweredQuery {
    /// The logical plan.
    pub plan: LogicalPlan,
    /// Output column names (post-projection).
    pub columns: Vec<String>,
}

/// Outcome of executing one statement.
#[derive(Debug)]
pub enum SqlOutcome {
    /// A query plan, ready for the optimizer/executor.
    Query(LoweredQuery),
    /// DDL completed: instance linked (deltas for index creation) or
    /// dropped (`None`).
    Altered {
        /// The linked instance, if an ADD.
        instance: Option<InstanceId>,
        /// The table the statement altered.
        table: TableId,
        /// The instance name named in the statement (for registering a
        /// session-level index over the new instance).
        name: String,
        /// Maintenance deltas for index layers. The engine journals the
        /// same deltas revision-stamped (see `instn_core::DeltaJournal`),
        /// so session indexes refresh from the journal; this copy is for
        /// callers that maintain out-of-engine structures directly.
        deltas: Vec<SummaryDelta>,
        /// Whether an index was requested (`INDEXABLE`).
        indexable: bool,
    },
    /// Zoom-in result: the raw annotations.
    Zoom(Vec<Annotation>),
    /// `EXPLAIN` output: the rendered logical plan.
    Explain(String),
    /// `EXPLAIN ANALYZE` output: the executed plan plus observed I/O.
    ExplainAnalyzed(ExplainAnalysis),
    /// `ANALYZE` output: freshly collected optimizer statistics.
    Analyzed(Box<instn_opt::Statistics>),
}

/// What `EXPLAIN ANALYZE` observed while executing the query.
#[derive(Debug, Clone)]
pub struct ExplainAnalysis {
    /// The executed physical plan, rendered.
    pub plan: String,
    /// Per-operator runtime metrics (rows emitted, loops, inclusive I/O)
    /// observed by the streaming executor, rendered as an annotated tree.
    pub operators: instn_query::OpMetrics,
    /// Rows the query produced.
    pub rows: usize,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
    /// I/O charged during execution: physical transfers, logical accesses,
    /// and buffer-pool traffic.
    pub io: instn_storage::IoSnapshot,
    /// Index-maintenance work performed before the plan opened: stale
    /// registered indexes caught up by journal replay or bulk rebuild
    /// (see `instn_query::MaintenanceReport`).
    pub maintenance: instn_query::MaintenanceReport,
    /// Where the executed plan came from — the plan-cache status
    /// (`cache hit (reused)`, `cache miss (optimized)`, …) rendered as the
    /// `plan:` line. Paths planning outside a session report
    /// `optimized (no plan cache)`.
    pub plan_source: String,
}

impl std::fmt::Display for ExplainAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plan: {}", self.plan_source)?;
        if self.maintenance.indexes_checked > 0 {
            write!(f, "{}", self.maintenance.render())?;
        }
        write!(f, "{}", self.operators.render())?;
        writeln!(
            f,
            "rows: {}  time: {:.3} ms",
            self.rows,
            self.elapsed.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "physical I/O: heap {}r/{}w, index {}r/{}w (total {})",
            self.io.heap_reads,
            self.io.heap_writes,
            self.io.index_reads,
            self.io.index_writes,
            self.io.total()
        )?;
        writeln!(
            f,
            "logical I/O:  heap {}r/{}w, index {}r/{}w (total {})",
            self.io.logical_heap_reads,
            self.io.logical_heap_writes,
            self.io.logical_index_reads,
            self.io.logical_index_writes,
            self.io.logical_total()
        )?;
        writeln!(
            f,
            "buffer pool:  {} hits, {} misses, {} evictions (hit ratio {:.1}%)",
            self.io.cache_hits,
            self.io.cache_misses,
            self.io.cache_evictions,
            self.io.hit_ratio() * 100.0
        )
    }
}

/// Parse + lower + (for DDL/zoom) execute one statement.
///
/// `registry` maps instance names to their definitions, standing in for the
/// catalog of summary instances a deployed system would hold; `ALTER TABLE
/// … ADD <name>` looks the definition up there.
pub fn execute_statement(
    db: &mut Database,
    registry: &HashMap<String, InstanceKind>,
    input: &str,
) -> Result<SqlOutcome> {
    let stmt = crate::parser::parse(input)?;
    match stmt {
        Statement::Select(sel) => Ok(SqlOutcome::Query(lower_select(db, &sel)?)),
        Statement::Explain(sel) => {
            let lowered = lower_select(db, &sel)?;
            Ok(SqlOutcome::Explain(format!("{}", lowered.plan)))
        }
        Statement::ExplainAnalyze(sel) => {
            // A throwaway context: no registered indexes, so no
            // maintenance work will show. Callers holding a session should
            // prefer [`explain_analyze_in_ctx`], which runs against the
            // session's registry and surfaces the `maintenance:` section.
            let mut ctx = instn_query::exec::ExecContext::new(db);
            let analysis = run_explain_analyze(&mut ctx, &sel)?;
            Ok(SqlOutcome::ExplainAnalyzed(analysis))
        }
        Statement::Analyze => {
            let stats =
                instn_opt::Statistics::analyze(db).map_err(|e| SqlError::Bind(e.to_string()))?;
            Ok(SqlOutcome::Analyzed(Box::new(stats)))
        }
        Statement::AlterTable { table, action } => {
            let tid = db
                .table_id(&table)
                .map_err(|e| SqlError::Bind(e.to_string()))?;
            match action {
                AlterAction::Add {
                    instance,
                    indexable,
                } => {
                    let kind = registry.get(&instance).ok_or_else(|| {
                        SqlError::Bind(format!("unknown summary instance {instance}"))
                    })?;
                    let (id, deltas) = db
                        .link_instance(tid, &instance, kind.clone(), indexable)
                        .map_err(|e| SqlError::Bind(e.to_string()))?;
                    Ok(SqlOutcome::Altered {
                        instance: Some(id),
                        table: tid,
                        name: instance,
                        deltas,
                        indexable,
                    })
                }
                AlterAction::Drop { instance } => {
                    db.drop_instance(tid, &instance)
                        .map_err(|e| SqlError::Bind(e.to_string()))?;
                    Ok(SqlOutcome::Altered {
                        instance: None,
                        table: tid,
                        name: instance,
                        deltas: Vec::new(),
                        indexable: false,
                    })
                }
            }
        }
        Statement::ZoomIn {
            table,
            instance,
            oid,
            target,
        } => {
            let tid = db
                .table_id(&table)
                .map_err(|e| SqlError::Bind(e.to_string()))?;
            let target = match target {
                ZoomTargetAst::All => ZoomTarget::All,
                ZoomTargetAst::Label(l) => ZoomTarget::ClassLabel(l),
                ZoomTargetAst::Rep(i) => ZoomTarget::Representative(i),
            };
            let annots = zoom_in(db, tid, instn_storage::Oid(oid), &instance, &target)
                .map_err(|e| SqlError::Bind(e.to_string()))?;
            Ok(SqlOutcome::Zoom(annots))
        }
    }
}

/// Parse `input` and, when it is an `EXPLAIN ANALYZE SELECT …`, execute it
/// inside the caller's [`instn_query::ExecContext`] — typically one
/// borrowed from a `Session`, so the session's registered indexes are
/// refreshed from the delta journal before the plan opens and the work
/// shows up in the analysis' `maintenance:` section.
///
/// Returns `Ok(None)` when `input` is any other statement (or does not
/// parse): the caller should fall through to [`execute_statement`].
pub fn explain_analyze_in_ctx(
    ctx: &mut instn_query::ExecContext<'_>,
    input: &str,
) -> Result<Option<ExplainAnalysis>> {
    let Ok(Statement::ExplainAnalyze(sel)) = crate::parser::parse(input) else {
        return Ok(None);
    };
    run_explain_analyze(ctx, &sel).map(Some)
}

/// Lower and execute one `EXPLAIN ANALYZE` body against `ctx`, collecting
/// plan text, operator metrics, observed I/O, and the index-maintenance
/// report of the refresh pass the executor ran before the plan opened.
///
/// Planning goes through `instn_opt::Optimizer`, seeded with the indexes
/// installed in `ctx` and its sort/DOP settings — the plan analyzed is the
/// plan a serving path would run, not the naive lowering. There is no
/// session here, so no plan cache participates; session holders get cache
/// status through [`explain_analyze_statement`].
fn run_explain_analyze(
    ctx: &mut instn_query::ExecContext<'_>,
    sel: &SelectStmt,
) -> Result<ExplainAnalysis> {
    let lowered = lower_select(ctx.db, sel)?;
    let stats =
        instn_opt::Statistics::analyze(ctx.db).map_err(|e| SqlError::Bind(e.to_string()))?;
    let descriptors = ctx.index_descriptors();
    let config =
        crate::plan::planner_config(ctx.db, &descriptors, ctx.sort_mem, ctx.config.dop.max(1));
    let optimized = instn_opt::Optimizer::with_stats(ctx.db, stats, config)
        .optimize(&lowered.plan)
        .map_err(|e| SqlError::Bind(e.to_string()))?;
    let physical = optimized.physical;
    let before = ctx.db.stats().snapshot();
    let start = std::time::Instant::now();
    let (rows, operators) = ctx
        .execute_with_metrics(&physical)
        .map_err(|e| SqlError::Bind(e.to_string()))?;
    let elapsed = start.elapsed();
    let io = ctx.db.stats().snapshot().since(&before);
    Ok(ExplainAnalysis {
        plan: format!("{physical}"),
        operators,
        rows: rows.len(),
        elapsed,
        io,
        maintenance: ctx.maintenance_report(),
        plan_source: "optimized (no plan cache)".to_string(),
    })
}

/// Parse `input` and, when it is an `EXPLAIN ANALYZE SELECT …`, plan it
/// through the session's plan cache ([`crate::plan::plan_select`]) and
/// execute it against the session's registered indexes, reporting the
/// cache status on the `plan:` line. Any other statement comes back as
/// `Ok(None)` — fall through to [`execute_statement`].
pub fn explain_analyze_statement(
    session: &mut instn_query::Session,
    input: &str,
) -> Result<Option<ExplainAnalysis>> {
    let Ok(Statement::ExplainAnalyze(sel)) = crate::parser::parse(input) else {
        return Ok(None);
    };
    let planned = crate::plan::plan_select(session, &sel)?;
    let physical = std::sync::Arc::clone(&planned.plan.plan);
    let analysis = session
        .try_with_ctx(|ctx| -> Result<ExplainAnalysis> {
            let before = ctx.db.stats().snapshot();
            let start = std::time::Instant::now();
            let (rows, operators) = ctx
                .execute_with_metrics(&physical)
                .map_err(|e| SqlError::Bind(e.to_string()))?;
            let elapsed = start.elapsed();
            let io = ctx.db.stats().snapshot().since(&before);
            Ok(ExplainAnalysis {
                plan: format!("{physical}"),
                operators,
                rows: rows.len(),
                elapsed,
                io,
                maintenance: ctx.maintenance_report(),
                plan_source: planned.source.describe().to_string(),
            })
        })
        .map_err(|e| SqlError::Bind(e.to_string()))??;
    Ok(Some(analysis))
}

/// One bound FROM item.
#[derive(Debug, Clone)]
struct Binding {
    table: String,
    alias: String,
    #[allow(dead_code)]
    id: TableId,
    columns: Vec<String>,
}

/// Lower a `SELECT` to a logical plan.
pub fn lower_select(db: &Database, stmt: &SelectStmt) -> Result<LoweredQuery> {
    if stmt.from.is_empty() || stmt.from.len() > 2 {
        return Err(SqlError::Bind(
            "only one- and two-table queries are supported".into(),
        ));
    }
    let mut bindings = Vec::new();
    for (table, alias) in &stmt.from {
        let id = db
            .table_id(table)
            .map_err(|e| SqlError::Bind(e.to_string()))?;
        let schema = db.table(id).map_err(|e| SqlError::Bind(e.to_string()))?;
        bindings.push(Binding {
            table: table.clone(),
            alias: alias.clone().unwrap_or_else(|| table.clone()),
            id,
            columns: schema
                .schema()
                .columns()
                .iter()
                .map(|(n, _)| n.clone())
                .collect(),
        });
    }

    // Classify WHERE conjuncts.
    let mut side_preds: Vec<Vec<(Expr, bool)>> = vec![Vec::new(), Vec::new()]; // (expr, is_summary)
    let mut join_preds: Vec<JoinPredicate> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        for conj in split_and(w) {
            classify_conjunct(&bindings, conj, &mut side_preds, &mut join_preds)?;
        }
    }

    // Per-side plans: scan + data selects + summary selects.
    let mut sides: Vec<LogicalPlan> = Vec::new();
    for (i, b) in bindings.iter().enumerate() {
        let mut p = LogicalPlan::scan(&b.table);
        for (expr, is_summary) in side_preds[i].drain(..) {
            p = if is_summary {
                p.summary_select(expr)
            } else {
                p.select(expr)
            };
        }
        sides.push(p);
    }

    // Join, if two tables.
    let mut plan = if bindings.len() == 2 {
        let right = sides.pop().expect("two sides");
        let left = sides.pop().expect("two sides");
        let pred = join_preds
            .clone()
            .into_iter()
            .reduce(|a, b| JoinPredicate::And(Box::new(a), Box::new(b)))
            .ok_or_else(|| SqlError::Bind("two-table query needs a join predicate".into()))?;
        if pred.data_eq().is_some() {
            left.join(right, pred)
        } else {
            left.summary_join(right, pred)
        }
    } else {
        if !join_preds.is_empty() {
            return Err(SqlError::Bind(
                "join predicate in a single-table query".into(),
            ));
        }
        sides.pop().expect("one side")
    };

    // GROUP BY.
    let mut columns: Vec<String>;
    if let Some(g) = &stmt.group_by {
        let idx = resolve_col(&bindings, g)?;
        plan = plan.group_by(vec![idx]);
        columns = vec![g.column.clone(), "count".to_string()];
        // ORDER BY / projection over grouped output: only the group key and
        // count are addressable.
        if let Some((e, desc)) = &stmt.order_by {
            let key = match e {
                AstExpr::Col(c) if c.column == g.column => SortKey::Column(0),
                AstExpr::Col(c) if c.column.eq_ignore_ascii_case("count") => SortKey::Column(1),
                AstExpr::SummaryChain { alias, calls } => {
                    SortKey::Summary(chain_to_summary_expr(alias.as_deref(), calls)?)
                }
                _ => return Err(SqlError::Bind("ORDER BY over grouped output must use the group column, count, or a summary function".into())),
            };
            plan = plan.sort(key, *desc);
        }
    } else {
        // ORDER BY.
        if let Some((e, desc)) = &stmt.order_by {
            let key = match e {
                AstExpr::Col(c) => SortKey::Column(resolve_col(&bindings, c)?),
                AstExpr::SummaryChain { alias, calls } => {
                    SortKey::Summary(chain_to_summary_expr(alias.as_deref(), calls)?)
                }
                _ => return Err(SqlError::Bind("unsupported ORDER BY expression".into())),
            };
            plan = plan.sort(key, *desc);
        }
        // Projection.
        match &stmt.columns {
            SelectList::Star => {
                columns = Vec::new();
                for b in &bindings {
                    for c in &b.columns {
                        columns.push(format!("{}.{}", b.alias, c));
                    }
                }
            }
            SelectList::Cols(cols) => {
                let mut idxs = Vec::with_capacity(cols.len());
                columns = Vec::with_capacity(cols.len());
                for c in cols {
                    idxs.push(resolve_col(&bindings, c)?);
                    columns.push(c.column.clone());
                }
                plan = plan.project(idxs);
            }
        }
    }

    if stmt.distinct {
        plan = plan.distinct();
    }
    if let Some(n) = stmt.limit {
        plan = plan.limit(n);
    }
    Ok(LoweredQuery { plan, columns })
}

/// Split a predicate into top-level AND conjuncts.
fn split_and(e: &AstExpr) -> Vec<&AstExpr> {
    match e {
        AstExpr::And(a, b) => {
            let mut v = split_and(a);
            v.extend(split_and(b));
            v
        }
        other => vec![other],
    }
}

/// Sides an expression references: bitmask over the two FROM items.
fn sides_of(bindings: &[Binding], e: &AstExpr) -> Result<u8> {
    Ok(match e {
        AstExpr::Lit(_) => 0,
        AstExpr::Col(c) => 1 << side_of_col(bindings, c)?,
        AstExpr::SummaryChain { alias, .. } => match alias {
            Some(a) => 1 << side_of_alias(bindings, a)?,
            None => {
                if bindings.len() == 1 {
                    1
                } else {
                    return Err(SqlError::Bind(
                        "summary chains must be alias-qualified in join queries".into(),
                    ));
                }
            }
        },
        AstExpr::Cmp(a, _, b) | AstExpr::And(a, b) | AstExpr::Or(a, b) => {
            sides_of(bindings, a)? | sides_of(bindings, b)?
        }
        AstExpr::Not(a) | AstExpr::Like(a, _) => sides_of(bindings, a)?,
    })
}

fn side_of_alias(bindings: &[Binding], alias: &str) -> Result<usize> {
    bindings
        .iter()
        .position(|b| b.alias == alias)
        .ok_or_else(|| SqlError::Bind(format!("unknown alias {alias}")))
}

fn side_of_col(bindings: &[Binding], c: &ColRef) -> Result<usize> {
    match &c.alias {
        Some(a) => side_of_alias(bindings, a),
        None => {
            let hits: Vec<usize> = bindings
                .iter()
                .enumerate()
                .filter(|(_, b)| b.columns.iter().any(|n| n == &c.column))
                .map(|(i, _)| i)
                .collect();
            match hits.as_slice() {
                [one] => Ok(*one),
                [] => Err(SqlError::Bind(format!("unknown column {}", c.column))),
                _ => Err(SqlError::Bind(format!("ambiguous column {}", c.column))),
            }
        }
    }
}

/// Resolve a column to its post-join global index.
fn resolve_col(bindings: &[Binding], c: &ColRef) -> Result<usize> {
    let side = side_of_col(bindings, c)?;
    let local = bindings[side]
        .columns
        .iter()
        .position(|n| n == &c.column)
        .ok_or_else(|| SqlError::Bind(format!("unknown column {}", c.column)))?;
    Ok(if side == 0 {
        local
    } else {
        bindings[0].columns.len() + local
    })
}

/// Resolve a column to its side-local index.
fn resolve_col_local(bindings: &[Binding], c: &ColRef, side: usize) -> Result<usize> {
    bindings[side]
        .columns
        .iter()
        .position(|n| n == &c.column)
        .ok_or_else(|| SqlError::Bind(format!("unknown column {}", c.column)))
}

/// Classify one conjunct into a per-side selection or a join predicate.
fn classify_conjunct(
    bindings: &[Binding],
    conj: &AstExpr,
    side_preds: &mut [Vec<(Expr, bool)>],
    join_preds: &mut Vec<JoinPredicate>,
) -> Result<()> {
    let mask = sides_of(bindings, conj)?;
    match mask {
        0 | 1 => {
            let e = lower_expr(bindings, conj, 0)?;
            let is_summary = e.uses_summaries();
            side_preds[0].push((e, is_summary));
        }
        2 => {
            let e = lower_expr(bindings, conj, 1)?;
            let is_summary = e.uses_summaries();
            side_preds[1].push((e, is_summary));
        }
        3 => {
            // Cross-side: must be a comparison of column/column or
            // chain/chain.
            let AstExpr::Cmp(a, op, b) = conj else {
                return Err(SqlError::Bind(format!(
                    "unsupported cross-table predicate {conj:?}"
                )));
            };
            // Normalize left = side 0.
            let (l, r, op) = if sides_of(bindings, a)? == 1 {
                (a.as_ref(), b.as_ref(), *op)
            } else {
                (b.as_ref(), a.as_ref(), flip_ast(*op))
            };
            match (l, r) {
                (AstExpr::Col(cl), AstExpr::Col(cr)) if op == CmpOpAst::Eq => {
                    join_preds.push(JoinPredicate::DataEq {
                        left_col: resolve_col_local(bindings, cl, 0)?,
                        right_col: resolve_col_local(bindings, cr, 1)?,
                    });
                }
                (
                    AstExpr::SummaryChain { calls: lc, .. },
                    AstExpr::SummaryChain { calls: rc, .. },
                ) => {
                    join_preds.push(JoinPredicate::SummaryCmp {
                        left: chain_to_summary_expr(None, lc)?,
                        op: cmp_op(op),
                        right: chain_to_summary_expr(None, rc)?,
                    });
                }
                _ => {
                    return Err(SqlError::Bind(format!(
                        "unsupported join predicate {conj:?}"
                    )))
                }
            }
        }
        _ => unreachable!("two FROM items yield masks 0..=3"),
    }
    Ok(())
}

fn flip_ast(op: CmpOpAst) -> CmpOpAst {
    match op {
        CmpOpAst::Lt => CmpOpAst::Gt,
        CmpOpAst::Le => CmpOpAst::Ge,
        CmpOpAst::Gt => CmpOpAst::Lt,
        CmpOpAst::Ge => CmpOpAst::Le,
        other => other,
    }
}

fn cmp_op(op: CmpOpAst) -> CmpOp {
    match op {
        CmpOpAst::Eq => CmpOp::Eq,
        CmpOpAst::Ne => CmpOp::Ne,
        CmpOpAst::Lt => CmpOp::Lt,
        CmpOpAst::Le => CmpOp::Le,
        CmpOpAst::Gt => CmpOp::Gt,
        CmpOpAst::Ge => CmpOp::Ge,
    }
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(i) => Value::Int(*i),
        Lit::Float(f) => Value::Float(*f),
        Lit::Str(s) => Value::Text(s.clone()),
        Lit::Bool(b) => Value::Bool(*b),
    }
}

/// Lower a single-side expression with side-local column indices.
fn lower_expr(bindings: &[Binding], e: &AstExpr, side: usize) -> Result<Expr> {
    Ok(match e {
        AstExpr::Lit(l) => Expr::Const(lit_value(l)),
        AstExpr::Col(c) => Expr::Column(resolve_col_local(bindings, c, side)?),
        AstExpr::SummaryChain { alias, calls } => {
            Expr::Summary(chain_to_summary_expr(alias.as_deref(), calls)?)
        }
        AstExpr::Cmp(a, op, b) => Expr::Cmp(
            Box::new(lower_expr(bindings, a, side)?),
            cmp_op(*op),
            Box::new(lower_expr(bindings, b, side)?),
        ),
        AstExpr::And(a, b) => Expr::And(
            Box::new(lower_expr(bindings, a, side)?),
            Box::new(lower_expr(bindings, b, side)?),
        ),
        AstExpr::Or(a, b) => Expr::Or(
            Box::new(lower_expr(bindings, a, side)?),
            Box::new(lower_expr(bindings, b, side)?),
        ),
        AstExpr::Not(a) => Expr::Not(Box::new(lower_expr(bindings, a, side)?)),
        AstExpr::Like(a, p) => Expr::Like(Box::new(lower_expr(bindings, a, side)?), p.clone()),
    })
}

/// Translate a `$` method chain into a [`SummaryExpr`].
fn chain_to_summary_expr(_alias: Option<&str>, calls: &[MethodCall]) -> Result<SummaryExpr> {
    let first = calls
        .first()
        .ok_or_else(|| SqlError::Bind("empty summary chain".into()))?;
    if first.name.eq_ignore_ascii_case("getSize") && calls.len() == 1 {
        return Ok(SummaryExpr::SetSize);
    }
    if !first.name.eq_ignore_ascii_case("getSummaryObject") {
        return Err(SqlError::Bind(format!(
            "summary chains start with getSummaryObject or getSize, found {}",
            first.name
        )));
    }
    let obj = match first.args.as_slice() {
        [Lit::Str(name)] => ObjRef::ByName(name.clone()),
        [Lit::Int(i)] if *i >= 0 => ObjRef::ByIndex(*i as usize),
        other => {
            return Err(SqlError::Bind(format!(
                "getSummaryObject takes a name or index, found {other:?}"
            )))
        }
    };
    let method = calls.get(1).ok_or_else(|| {
        SqlError::Bind("getSummaryObject must be followed by an object function".into())
    })?;
    if calls.len() > 2 {
        return Err(SqlError::Bind(
            "chains longer than two calls are not supported".into(),
        ));
    }
    let func = object_func(method)?;
    Ok(SummaryExpr::Obj { obj, func })
}

fn object_func(m: &MethodCall) -> Result<ObjFunc> {
    let name = m.name.to_ascii_lowercase();
    let int_arg = |m: &MethodCall| -> Result<usize> {
        match m.args.as_slice() {
            [Lit::Int(i)] if *i >= 0 => Ok(*i as usize),
            other => Err(SqlError::Bind(format!(
                "{} takes one index, found {other:?}",
                m.name
            ))),
        }
    };
    let str_args = |m: &MethodCall| -> Result<Vec<String>> {
        m.args
            .iter()
            .map(|a| match a {
                Lit::Str(s) => Ok(s.clone()),
                other => Err(SqlError::Bind(format!(
                    "{} takes string keywords, found {other:?}",
                    m.name
                ))),
            })
            .collect()
    };
    Ok(match name.as_str() {
        "getsummarytype" => ObjFunc::GetSummaryType,
        "getsummaryname" => ObjFunc::GetSummaryName,
        "getsize" => ObjFunc::GetSize,
        "getlabelname" => ObjFunc::GetLabelName(int_arg(m)?),
        "getlabelvalue" => match m.args.as_slice() {
            [Lit::Str(label)] => ObjFunc::GetLabelValue(label.clone()),
            [Lit::Int(i)] if *i >= 0 => ObjFunc::GetLabelValueAt(*i as usize),
            other => {
                return Err(SqlError::Bind(format!(
                    "getLabelValue takes a label or index, found {other:?}"
                )))
            }
        },
        "getsnippet" => ObjFunc::GetSnippet(int_arg(m)?),
        "containssingle" => ObjFunc::ContainsSingle(str_args(m)?),
        "containsunion" => ObjFunc::ContainsUnion(str_args(m)?),
        "getgroupsize" => ObjFunc::GetGroupSize(int_arg(m)?),
        "getrepresentative" => ObjFunc::GetRepresentative(int_arg(m)?),
        "totalcount" | "gettotalcount" => ObjFunc::TotalCount,
        other => return Err(SqlError::Bind(format!("unknown object function {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instn_annot::{Attachment, Category};
    use instn_mining::nb::NaiveBayes;
    use instn_query::exec::ExecContext;
    use instn_query::lower::lower_naive;
    use instn_storage::{ColumnType, Schema};

    fn classifier_kind() -> InstanceKind {
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train("disease outbreak infection virus", "Disease");
        model.train("eating foraging migration song", "Behavior");
        InstanceKind::Classifier { model }
    }

    fn setup() -> Database {
        let mut db = Database::new();
        let birds = db
            .create_table(
                "Birds",
                Schema::of(&[
                    ("id", ColumnType::Int),
                    ("common_name", ColumnType::Text),
                    ("family", ColumnType::Text),
                ]),
            )
            .unwrap();
        let syn = db
            .create_table(
                "Synonyms",
                Schema::of(&[("id", ColumnType::Int), ("bird_id", ColumnType::Int)]),
            )
            .unwrap();
        db.link_instance(birds, "ClassBird1", classifier_kind(), true)
            .unwrap();
        for i in 0..8i64 {
            let name = if i % 2 == 0 {
                format!("Swan {i}")
            } else {
                format!("Crow {i}")
            };
            let oid = db
                .insert_tuple(
                    birds,
                    vec![
                        Value::Int(i),
                        Value::Text(name),
                        Value::Text(format!("fam{}", i % 2)),
                    ],
                )
                .unwrap();
            for _ in 0..i {
                db.add_annotation(
                    birds,
                    "disease outbreak virus",
                    Category::Disease,
                    "u",
                    vec![Attachment::row(oid)],
                )
                .unwrap();
            }
            db.insert_tuple(syn, vec![Value::Int(i * 10), Value::Int(i)])
                .unwrap();
        }
        db
    }

    fn run(db: &Database, sql: &str) -> Vec<instn_core::AnnotatedTuple> {
        let Statement::Select(sel) = crate::parser::parse(sql).unwrap() else {
            panic!("not a select")
        };
        let lowered = lower_select(db, &sel).unwrap();
        let physical = lower_naive(db, &lowered.plan).unwrap();
        let mut ctx = ExecContext::new(db);
        ctx.execute(&physical).unwrap()
    }

    #[test]
    fn end_to_end_summary_selection() {
        let db = setup();
        let rows = run(
            &db,
            "SELECT * FROM Birds r WHERE \
             r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5;",
        );
        assert_eq!(rows.len(), 2, "tuples with 6 and 7 disease annots");
    }

    #[test]
    fn end_to_end_mixed_predicates_and_like() {
        let db = setup();
        let rows = run(
            &db,
            "SELECT * FROM Birds r WHERE common_name LIKE 'Swan%' AND \
             r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2",
        );
        // Swans are even ids: 2, 4, 6 have >= 2 disease annotations.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn end_to_end_order_by_summary_desc_with_projection() {
        let db = setup();
        let rows = run(
            &db,
            "SELECT id FROM Birds r \
             ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC \
             LIMIT 3",
        );
        assert_eq!(rows.len(), 3);
        let ids: Vec<i64> = rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![7, 6, 5]);
    }

    #[test]
    fn end_to_end_join_query() {
        let db = setup();
        let rows = run(
            &db,
            "SELECT r.id, s.id FROM Birds r, Synonyms s WHERE r.id = s.bird_id AND \
             r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5",
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values.len(), 2);
    }

    #[test]
    fn end_to_end_summary_join() {
        let db = setup();
        // Tuples with equal disease counts across a self-join: counts are
        // distinct so only the diagonal matches.
        let rows = run(
            &db,
            "SELECT v1.id, v2.id FROM Birds v1, Birds v2 WHERE \
             v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = \
             v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease') AND v1.id = v2.id",
        );
        // Tuple 0 is unannotated: its summary chain evaluates to NULL and a
        // NULL comparison never matches, so 7 of the 8 diagonal pairs pass.
        assert_eq!(rows.len(), 7, "diagonal self-join minus the NULL tuple");
    }

    #[test]
    fn end_to_end_group_by() {
        let db = setup();
        let rows = run(&db, "SELECT family FROM Birds GROUP BY family");
        assert_eq!(rows.len(), 2);
        let counts: i64 = rows.iter().map(|r| r.values[1].as_int().unwrap()).sum();
        assert_eq!(counts, 8);
    }

    #[test]
    fn ddl_and_zoom_via_execute_statement() {
        let mut db = setup();
        let mut registry = HashMap::new();
        registry.insert("ClassBird2".to_string(), classifier_kind());
        let out = execute_statement(
            &mut db,
            &registry,
            "ALTER TABLE Birds ADD INDEXABLE ClassBird2",
        )
        .unwrap();
        let SqlOutcome::Altered {
            instance,
            indexable,
            ..
        } = out
        else {
            panic!()
        };
        assert!(instance.is_some());
        assert!(indexable);
        // Zoom into tuple 8 (7 disease annotations).
        let out = execute_statement(
            &mut db,
            &registry,
            "ZOOM IN ON ClassBird1 OF Birds TUPLE 8 LABEL 'Disease'",
        )
        .unwrap();
        let SqlOutcome::Zoom(annots) = out else {
            panic!()
        };
        assert_eq!(annots.len(), 7);
        // Drop.
        let out =
            execute_statement(&mut db, &registry, "ALTER TABLE Birds DROP ClassBird2").unwrap();
        assert!(matches!(out, SqlOutcome::Altered { instance: None, .. }));
    }

    #[test]
    fn bind_errors() {
        let db = setup();
        let parse_sel = |sql: &str| {
            let Statement::Select(sel) = crate::parser::parse(sql).unwrap() else {
                panic!()
            };
            sel
        };
        assert!(lower_select(&db, &parse_sel("SELECT * FROM Nope")).is_err());
        assert!(lower_select(&db, &parse_sel("SELECT nope FROM Birds")).is_err());
        assert!(
            lower_select(
                &db,
                &parse_sel("SELECT id FROM Birds, Synonyms WHERE 1 = 1")
            )
            .is_err(),
            "ambiguous column id"
        );
        assert!(
            lower_select(&db, &parse_sel("SELECT r.id FROM Birds r, Synonyms s")).is_err(),
            "missing join predicate"
        );
    }

    #[test]
    fn explain_statement_renders_logical_plan() {
        let mut db = setup();
        let registry: HashMap<String, InstanceKind> = HashMap::new();
        let out = execute_statement(
            &mut db,
            &registry,
            "EXPLAIN SELECT id FROM Birds r WHERE \
             r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3 \
             ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC LIMIT 2",
        )
        .unwrap();
        let SqlOutcome::Explain(text) = out else {
            panic!("{out:?}")
        };
        assert!(text.contains("SummarySelect(S)"), "{text}");
        assert!(text.contains("Sort(O desc)"), "{text}");
        assert!(text.contains("Limit(2)"), "{text}");
        assert!(text.contains("Scan(Birds)"), "{text}");
    }

    #[test]
    fn explain_analyze_executes_and_reports_io() {
        let mut db = setup();
        let registry: HashMap<String, InstanceKind> = HashMap::new();
        let sql = "EXPLAIN ANALYZE SELECT * FROM Birds r WHERE \
                   r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5";
        let out = execute_statement(&mut db, &registry, sql).unwrap();
        let SqlOutcome::ExplainAnalyzed(a) = out else {
            panic!("{out:?}")
        };
        assert_eq!(a.rows, 2, "same result as executing the SELECT");
        assert!(a.plan.contains("SeqScan"), "{}", a.plan);
        assert!(a.io.logical_total() > 0, "{:?}", a.io);
        // Uncached database: every logical access is a physical transfer.
        assert_eq!(a.io.total(), a.io.logical_total());
        assert_eq!(a.io.cache_hits, 0);
        let text = format!("{a}");
        assert!(text.contains("physical I/O"), "{text}");
        assert!(text.contains("hit ratio"), "{text}");
    }

    #[test]
    fn explain_analyze_shows_warm_cache_hits() {
        let mut db = setup();
        db.set_cache_capacity(4096);
        let registry: HashMap<String, InstanceKind> = HashMap::new();
        let sql = "EXPLAIN ANALYZE SELECT * FROM Birds r WHERE \
                   r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5";
        // First run faults pages in; the repeat runs against a warm pool.
        execute_statement(&mut db, &registry, sql).unwrap();
        let out = execute_statement(&mut db, &registry, sql).unwrap();
        let SqlOutcome::ExplainAnalyzed(a) = out else {
            panic!("{out:?}")
        };
        assert_eq!(a.rows, 2);
        assert!(a.io.cache_hits > 0, "{:?}", a.io);
        assert_eq!(a.io.total(), 0, "warm run pays no physical I/O: {:?}", a.io);
        assert!((a.io.hit_ratio() - 1.0).abs() < f64::EPSILON, "{:?}", a.io);
    }

    #[test]
    fn explain_analyze_reports_rows_per_operator() {
        let mut db = setup();
        let registry: HashMap<String, InstanceKind> = HashMap::new();
        let sql = "EXPLAIN ANALYZE SELECT * FROM Birds r WHERE \
                   r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5";
        let out = execute_statement(&mut db, &registry, sql).unwrap();
        let SqlOutcome::ExplainAnalyzed(a) = out else {
            panic!("{out:?}")
        };
        // The metrics tree mirrors the plan: a filter over the base scan,
        // with per-operator row counts.
        assert_eq!(a.operators.rows as usize, a.rows);
        assert!(!a.operators.children.is_empty(), "{:?}", a.operators);
        let text = format!("{a}");
        assert!(text.contains("(rows=2"), "{text}");
        assert!(text.contains("SeqScan"), "{text}");
        // Root I/O is inclusive: it accounts for the whole execution.
        assert_eq!(a.operators.logical_io, a.io.logical_total());
        assert_eq!(a.operators.physical_io, a.io.total());
    }

    #[test]
    fn select_distinct_merges_duplicate_rows() {
        let db = setup();
        // `family` has two values across 8 birds; DISTINCT collapses them
        // and the merged summaries aggregate each family's annotations.
        let rows = run(&db, "SELECT DISTINCT family FROM Birds");
        assert_eq!(rows.len(), 2);
        let total: i64 = rows
            .iter()
            .map(|r| {
                SummaryExpr::label_value("ClassBird1", "Disease")
                    .eval(r)
                    .as_int()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            total,
            (0..8).sum::<i64>(),
            "merged summaries cover all birds"
        );
        // Without DISTINCT, all 8 rows appear.
        let rows = run(&db, "SELECT family FROM Birds");
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn unqualified_chain_in_single_table_query() {
        let db = setup();
        let rows = run(
            &db,
            "SELECT * FROM Birds WHERE $.getSummaryObject('ClassBird1').getLabelValue('Disease') = 7",
        );
        assert_eq!(rows.len(), 1);
    }
}
