//! # instn-sql
//!
//! The extended SQL front end.
//!
//! InsightNotes exposes its summary-based features through small extensions
//! to SQL: the `$` summary-set variable with method chains
//! (`r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5`), the
//! extended DDL `ALTER TABLE <t> ADD [INDEXABLE] <InstanceName>` /
//! `ALTER TABLE <t> DROP <InstanceName>` (§4), summary-based `ORDER BY`, and
//! the zoom-in command. This crate provides:
//!
//! * [`lexer`] — tokenization,
//! * [`ast`] — the statement / expression AST,
//! * [`parser`] — a recursive-descent parser for the supported subset,
//! * [`lower`] — name resolution and lowering of `SELECT` statements into
//!   [`instn_query::plan::LogicalPlan`]s (splitting data vs summary
//!   predicates into σ vs `S`, recognizing data- and summary-based join
//!   conjuncts), plus execution of DDL and zoom-in statements.
//!
//! Supported grammar (keywords case-insensitive):
//!
//! ```text
//! SELECT <* | col[, col…]> FROM t [alias][, t2 [alias]]
//!   [WHERE pred {AND pred}] [GROUP BY col]
//!   [ORDER BY expr [ASC|DESC]] [LIMIT n];
//! ALTER TABLE t ADD [INDEXABLE] InstanceName;
//! ALTER TABLE t DROP InstanceName;
//! ZOOM IN ON InstanceName OF t TUPLE <oid> [LABEL 'x' | REP <i>];
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod plan;

pub use ast::{AstExpr, SelectStmt, Statement};
pub use lower::{
    execute_statement, explain_analyze_in_ctx, explain_analyze_statement, lower_select,
    ExplainAnalysis, LoweredQuery, SqlOutcome,
};
pub use parser::parse;
pub use plan::{
    plan_select, plan_statement, refresh_statistics, render_explain, statement_fingerprint,
    PlanSource, PlannedStatement,
};

/// Errors raised by the SQL front end.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with position.
    Lex(String),
    /// Parse error.
    Parse(String),
    /// Name-resolution / lowering error.
    Bind(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
