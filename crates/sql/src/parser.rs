//! Recursive-descent parser for the extended SQL subset.

use crate::ast::{
    AlterAction, AstExpr, CmpOpAst, ColRef, Lit, MethodCall, SelectList, SelectStmt, Statement,
    ZoomTargetAst,
};
use crate::lexer::{lex, Token};
use crate::{Result, SqlError};

/// Parse one statement (a trailing `;` is optional).
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semi();
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn eat_semi(&mut self) {
        while self.peek() == Some(&Token::Semi) {
            self.pos += 1;
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("explain") {
            if self.eat_kw("analyze") {
                self.expect_kw("select")?;
                return Ok(Statement::ExplainAnalyze(self.select()?));
            }
            self.expect_kw("select")?;
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("alter") {
            return self.alter();
        }
        if self.eat_kw("zoom") {
            return self.zoom();
        }
        if self.eat_kw("analyze") {
            return Ok(Statement::Analyze);
        }
        Err(SqlError::Parse(format!(
            "expected SELECT, EXPLAIN, ALTER, or ZOOM, found {:?}",
            self.peek()
        )))
    }

    fn alter(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let table = self.ident()?;
        if self.eat_kw("add") {
            let indexable = self.eat_kw("indexable");
            let instance = self.ident()?;
            return Ok(Statement::AlterTable {
                table,
                action: AlterAction::Add {
                    instance,
                    indexable,
                },
            });
        }
        if self.eat_kw("drop") {
            let instance = self.ident()?;
            return Ok(Statement::AlterTable {
                table,
                action: AlterAction::Drop { instance },
            });
        }
        Err(SqlError::Parse("expected ADD or DROP".into()))
    }

    fn zoom(&mut self) -> Result<Statement> {
        self.expect_kw("in")?;
        self.expect_kw("on")?;
        let instance = self.ident()?;
        self.expect_kw("of")?;
        let table = self.ident()?;
        self.expect_kw("tuple")?;
        let oid = match self.next() {
            Some(Token::Int(n)) if n >= 0 => n as u64,
            other => return Err(SqlError::Parse(format!("expected OID, found {other:?}"))),
        };
        let target = if self.eat_kw("label") {
            match self.next() {
                Some(Token::Str(s)) => ZoomTargetAst::Label(s),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected label string, found {other:?}"
                    )))
                }
            }
        } else if self.eat_kw("rep") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => ZoomTargetAst::Rep(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected rep index, found {other:?}"
                    )))
                }
            }
        } else {
            ZoomTargetAst::All
        };
        Ok(Statement::ZoomIn {
            table,
            instance,
            oid,
            target,
        })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let distinct = self.eat_kw("distinct");
        let columns = if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            SelectList::Star
        } else {
            let mut cols = vec![self.col_ref()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                cols.push(self.col_ref()?);
            }
            SelectList::Cols(cols)
        };
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            from.push(self.table_ref()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            Some(self.col_ref()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let e = self.expr()?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some((e, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            columns,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<(String, Option<String>)> {
        let table = self.ident()?;
        // Optional alias: an identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["where", "group", "order", "limit", "on"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                Some(self.ident()?)
            }
            _ => None,
        };
        Ok((table, alias))
    }

    /// `alias.column` or bare `column`.
    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot)
            && !matches!(self.tokens.get(self.pos + 1), Some(Token::Dollar))
        {
            self.pos += 1;
            let column = self.ident()?;
            Ok(ColRef {
                alias: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                alias: None,
                column: first,
            })
        }
    }

    // Expression grammar: or_expr.
    fn expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let left = self.primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOpAst::Eq),
            Some(Token::Ne) => Some(CmpOpAst::Ne),
            Some(Token::Lt) => Some(CmpOpAst::Lt),
            Some(Token::Le) => Some(CmpOpAst::Le),
            Some(Token::Gt) => Some(CmpOpAst::Gt),
            Some(Token::Ge) => Some(CmpOpAst::Ge),
            Some(t) if t.is_kw("like") => {
                self.pos += 1;
                match self.next() {
                    Some(Token::Str(p)) => {
                        return Ok(AstExpr::Like(Box::new(left), p));
                    }
                    other => {
                        return Err(SqlError::Parse(format!(
                            "expected LIKE pattern, found {other:?}"
                        )))
                    }
                }
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.primary()?;
                Ok(AstExpr::Cmp(Box::new(left), op, Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Lit::Int(n)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Lit::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Lit::Str(s)))
            }
            Some(Token::Dollar) => {
                self.pos += 1;
                self.summary_chain(None)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if name.eq_ignore_ascii_case("true") {
                    return Ok(AstExpr::Lit(Lit::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(AstExpr::Lit(Lit::Bool(false)));
                }
                // `alias.$.…` or `alias.column` or bare `column`.
                if self.peek() == Some(&Token::Dot) {
                    match self.tokens.get(self.pos + 1) {
                        Some(Token::Dollar) => {
                            self.pos += 2; // consume `.` `$`
                            return self.summary_chain(Some(name));
                        }
                        Some(Token::Ident(_)) => {
                            self.pos += 1;
                            let column = self.ident()?;
                            return Ok(AstExpr::Col(ColRef {
                                alias: Some(name),
                                column,
                            }));
                        }
                        _ => {}
                    }
                }
                Ok(AstExpr::Col(ColRef {
                    alias: None,
                    column: name,
                }))
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    /// After the `$`: `.method(args)` chain.
    fn summary_chain(&mut self, alias: Option<String>) -> Result<AstExpr> {
        let mut calls = Vec::new();
        while self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let name = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    match self.next() {
                        Some(Token::Str(s)) => args.push(Lit::Str(s)),
                        Some(Token::Int(n)) => args.push(Lit::Int(n)),
                        Some(Token::Float(f)) => args.push(Lit::Float(f)),
                        other => {
                            return Err(SqlError::Parse(format!(
                                "expected literal argument, found {other:?}"
                            )))
                        }
                    }
                    if self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            calls.push(MethodCall { name, args });
        }
        if calls.is_empty() {
            return Err(SqlError::Parse("expected method call after $".into()));
        }
        Ok(AstExpr::SummaryChain { alias, calls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let s = parse("SELECT * FROM Birds r WHERE r.id = 5 LIMIT 10;").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from, vec![("Birds".to_string(), Some("r".to_string()))]);
        assert_eq!(sel.limit, Some(10));
        assert!(matches!(sel.columns, SelectList::Star));
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn parse_summary_chain_predicate() {
        let s = parse(
            "SELECT * FROM Birds r WHERE \
             r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let Some(AstExpr::Cmp(l, CmpOpAst::Gt, r)) = sel.where_clause else {
            panic!()
        };
        let AstExpr::SummaryChain { alias, calls } = *l else {
            panic!()
        };
        assert_eq!(alias, Some("r".to_string()));
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].name, "getSummaryObject");
        assert_eq!(calls[0].args, vec![Lit::Str("ClassBird1".into())]);
        assert_eq!(calls[1].name, "getLabelValue");
        assert!(matches!(*r, AstExpr::Lit(Lit::Int(5))));
    }

    #[test]
    fn parse_two_table_join_with_order_by() {
        let s = parse(
            "SELECT r.name, s.synonym FROM Birds r, Synonyms s \
             WHERE r.id = s.bird_id AND \
             r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5 \
             ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        let (e, desc) = sel.order_by.unwrap();
        assert!(desc);
        assert!(matches!(e, AstExpr::SummaryChain { .. }));
        let SelectList::Cols(cols) = sel.columns else {
            panic!()
        };
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].alias, Some("r".to_string()));
    }

    #[test]
    fn parse_group_by_and_like() {
        let s = parse("SELECT family FROM Birds WHERE common_name LIKE 'Swan%' GROUP BY family")
            .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.group_by.unwrap().column, "family");
        assert!(matches!(sel.where_clause, Some(AstExpr::Like(..))));
    }

    #[test]
    fn parse_alter_table() {
        let s = parse("ALTER TABLE Birds ADD INDEXABLE ClassBird1;").unwrap();
        assert_eq!(
            s,
            Statement::AlterTable {
                table: "Birds".into(),
                action: AlterAction::Add {
                    instance: "ClassBird1".into(),
                    indexable: true
                }
            }
        );
        let s = parse("ALTER TABLE Birds ADD TextSummary1").unwrap();
        let Statement::AlterTable {
            action: AlterAction::Add { indexable, .. },
            ..
        } = s
        else {
            panic!()
        };
        assert!(!indexable);
        let s = parse("ALTER TABLE Birds DROP ClassBird1").unwrap();
        assert!(matches!(
            s,
            Statement::AlterTable {
                action: AlterAction::Drop { .. },
                ..
            }
        ));
    }

    #[test]
    fn parse_zoom_in() {
        let s = parse("ZOOM IN ON ClassBird1 OF Birds TUPLE 42 LABEL 'Disease'").unwrap();
        assert_eq!(
            s,
            Statement::ZoomIn {
                table: "Birds".into(),
                instance: "ClassBird1".into(),
                oid: 42,
                target: ZoomTargetAst::Label("Disease".into())
            }
        );
        let s = parse("ZOOM IN ON SimCluster OF Birds TUPLE 7 REP 0").unwrap();
        assert!(matches!(
            s,
            Statement::ZoomIn {
                target: ZoomTargetAst::Rep(0),
                ..
            }
        ));
        let s = parse("ZOOM IN ON C OF Birds TUPLE 7").unwrap();
        assert!(matches!(
            s,
            Statement::ZoomIn {
                target: ZoomTargetAst::All,
                ..
            }
        ));
    }

    #[test]
    fn parse_boolean_logic_with_parens() {
        let s = parse("SELECT * FROM T WHERE NOT (a = 1 OR b = 2) AND c = 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.where_clause, Some(AstExpr::And(..))));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT FROM T").is_err());
        assert!(parse("SELECT * T").is_err());
        assert!(parse("ALTER TABLE T NOPE X").is_err());
        assert!(parse("SELECT * FROM T WHERE r.$.").is_err());
        assert!(parse("SELECT * FROM T; extra").is_err());
    }
}
