//! The statement and expression AST.

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// A possibly-qualified column reference `alias.column` / `column`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    /// Table alias, when qualified.
    pub alias: Option<String>,
    /// Column name.
    pub column: String,
}

/// One call in a `$` method chain, e.g. `getLabelValue('Disease')`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCall {
    /// Method name.
    pub name: String,
    /// Literal arguments.
    pub args: Vec<Lit>,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Literal.
    Lit(Lit),
    /// Column reference.
    Col(ColRef),
    /// `alias.$.m1(..).m2(..)` summary method chain.
    SummaryChain {
        /// Table alias the `$` belongs to (None for single-table queries).
        alias: Option<String>,
        /// The chained calls, in order.
        calls: Vec<MethodCall>,
    },
    /// Comparison.
    Cmp(Box<AstExpr>, CmpOpAst, Box<AstExpr>),
    /// `a AND b`.
    And(Box<AstExpr>, Box<AstExpr>),
    /// `a OR b`.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// `NOT a`.
    Not(Box<AstExpr>),
    /// `a LIKE 'pattern'`.
    Like(Box<AstExpr>, String),
}

/// AST-level comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOpAst {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// SELECT output list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `*`
    Star,
    /// Explicit columns.
    Cols(Vec<ColRef>),
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`: duplicate rows collapse and their summary sets
    /// merge (the summary-aware duplicate elimination of §2.2).
    pub distinct: bool,
    /// Output list.
    pub columns: SelectList,
    /// FROM items: `(table, alias)`.
    pub from: Vec<(String, Option<String>)>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY column.
    pub group_by: Option<ColRef>,
    /// ORDER BY `(expr, descending)`.
    pub order_by: Option<(AstExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// `ALTER TABLE` actions (the paper's extended DDL, §4).
#[derive(Debug, Clone, PartialEq)]
pub enum AlterAction {
    /// `ADD [INDEXABLE] <InstanceName>`.
    Add {
        /// Instance to link.
        instance: String,
        /// Whether to build a Summary-BTree over it.
        indexable: bool,
    },
    /// `DROP <InstanceName>`.
    Drop {
        /// Instance to unlink.
        instance: String,
    },
}

/// Zoom-in targets.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoomTargetAst {
    /// Every raw annotation behind the object.
    All,
    /// `LABEL 'x'`: annotations under a classifier label.
    Label(String),
    /// `REP i`: annotations behind representative `i`.
    Rep(usize),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …`: show the logical plan instead of executing.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT …`: execute the query and report the plan
    /// together with the observed I/O counters (physical, logical, cache).
    ExplainAnalyze(SelectStmt),
    /// `ANALYZE;`: collect optimizer statistics over every table.
    Analyze,
    /// `ALTER TABLE …`.
    AlterTable {
        /// The table.
        table: String,
        /// The action.
        action: AlterAction,
    },
    /// `ZOOM IN ON <instance> OF <table> TUPLE <oid> [LABEL 'x' | REP i]`.
    ZoomIn {
        /// The table.
        table: String,
        /// The summary instance.
        instance: String,
        /// The tuple's OID.
        oid: u64,
        /// What to zoom into.
        target: ZoomTargetAst,
    },
}
