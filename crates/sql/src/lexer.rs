//! Tokenization of the extended SQL subset.

use crate::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser).
    Ident(String),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `$`
    Dollar,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// Whether this is the (case-insensitive) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize an input string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '$' => {
                out.push(Token::Dollar);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(SqlError::Lex("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && chars
                        .get(i + 1)
                        .map(|d| d.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while let Some(&d) = chars.get(i) {
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.'
                        && chars
                            .get(i + 1)
                            .map(|x| x.is_ascii_digit())
                            .unwrap_or(false)
                        && !is_float
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|e| SqlError::Lex(format!("bad float {text}: {e}")))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|e| SqlError::Lex(format!("bad int {text}: {e}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while let Some(&d) = chars.get(i) {
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(SqlError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = lex("SELECT * FROM Birds r WHERE r.id = 5;").unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.iter().any(|t| t.is_kw("from")));
        assert!(toks.contains(&Token::Int(5)));
        assert!(toks.contains(&Token::Semi));
    }

    #[test]
    fn summary_chain_tokens() {
        let toks = lex("r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5").unwrap();
        assert!(toks.contains(&Token::Dollar));
        assert!(toks.contains(&Token::Str("ClassBird1".into())));
        assert!(toks.contains(&Token::Gt));
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a = b <> c < d <= e > f >= g != h").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge
                )
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Eq,
                &Token::Ne,
                &Token::Lt,
                &Token::Le,
                &Token::Gt,
                &Token::Ge,
                &Token::Ne
            ]
        );
    }

    #[test]
    fn string_escapes_and_numbers() {
        let toks = lex("'it''s' 3.5 -42").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert_eq!(toks[1], Token::Float(3.5));
        assert_eq!(toks[2], Token::Int(-42));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("#").is_err());
    }
}
