//! # instn-annot
//!
//! Raw-annotation substrate for the InsightNotes+ reproduction.
//!
//! The paper's data model attaches free-text annotations to single table
//! cells, whole rows, columns, or arbitrary combinations (§1). This crate
//! provides:
//!
//! * [`annotation`] — the raw annotation record (id, text, ground-truth
//!   category used only by the workload generator and evaluation),
//! * [`target`] — attachment descriptors (row-level or cell-set-level),
//! * [`store`] — a heap-backed annotation store per table, with per-tuple
//!   postings and the projection-survival logic that the summary-aware
//!   projection operator (paper Fig. 3, step 1) relies on,
//! * [`text`] — deterministic themed text generation (disease / anatomy /
//!   behavior / provenance / comment / question vocabularies standing in for
//!   the AKN ornithology corpus),
//! * [`gen`] — the synthetic birds corpus generator: Birds (12 attributes),
//!   Synonyms (many-to-one), and annotation workloads with the paper's
//!   10–200 annotations-per-tuple scaling knob.

pub mod annotation;
pub mod gen;
pub mod store;
pub mod target;
pub mod text;

pub use annotation::{AnnotId, Annotation, Category};
pub use gen::{Corpus, CorpusConfig};
pub use store::AnnotationStore;
pub use target::{Attachment, ColumnSet};
