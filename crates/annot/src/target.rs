//! Attachment descriptors: what part of a tuple an annotation covers.
//!
//! Per the paper's introduction, annotations attach to "single table cells
//! (attributes), rows, columns, arbitrary sets and combinations of them".
//! Within one tuple that reduces to: the whole row, or a set of its columns.
//! One annotation may carry attachments on *several* tuples (possibly in
//! different tables) — the case the summary-merge procedure must de-duplicate
//! (paper Fig. 3, step 3).

use instn_storage::Oid;

/// The columns of one tuple covered by an attachment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSet {
    /// Row-level attachment: the annotation describes the tuple as a whole
    /// and survives any projection of its columns.
    Row,
    /// Cell-level attachment over a set of column indexes (bitmask over the
    /// first 64 columns, plenty for the 12-attribute Birds table).
    Cells(u64),
}

impl ColumnSet {
    /// Cell attachment over the given column indexes.
    pub fn cells(cols: &[usize]) -> ColumnSet {
        let mut mask = 0u64;
        for &c in cols {
            assert!(c < 64, "column index {c} out of supported range");
            mask |= 1 << c;
        }
        ColumnSet::Cells(mask)
    }

    /// Whether this attachment covers column `col`.
    pub fn covers(&self, col: usize) -> bool {
        match self {
            ColumnSet::Row => true,
            ColumnSet::Cells(mask) => col < 64 && (mask >> col) & 1 == 1,
        }
    }

    /// Whether the attachment survives a projection keeping `kept` columns.
    ///
    /// Row attachments always survive; cell attachments survive iff at least
    /// one covered column is kept (paper Fig. 3: projecting out `r.c`, `r.d`
    /// "eliminates the effect of their annotations").
    pub fn survives_projection(&self, kept: &[usize]) -> bool {
        match self {
            ColumnSet::Row => true,
            ColumnSet::Cells(mask) => kept.iter().any(|&c| c < 64 && (mask >> c) & 1 == 1),
        }
    }

    /// Columns covered by this set (empty for row-level).
    pub fn columns(&self) -> Vec<usize> {
        match self {
            ColumnSet::Row => Vec::new(),
            ColumnSet::Cells(mask) => (0..64).filter(|c| (mask >> c) & 1 == 1).collect(),
        }
    }
}

/// One attachment of an annotation: a tuple plus the columns covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attachment {
    /// The annotated tuple.
    pub oid: Oid,
    /// The covered columns.
    pub columns: ColumnSet,
}

impl Attachment {
    /// Row-level attachment.
    pub fn row(oid: Oid) -> Self {
        Self {
            oid,
            columns: ColumnSet::Row,
        }
    }

    /// Cell-level attachment.
    pub fn cells(oid: Oid, cols: &[usize]) -> Self {
        Self {
            oid,
            columns: ColumnSet::cells(cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_mask_covers_exactly() {
        let cs = ColumnSet::cells(&[0, 3, 11]);
        assert!(cs.covers(0));
        assert!(cs.covers(3));
        assert!(cs.covers(11));
        assert!(!cs.covers(1));
        assert!(!cs.covers(12));
        assert_eq!(cs.columns(), vec![0, 3, 11]);
    }

    #[test]
    fn row_covers_everything_and_survives() {
        let r = ColumnSet::Row;
        assert!(r.covers(0));
        assert!(r.covers(63));
        assert!(r.survives_projection(&[]));
        assert!(r.survives_projection(&[5]));
    }

    #[test]
    fn projection_survival_matches_fig3() {
        // Annotation on columns {2, 3} (r.c, r.d); projection keeps {0, 1}.
        let cs = ColumnSet::cells(&[2, 3]);
        assert!(!cs.survives_projection(&[0, 1]));
        // Keeping one covered column is enough.
        assert!(cs.survives_projection(&[1, 3]));
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn oversized_column_panics() {
        ColumnSet::cells(&[64]);
    }
}
