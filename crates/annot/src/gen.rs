//! Synthetic birds corpus generator.
//!
//! Stands in for the paper's evaluation dataset: the AKN-derived Birds table
//! (45 000 tuples × 12 attributes, ≈450 MB) with 9×10⁶ raw annotations
//! (≈5 GB), plus the Synonyms table (≈225 000 tuples, many-to-one to Birds).
//! Every experiment knob of §6 is a field of [`CorpusConfig`]:
//! the number of tuples, the average annotations per tuple (the paper sweeps
//! 10 → 200), annotation text length (150–8 000 chars in the paper), and the
//! category mix that drives classifier-label selectivities.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use instn_storage::io::IoStats;
use instn_storage::{ColumnType, Oid, Schema, Table, Value};

use crate::annotation::Category;
use crate::store::AnnotationStore;
use crate::target::Attachment;
use crate::text;

/// Knobs of the synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of Birds tuples (paper: 45 000).
    pub n_tuples: usize,
    /// Synonyms per bird (paper: 225 000 / 45 000 = 5).
    pub synonyms_per_bird: usize,
    /// Average annotations per bird tuple (paper sweeps 10 → 200).
    pub avg_annots_per_tuple: usize,
    /// Annotation text length range in characters (paper: 150–8 000).
    pub annot_len: (usize, usize),
    /// Fraction of annotations longer than the snippet threshold (1 000
    /// chars), which the TextSummary1 instance summarizes.
    pub long_annot_fraction: f64,
    /// Fraction of annotations attached to *two* tuples (exercises the
    /// common-annotation de-duplication of the summary merge).
    pub shared_annot_fraction: f64,
    /// Relative sampling weights per [`Category::ALL`] order.
    pub category_weights: [u32; 7],
    /// RNG seed: the whole corpus is a pure function of the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_tuples: 500,
            synonyms_per_bird: 5,
            avg_annots_per_tuple: 20,
            annot_len: (80, 400),
            long_annot_fraction: 0.05,
            shared_annot_fraction: 0.02,
            // Mix chosen so Disease counts spread widely enough for the
            // selectivity sweeps (0.1%–5%) of Figures 10–11.
            category_weights: [10, 18, 25, 8, 22, 7, 10],
            seed: 42,
        }
    }
}

impl CorpusConfig {
    /// A tiny corpus for unit tests.
    pub fn tiny() -> Self {
        Self {
            n_tuples: 30,
            avg_annots_per_tuple: 8,
            annot_len: (40, 120),
            ..Self::default()
        }
    }

    /// A corpus scaled like the paper's smallest point (450 K annotations at
    /// 10 per tuple) divided by `scale_down`.
    pub fn paper_scaled(scale_down: usize, annots_per_tuple: usize) -> Self {
        Self {
            n_tuples: 45_000 / scale_down.max(1),
            avg_annots_per_tuple: annots_per_tuple,
            annot_len: (80, 600),
            ..Self::default()
        }
    }
}

/// The generated corpus: tables + annotation stores + handy OID lists.
#[derive(Debug)]
pub struct Corpus {
    /// Shared I/O counters for everything in the corpus.
    pub stats: Arc<IoStats>,
    /// The Birds table (12 attributes).
    pub birds: Table,
    /// The Synonyms table (many-to-one to Birds via `bird_id`).
    pub synonyms: Table,
    /// Raw annotations on Birds.
    pub annotations: AnnotationStore,
    /// Raw annotations on Synonyms (sparser; used by the join experiments).
    pub syn_annotations: AnnotationStore,
    /// OIDs of the Birds tuples, in insertion order.
    pub bird_oids: Vec<Oid>,
    /// OIDs of the Synonyms tuples, in insertion order.
    pub synonym_oids: Vec<Oid>,
}

/// The 12-attribute Birds schema from the paper's evaluation.
pub fn birds_schema() -> Schema {
    Schema::of(&[
        ("id", ColumnType::Int),
        ("sci_name", ColumnType::Text),
        ("common_name", ColumnType::Text),
        ("genus", ColumnType::Text),
        ("family", ColumnType::Text),
        ("habitat", ColumnType::Text),
        ("description", ColumnType::Text),
        ("region", ColumnType::Text),
        ("wingspan_cm", ColumnType::Float),
        ("weight_g", ColumnType::Float),
        ("conservation", ColumnType::Text),
        ("ebird_id", ColumnType::Text),
    ])
}

/// The Synonyms schema.
pub fn synonyms_schema() -> Schema {
    Schema::of(&[
        ("id", ColumnType::Int),
        ("bird_id", ColumnType::Int),
        ("synonym", ColumnType::Text),
    ])
}

const GENERA: &[&str] = &[
    "Anser", "Cygnus", "Branta", "Anas", "Larus", "Corvus", "Turdus", "Parus",
];
const FAMILIES: &[&str] = &["Anatidae", "Laridae", "Corvidae", "Turdidae", "Paridae"];
const HABITATS: &[&str] = &[
    "wetland",
    "coastal",
    "forest",
    "grassland",
    "urban",
    "alpine",
];
const REGIONS: &[&str] = &[
    "nearctic",
    "palearctic",
    "neotropic",
    "afrotropic",
    "australasia",
];
const STATUS: &[&str] = &["LC", "NT", "VU", "EN", "CR"];

impl Corpus {
    /// Build the corpus deterministically from `config`.
    pub fn build(config: &CorpusConfig) -> Corpus {
        let stats = IoStats::new();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut birds = Table::new("Birds", birds_schema(), Arc::clone(&stats));
        let mut bird_oids = Vec::with_capacity(config.n_tuples);
        for i in 0..config.n_tuples {
            let genus = GENERA[rng.random_range(0..GENERA.len())];
            let tuple = vec![
                Value::Int(i as i64),
                Value::Text(format!("{genus} species{i}")),
                Value::Text(format!("{} bird {i}", HABITATS[i % HABITATS.len()])),
                Value::Text(genus.to_string()),
                Value::Text(FAMILIES[rng.random_range(0..FAMILIES.len())].to_string()),
                Value::Text(HABITATS[rng.random_range(0..HABITATS.len())].to_string()),
                Value::Text(text::generate(&mut rng, Category::Other, 60)),
                Value::Text(REGIONS[rng.random_range(0..REGIONS.len())].to_string()),
                Value::Float(rng.random_range(20.0..250.0)),
                Value::Float(rng.random_range(10.0..12_000.0)),
                Value::Text(STATUS[rng.random_range(0..STATUS.len())].to_string()),
                Value::Text(format!("EB{i:06}")),
            ];
            bird_oids.push(birds.insert(tuple).expect("schema is static"));
        }

        let mut synonyms = Table::new("Synonyms", synonyms_schema(), Arc::clone(&stats));
        let mut synonym_oids = Vec::with_capacity(config.n_tuples * config.synonyms_per_bird);
        let mut syn_id = 0i64;
        for (i, _) in bird_oids.iter().enumerate() {
            for s in 0..config.synonyms_per_bird {
                let tuple = vec![
                    Value::Int(syn_id),
                    Value::Int(i as i64),
                    Value::Text(format!("syn-{i}-{s}")),
                ];
                synonym_oids.push(synonyms.insert(tuple).expect("schema is static"));
                syn_id += 1;
            }
        }

        let mut annotations = AnnotationStore::new(Arc::clone(&stats));
        let weight_total: u32 = config.category_weights.iter().sum();
        for (t, &oid) in bird_oids.iter().enumerate() {
            let n = annot_count(&mut rng, config.avg_annots_per_tuple);
            for _ in 0..n {
                let cat = sample_category(&mut rng, &config.category_weights, weight_total);
                let len = if rng.random_bool(config.long_annot_fraction) {
                    rng.random_range(1_000..(config.annot_len.1.max(1_100) + 1_000))
                } else {
                    rng.random_range(config.annot_len.0..=config.annot_len.1)
                };
                let body = text::generate(&mut rng, cat, len);
                let mut atts = vec![attachment(&mut rng, oid, birds_schema().arity())];
                if rng.random_bool(config.shared_annot_fraction) && config.n_tuples > 1 {
                    // Attach to one more (distinct) tuple.
                    let other = bird_oids
                        [(t + 1 + rng.random_range(0..config.n_tuples - 1)) % config.n_tuples];
                    atts.push(Attachment::row(other));
                }
                annotations
                    .add(body, cat, format!("u{}", rng.random_range(0..500)), 1, atts)
                    .expect("annotation fits a page");
            }
        }

        // Sparse annotations on Synonyms: ~1 per 5 synonym tuples, comments
        // and provenance only (the paper links just TextSummary1 there).
        let mut syn_annotations = AnnotationStore::new(Arc::clone(&stats));
        for &oid in &synonym_oids {
            if rng.random_bool(0.2) {
                let cat = if rng.random_bool(0.5) {
                    Category::Comment
                } else {
                    Category::Provenance
                };
                let len = rng.random_range(60..240);
                let body = text::generate(&mut rng, cat, len);
                syn_annotations
                    .add(body, cat, "syncur".into(), 1, vec![Attachment::row(oid)])
                    .expect("annotation fits a page");
            }
        }

        Corpus {
            stats,
            birds,
            synonyms,
            annotations,
            syn_annotations,
            bird_oids,
            synonym_oids,
        }
    }

    /// Total raw annotations on Birds.
    pub fn annotation_count(&self) -> usize {
        self.annotations.len()
    }
}

/// Annotation count per tuple: uniform in `[avg/2, 3*avg/2]`, so label-count
/// selectivities vary smoothly across tuples.
fn annot_count<R: Rng + ?Sized>(rng: &mut R, avg: usize) -> usize {
    if avg == 0 {
        return 0;
    }
    let lo = (avg / 2).max(1);
    let hi = avg + avg / 2;
    rng.random_range(lo..=hi)
}

fn sample_category<R: Rng + ?Sized>(rng: &mut R, weights: &[u32; 7], total: u32) -> Category {
    let mut pick = rng.random_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return Category::ALL[i];
        }
        pick -= w;
    }
    Category::Other
}

/// Mostly row-level attachments, some single-cell, some multi-cell.
fn attachment<R: Rng + ?Sized>(rng: &mut R, oid: Oid, arity: usize) -> Attachment {
    match rng.random_range(0..10) {
        0..=6 => Attachment::row(oid),
        7..=8 => Attachment::cells(oid, &[rng.random_range(0..arity)]),
        _ => {
            let a = rng.random_range(0..arity);
            let b = rng.random_range(0..arity);
            Attachment::cells(oid, &[a, b])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let cfg = CorpusConfig::tiny();
        let a = Corpus::build(&cfg);
        let b = Corpus::build(&cfg);
        assert_eq!(a.annotation_count(), b.annotation_count());
        assert_eq!(a.bird_oids, b.bird_oids);
        let ids_a = a.annotations.ids();
        let ids_b = b.annotations.ids();
        assert_eq!(ids_a, ids_b);
        // Spot-check identical text.
        let id = ids_a[ids_a.len() / 2];
        assert_eq!(
            a.annotations.get(id).unwrap().text,
            b.annotations.get(id).unwrap().text
        );
    }

    #[test]
    fn tuple_and_synonym_counts_match_config() {
        let cfg = CorpusConfig::tiny();
        let c = Corpus::build(&cfg);
        assert_eq!(c.birds.len(), cfg.n_tuples);
        assert_eq!(c.synonyms.len(), cfg.n_tuples * cfg.synonyms_per_bird);
    }

    #[test]
    fn annotation_volume_tracks_average() {
        let cfg = CorpusConfig {
            n_tuples: 100,
            avg_annots_per_tuple: 12,
            ..CorpusConfig::tiny()
        };
        let c = Corpus::build(&cfg);
        let n = c.annotation_count() as f64;
        let expected = (100 * 12) as f64;
        assert!(
            (n - expected).abs() < expected * 0.25,
            "got {n}, expected ≈{expected}"
        );
    }

    #[test]
    fn every_bird_is_annotated() {
        let c = Corpus::build(&CorpusConfig::tiny());
        for &oid in &c.bird_oids {
            assert!(
                !c.annotations.for_tuple(oid).is_empty(),
                "bird {oid:?} has no annotations"
            );
        }
    }

    #[test]
    fn shared_annotations_exist() {
        let cfg = CorpusConfig {
            n_tuples: 50,
            avg_annots_per_tuple: 20,
            shared_annot_fraction: 0.2,
            ..CorpusConfig::tiny()
        };
        let c = Corpus::build(&cfg);
        let shared = c
            .annotations
            .ids()
            .into_iter()
            .filter(|id| c.annotations.tuples_of(*id).len() > 1)
            .count();
        assert!(shared > 0, "expected some multi-tuple annotations");
    }

    #[test]
    fn long_annotations_present_for_snippets() {
        let cfg = CorpusConfig {
            n_tuples: 50,
            avg_annots_per_tuple: 20,
            long_annot_fraction: 0.2,
            ..CorpusConfig::tiny()
        };
        let c = Corpus::build(&cfg);
        let long = c
            .annotations
            .ids()
            .into_iter()
            .filter(|id| c.annotations.get(*id).unwrap().text.len() > 1000)
            .count();
        assert!(long > 0, "expected some >1000-char annotations");
    }

    #[test]
    fn category_mix_roughly_matches_weights() {
        let cfg = CorpusConfig {
            n_tuples: 200,
            avg_annots_per_tuple: 20,
            ..CorpusConfig::default()
        };
        let c = Corpus::build(&cfg);
        let total = c.annotation_count() as f64;
        let behaviors = c
            .annotations
            .ids()
            .into_iter()
            .filter(|id| c.annotations.get(*id).unwrap().category == Category::Behavior)
            .count() as f64;
        let expected = 25.0 / 100.0;
        assert!(
            (behaviors / total - expected).abs() < 0.05,
            "behavior fraction {} vs {expected}",
            behaviors / total
        );
    }
}
