//! The raw annotation record.

use std::fmt;

/// Identifier of a raw annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AnnotId(pub u64);

/// Thematic category of an annotation.
///
/// This is the *ground truth* label carried by the synthetic corpus. The
/// engine itself never reads it at query time — classifier summary instances
/// assign labels with a trained Naive Bayes model — but the generator uses it
/// to produce themed text and the test suite uses it to measure classifier
/// accuracy, mirroring how the paper's AKN annotations have human-judged
/// topics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Observed diseases.
    Disease,
    /// Body shape, weight, plumage.
    Anatomy,
    /// Behavior, sound, eating habits.
    Behavior,
    /// Data lineage notes.
    Provenance,
    /// Free-form remarks.
    Comment,
    /// Questions raised by curators.
    Question,
    /// Anything else (geography, misc).
    Other,
}

impl Category {
    /// All categories, in a fixed order.
    pub const ALL: [Category; 7] = [
        Category::Disease,
        Category::Anatomy,
        Category::Behavior,
        Category::Provenance,
        Category::Comment,
        Category::Question,
        Category::Other,
    ];

    /// Canonical label string (matches the paper's classifier labels).
    pub fn label(&self) -> &'static str {
        match self {
            Category::Disease => "Disease",
            Category::Anatomy => "Anatomy",
            Category::Behavior => "Behavior",
            Category::Provenance => "Provenance",
            Category::Comment => "Comment",
            Category::Question => "Question",
            Category::Other => "Other",
        }
    }

    /// Parse from a label string.
    pub fn parse(s: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.label() == s)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A raw annotation: free text plus provenance metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Unique identifier.
    pub id: AnnotId,
    /// The annotation body.
    pub text: String,
    /// Ground-truth category (generator/evaluation only; see [`Category`]).
    pub category: Category,
    /// Author handle.
    pub author: String,
    /// Monotone revision counter at creation time (used by the two-version
    /// join experiments, Fig. 16 Q2).
    pub revision: u64,
}

impl Annotation {
    /// Byte size of the stored record (id + text + metadata), used by the
    /// storage-overhead experiments.
    pub fn stored_size(&self) -> usize {
        8 + self.text.len() + self.author.len() + 1 + 8
    }

    /// Serialize for heap storage.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.stored_size() + 16);
        out.extend_from_slice(&self.id.0.to_le_bytes());
        out.push(
            Category::ALL
                .iter()
                .position(|c| c == &self.category)
                .unwrap() as u8,
        );
        out.extend_from_slice(&self.revision.to_le_bytes());
        out.extend_from_slice(&(self.author.len() as u32).to_le_bytes());
        out.extend_from_slice(self.author.as_bytes());
        out.extend_from_slice(&(self.text.len() as u32).to_le_bytes());
        out.extend_from_slice(self.text.as_bytes());
        out
    }

    /// Deserialize from heap storage.
    pub fn decode(bytes: &[u8]) -> Option<Annotation> {
        let mut pos = 0usize;
        let id = AnnotId(u64::from_le_bytes(
            bytes.get(pos..pos + 8)?.try_into().ok()?,
        ));
        pos += 8;
        let cat = Category::ALL.get(*bytes.get(pos)? as usize).copied()?;
        pos += 1;
        let revision = u64::from_le_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let alen = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let author = String::from_utf8(bytes.get(pos..pos + alen)?.to_vec()).ok()?;
        pos += alen;
        let tlen = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let text = String::from_utf8(bytes.get(pos..pos + tlen)?.to_vec()).ok()?;
        Some(Annotation {
            id,
            text,
            category: cat,
            author,
            revision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let a = Annotation {
            id: AnnotId(42),
            text: "found eating stonewort and algae".into(),
            category: Category::Behavior,
            author: "curator-7".into(),
            revision: 3,
        };
        assert_eq!(Annotation::decode(&a.encode()), Some(a));
    }

    #[test]
    fn decode_rejects_truncation() {
        let a = Annotation {
            id: AnnotId(1),
            text: "t".into(),
            category: Category::Other,
            author: "a".into(),
            revision: 0,
        };
        let bytes = a.encode();
        assert!(Annotation::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(Annotation::decode(&[]).is_none());
    }

    #[test]
    fn category_label_roundtrip() {
        for c in Category::ALL {
            assert_eq!(Category::parse(c.label()), Some(c));
        }
        assert_eq!(Category::parse("Nope"), None);
    }
}
