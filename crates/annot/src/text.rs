//! Deterministic themed annotation-text generation.
//!
//! Stands in for the AKN ornithology corpus: each [`Category`] has a keyword
//! vocabulary, and generated sentences mix category keywords with neutral
//! filler so that (a) a Naive Bayes classifier can learn the categories with
//! realistic (not perfect) accuracy, and (b) keyword-search predicates such
//! as `containsUnion('wikipedia', 'hormone')` have non-trivial selectivity.

use rand::{Rng, RngExt};

use crate::annotation::Category;

/// Category-specific keyword pools.
pub fn keywords(category: Category) -> &'static [&'static str] {
    match category {
        Category::Disease => &[
            "disease",
            "infection",
            "avian",
            "influenza",
            "parasite",
            "lesion",
            "virus",
            "pox",
            "malaria",
            "outbreak",
            "symptom",
            "mortality",
            "botulism",
            "fungal",
        ],
        Category::Anatomy => &[
            "wingspan",
            "plumage",
            "beak",
            "feather",
            "tail",
            "weight",
            "skeleton",
            "bone",
            "size",
            "crest",
            "talon",
            "molt",
            "coloration",
            "hormone",
        ],
        Category::Behavior => &[
            "eating",
            "foraging",
            "migration",
            "song",
            "call",
            "nesting",
            "courtship",
            "stonewort",
            "flock",
            "roosting",
            "territorial",
            "diving",
            "preening",
        ],
        Category::Provenance => &[
            "source",
            "derived",
            "imported",
            "dataset",
            "lineage",
            "copied",
            "survey",
            "museum",
            "specimen",
            "record",
            "transferred",
            "catalog",
            "archive",
        ],
        Category::Comment => &[
            "observed",
            "region",
            "noticed",
            "report",
            "sighting",
            "wikipedia",
            "article",
            "photo",
            "beautiful",
            "common",
            "rare",
            "wetland",
            "lake",
            "coastal",
        ],
        Category::Question => &[
            "wrong",
            "unsure",
            "verify",
            "question",
            "confirm",
            "doubt",
            "mistake",
            "seems",
            "check",
            "really",
            "suspicious",
            "incorrect",
            "why",
        ],
        Category::Other => &[
            "general",
            "misc",
            "note",
            "experiment",
            "study",
            "project",
            "field",
            "season",
            "weather",
            "count",
            "station",
            "volunteer",
            "tracker",
        ],
    }
}

/// Neutral filler shared by all categories.
const FILLER: &[&str] = &[
    "the", "bird", "was", "near", "with", "and", "a", "very", "this", "that", "in", "spring",
    "observed", "at", "on", "its", "appears", "to", "be", "quite", "one",
];

/// Generate annotation text of roughly `target_len` characters: sentences
/// mixing ~40% category keywords with filler words.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, category: Category, target_len: usize) -> String {
    let kw = keywords(category);
    let mut out = String::with_capacity(target_len + 16);
    let mut sentence_words = 0usize;
    while out.len() < target_len {
        let word = if rng.random_range(0..10) < 4 {
            kw[rng.random_range(0..kw.len())]
        } else {
            FILLER[rng.random_range(0..FILLER.len())]
        };
        if sentence_words > 0 || !out.is_empty() {
            out.push(' ');
        }
        out.push_str(word);
        sentence_words += 1;
        if sentence_words >= rng.random_range(6..14) {
            out.push('.');
            sentence_words = 0;
        }
    }
    if !out.ends_with('.') {
        out.push('.');
    }
    out
}

/// Generate a labeled training corpus: `per_category` samples per category.
pub fn training_set<R: Rng + ?Sized>(
    rng: &mut R,
    per_category: usize,
    len: usize,
) -> Vec<(String, Category)> {
    let mut out = Vec::with_capacity(per_category * Category::ALL.len());
    for cat in Category::ALL {
        for _ in 0..per_category {
            out.push((generate(rng, cat, len), cat));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut StdRng::seed_from_u64(7), Category::Disease, 200);
        let b = generate(&mut StdRng::seed_from_u64(7), Category::Disease, 200);
        assert_eq!(a, b);
    }

    #[test]
    fn length_is_respected_approximately() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = generate(&mut rng, Category::Comment, 500);
        assert!(t.len() >= 500 && t.len() < 560, "len={}", t.len());
    }

    #[test]
    fn category_keywords_dominate() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = generate(&mut rng, Category::Disease, 2000);
        let kw = keywords(Category::Disease);
        let hits = t.split_whitespace().filter(|w| {
            let w = w.trim_end_matches('.');
            kw.contains(&w)
        });
        assert!(hits.count() > 50, "disease keywords should be frequent");
    }

    #[test]
    fn training_set_covers_all_categories() {
        let mut rng = StdRng::seed_from_u64(5);
        let set = training_set(&mut rng, 3, 100);
        assert_eq!(set.len(), 3 * Category::ALL.len());
        for cat in Category::ALL {
            assert_eq!(set.iter().filter(|(_, c)| *c == cat).count(), 3);
        }
    }

    #[test]
    fn vocabularies_are_distinct() {
        // Each pair of categories shares at most a couple of keywords, so a
        // classifier has signal to separate them.
        for a in Category::ALL {
            for b in Category::ALL {
                if a == b {
                    continue;
                }
                let ka = keywords(a);
                let kb = keywords(b);
                let shared = ka.iter().filter(|w| kb.contains(w)).count();
                assert!(shared <= 2, "{a} and {b} share {shared} keywords");
            }
        }
    }
}
