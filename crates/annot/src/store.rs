//! Heap-backed annotation store.
//!
//! One [`AnnotationStore`] holds the raw annotations of one user relation:
//! the 5 GB "raw annotations table" of the paper's evaluation. Annotation
//! bodies live in a heap file (so reading them costs pages); per-tuple
//! postings are kept in memory like a real system would keep them in a
//! (cheap, always-cached) link table index.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use instn_storage::io::IoStats;
use instn_storage::page::RecordId;
use instn_storage::{BufferPool, HeapFile, Oid, StorageError};

use crate::annotation::{AnnotId, Annotation};
use crate::target::{Attachment, ColumnSet};

/// Raw annotations of one table, with per-tuple postings.
///
/// Annotation ids are drawn from a counter that may be *shared* across the
/// stores of several tables (see [`AnnotationStore::with_counter`]): the
/// paper allows one annotation to be attached to tuples of different
/// relations (e.g. the two-revision join of Fig. 16 Q2), and the merge
/// procedure identifies such common annotations by id.
#[derive(Debug)]
pub struct AnnotationStore {
    heap: HeapFile,
    locations: HashMap<AnnotId, RecordId>,
    /// tuple → [(annotation, covered columns)]
    postings: HashMap<Oid, Vec<(AnnotId, ColumnSet)>>,
    /// annotation → tuples it is attached to (for multi-tuple annotations).
    attachments: HashMap<AnnotId, Vec<Oid>>,
    next_id: Arc<AtomicU64>,
}

impl AnnotationStore {
    /// Create an empty store with its own id counter.
    pub fn new(stats: Arc<IoStats>) -> Self {
        Self::with_counter(stats, Arc::new(AtomicU64::new(1)))
    }

    /// Create an empty store drawing ids from a shared counter, so ids are
    /// globally unique across the stores of one database.
    pub fn with_counter(stats: Arc<IoStats>, next_id: Arc<AtomicU64>) -> Self {
        Self::with_pool_and_counter(BufferPool::disabled(stats), next_id)
    }

    /// [`AnnotationStore::with_counter`] with heap pages cached by `pool`.
    pub fn with_pool_and_counter(pool: Arc<BufferPool>, next_id: Arc<AtomicU64>) -> Self {
        Self {
            heap: HeapFile::with_pool(pool),
            locations: HashMap::new(),
            postings: HashMap::new(),
            attachments: HashMap::new(),
            next_id,
        }
    }

    /// Number of stored annotations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Heap payload bytes (storage-overhead experiments).
    pub fn used_bytes(&self) -> usize {
        self.heap.used_bytes()
    }

    /// Heap pages allocated.
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Add an annotation with its attachments; assigns the id.
    pub fn add(
        &mut self,
        text: String,
        category: crate::annotation::Category,
        author: String,
        revision: u64,
        attachments: Vec<Attachment>,
    ) -> Result<AnnotId, StorageError> {
        let id = AnnotId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let annot = Annotation {
            id,
            text,
            category,
            author,
            revision,
        };
        let rid = self.heap.insert(&annot.encode())?;
        self.locations.insert(id, rid);
        let mut oids = Vec::with_capacity(attachments.len());
        for att in attachments {
            self.postings
                .entry(att.oid)
                .or_default()
                .push((id, att.columns));
            oids.push(att.oid);
        }
        self.attachments.insert(id, oids);
        Ok(id)
    }

    /// Add an annotation under an explicit id (persistence replay). The
    /// shared id counter advances past it.
    pub fn add_with_id(
        &mut self,
        id: AnnotId,
        text: String,
        category: crate::annotation::Category,
        author: String,
        revision: u64,
        attachments: Vec<Attachment>,
    ) -> Result<(), StorageError> {
        if self.locations.contains_key(&id) {
            return Err(StorageError::TableExists(format!("annotation {}", id.0)));
        }
        self.next_id.fetch_max(id.0 + 1, Ordering::Relaxed);
        let annot = Annotation {
            id,
            text,
            category,
            author,
            revision,
        };
        let rid = self.heap.insert(&annot.encode())?;
        self.locations.insert(id, rid);
        let mut oids = Vec::with_capacity(attachments.len());
        for att in attachments {
            self.postings
                .entry(att.oid)
                .or_default()
                .push((id, att.columns));
            oids.push(att.oid);
        }
        self.attachments.insert(id, oids);
        Ok(())
    }

    /// Every posting in this store, as `(tuple, annotation, columns)`
    /// triples (persistence dumps).
    pub fn postings_snapshot(&self) -> Vec<(Oid, AnnotId, ColumnSet)> {
        let mut out = Vec::new();
        for (oid, list) in &self.postings {
            for (id, cs) in list {
                out.push((*oid, *id, cs.clone()));
            }
        }
        out.sort_by_key(|(oid, id, _)| (id.0, oid.0));
        out
    }

    /// Attach an annotation *stored elsewhere* (another table's store) to
    /// tuples of this store's table. Only postings are recorded here; the
    /// body stays in its home store.
    pub fn attach_external(&mut self, id: AnnotId, attachments: Vec<Attachment>) {
        let mut oids = self.attachments.remove(&id).unwrap_or_default();
        for att in attachments {
            self.postings
                .entry(att.oid)
                .or_default()
                .push((id, att.columns));
            oids.push(att.oid);
        }
        self.attachments.insert(id, oids);
    }

    /// Whether this store holds the annotation *body* (not just postings).
    pub fn stores_body(&self, id: AnnotId) -> bool {
        self.locations.contains_key(&id)
    }

    /// Fetch an annotation body (heap read).
    pub fn get(&self, id: AnnotId) -> Result<Annotation, StorageError> {
        let rid = self
            .locations
            .get(&id)
            .ok_or(StorageError::OidNotFound(id.0))?;
        let bytes = self.heap.get(*rid)?;
        Annotation::decode(&bytes).ok_or_else(|| StorageError::Corrupt("annotation".into()))
    }

    /// Remove an annotation entirely (all attachments in this store, plus
    /// the body if stored here). Errors if the store knows nothing of `id`.
    pub fn delete(&mut self, id: AnnotId) -> Result<(), StorageError> {
        let rid = self.locations.remove(&id);
        if rid.is_none() && !self.attachments.contains_key(&id) {
            return Err(StorageError::OidNotFound(id.0));
        }
        if let Some(rid) = rid {
            self.heap.delete(rid)?;
        }
        if let Some(oids) = self.attachments.remove(&id) {
            for oid in oids {
                if let Some(list) = self.postings.get_mut(&oid) {
                    list.retain(|(a, _)| *a != id);
                    if list.is_empty() {
                        self.postings.remove(&oid);
                    }
                }
            }
        }
        Ok(())
    }

    /// Remove every posting on tuple `oid` (tuple deletion). Annotations
    /// whose only attachment was this tuple lose their body too; annotations
    /// attached elsewhere keep it. Returns the ids fully deleted.
    pub fn detach_tuple(&mut self, oid: Oid) -> Vec<AnnotId> {
        let Some(list) = self.postings.remove(&oid) else {
            return Vec::new();
        };
        let mut fully_deleted = Vec::new();
        for (id, _) in list {
            if let Some(oids) = self.attachments.get_mut(&id) {
                oids.retain(|o| *o != oid);
                if oids.is_empty() {
                    self.attachments.remove(&id);
                    if let Some(rid) = self.locations.remove(&id) {
                        let _ = self.heap.delete(rid);
                    }
                    fully_deleted.push(id);
                }
            }
        }
        fully_deleted
    }

    /// Annotation ids attached (anywhere) to `oid`.
    pub fn for_tuple(&self, oid: Oid) -> Vec<AnnotId> {
        self.postings
            .get(&oid)
            .map(|v| v.iter().map(|(a, _)| *a).collect())
            .unwrap_or_default()
    }

    /// Annotation ids attached to `oid` covering column `col`.
    pub fn for_cell(&self, oid: Oid, col: usize) -> Vec<AnnotId> {
        self.postings
            .get(&oid)
            .map(|v| {
                v.iter()
                    .filter(|(_, cs)| cs.covers(col))
                    .map(|(a, _)| *a)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Attachment descriptors on `oid` (id + column set).
    pub fn attachments_on(&self, oid: Oid) -> Vec<(AnnotId, ColumnSet)> {
        self.postings.get(&oid).cloned().unwrap_or_default()
    }

    /// Tuples an annotation is attached to.
    pub fn tuples_of(&self, id: AnnotId) -> Vec<Oid> {
        self.attachments.get(&id).cloned().unwrap_or_default()
    }

    /// Partition a tuple's annotations by projection survival: `(kept,
    /// removed)` when only `kept_cols` columns remain (paper Fig. 3 step 1).
    pub fn partition_by_projection(
        &self,
        oid: Oid,
        kept_cols: &[usize],
    ) -> (Vec<AnnotId>, Vec<AnnotId>) {
        let mut kept = Vec::new();
        let mut removed = Vec::new();
        for (id, cs) in self.postings.get(&oid).into_iter().flatten() {
            if cs.survives_projection(kept_cols) {
                kept.push(*id);
            } else {
                removed.push(*id);
            }
        }
        (kept, removed)
    }

    /// All annotation ids attached to *both* tuples — the common annotations
    /// the merge procedure must not double-count (paper Fig. 3 step 3).
    pub fn common_annotations(&self, a: Oid, b: Oid) -> Vec<AnnotId> {
        let on_a = self.postings.get(&a);
        let on_b = self.postings.get(&b);
        match (on_a, on_b) {
            (Some(xa), Some(xb)) => {
                let set: std::collections::HashSet<AnnotId> =
                    xb.iter().map(|(id, _)| *id).collect();
                xa.iter()
                    .map(|(id, _)| *id)
                    .filter(|id| set.contains(id))
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Iterate all annotation ids (unordered).
    pub fn ids(&self) -> Vec<AnnotId> {
        let mut v: Vec<AnnotId> = self.locations.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Category;

    fn store() -> AnnotationStore {
        AnnotationStore::new(IoStats::new())
    }

    fn add(s: &mut AnnotationStore, text: &str, atts: Vec<Attachment>) -> AnnotId {
        s.add(text.into(), Category::Other, "t".into(), 1, atts)
            .unwrap()
    }

    #[test]
    fn add_get_roundtrip() {
        let mut s = store();
        let id = add(
            &mut s,
            "large one having size",
            vec![Attachment::row(Oid(1))],
        );
        let a = s.get(id).unwrap();
        assert_eq!(a.text, "large one having size");
        assert_eq!(s.for_tuple(Oid(1)), vec![id]);
    }

    #[test]
    fn cell_postings_filter_by_column() {
        let mut s = store();
        let a = add(&mut s, "on col 2", vec![Attachment::cells(Oid(1), &[2])]);
        let b = add(&mut s, "on row", vec![Attachment::row(Oid(1))]);
        assert_eq!(s.for_cell(Oid(1), 2), vec![a, b]);
        assert_eq!(s.for_cell(Oid(1), 5), vec![b]);
    }

    #[test]
    fn multi_tuple_annotation() {
        let mut s = store();
        let id = add(
            &mut s,
            "shared",
            vec![Attachment::row(Oid(1)), Attachment::row(Oid(2))],
        );
        assert_eq!(s.for_tuple(Oid(1)), vec![id]);
        assert_eq!(s.for_tuple(Oid(2)), vec![id]);
        assert_eq!(s.tuples_of(id), vec![Oid(1), Oid(2)]);
        assert_eq!(s.common_annotations(Oid(1), Oid(2)), vec![id]);
        assert!(s.common_annotations(Oid(1), Oid(3)).is_empty());
    }

    #[test]
    fn delete_removes_all_postings() {
        let mut s = store();
        let id = add(
            &mut s,
            "shared",
            vec![Attachment::row(Oid(1)), Attachment::cells(Oid(2), &[0])],
        );
        s.delete(id).unwrap();
        assert!(s.get(id).is_err());
        assert!(s.for_tuple(Oid(1)).is_empty());
        assert!(s.for_tuple(Oid(2)).is_empty());
        assert!(s.delete(id).is_err());
    }

    #[test]
    fn projection_partition() {
        let mut s = store();
        let keep = add(&mut s, "on col 0", vec![Attachment::cells(Oid(1), &[0])]);
        let drop = add(&mut s, "on col 3", vec![Attachment::cells(Oid(1), &[3])]);
        let row = add(&mut s, "row note", vec![Attachment::row(Oid(1))]);
        let (kept, removed) = s.partition_by_projection(Oid(1), &[0, 1]);
        assert!(kept.contains(&keep));
        assert!(kept.contains(&row));
        assert_eq!(removed, vec![drop]);
    }

    #[test]
    fn external_attachments_share_ids_across_stores() {
        use std::sync::atomic::AtomicU64;
        let stats = IoStats::new();
        let counter = Arc::new(AtomicU64::new(1));
        let mut home = AnnotationStore::with_counter(Arc::clone(&stats), Arc::clone(&counter));
        let mut other = AnnotationStore::with_counter(stats, counter);
        let id = home
            .add(
                "shared note".into(),
                Category::Comment,
                "t".into(),
                1,
                vec![Attachment::row(Oid(1))],
            )
            .unwrap();
        other.attach_external(id, vec![Attachment::row(Oid(9))]);
        assert!(home.stores_body(id));
        assert!(!other.stores_body(id));
        assert_eq!(other.for_tuple(Oid(9)), vec![id]);
        // Ids never collide across the two stores.
        let id2 = other
            .add(
                "own note".into(),
                Category::Comment,
                "t".into(),
                1,
                vec![Attachment::row(Oid(9))],
            )
            .unwrap();
        assert_ne!(id, id2);
        // Deleting the external posting works without a body.
        other.delete(id).unwrap();
        assert_eq!(other.for_tuple(Oid(9)), vec![id2]);
    }

    #[test]
    fn ids_are_sorted_and_complete() {
        let mut s = store();
        let a = add(&mut s, "1", vec![Attachment::row(Oid(1))]);
        let b = add(&mut s, "2", vec![Attachment::row(Oid(1))]);
        assert_eq!(s.ids(), vec![a, b]);
        assert_eq!(s.len(), 2);
    }
}
