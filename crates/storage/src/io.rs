//! I/O accounting.
//!
//! Every page access in the heap files and every node visit in the B-Trees is
//! charged to a shared [`IoStats`]. The benchmark harness snapshots these
//! counters around each measured query so the paper's figures can be
//! regenerated in terms of simulated I/O as well as wall time.
//!
//! Counters come in two flavours:
//!
//! * **Physical** (`heap_reads`, `heap_writes`, `index_reads`,
//!   `index_writes`) — page transfers that would actually hit the disk. With
//!   the buffer pool disabled (capacity 0) every logical access is also a
//!   physical one, which keeps these counters bit-identical to the original
//!   uncached engine.
//! * **Logical** (`logical_*`) — page accesses requested by the engine,
//!   regardless of whether the buffer pool satisfied them from memory.
//!
//! The `cache_*` counters track buffer-pool behaviour itself (hits, misses,
//! evictions). See [`crate::buffer::BufferPool`] for the charging rules.
//!
//! # Striping
//!
//! Counters are striped to keep a morsel-parallel scan from serializing on
//! one cache line of shared atomics. Each thread charges exactly one stripe:
//!
//! * a thread *pinned* with [`IoStats::pin_worker`]`(w)` charges the
//!   dedicated worker stripe `w` — the parallel executor pins each exchange
//!   worker so [`IoStats::worker_snapshot`] can attribute I/O to it exactly;
//! * every other thread charges a stripe in a hash band keyed by its
//!   `ThreadId`, so concurrent *sessions* also spread out without ever
//!   polluting a pinned worker stripe.
//!
//! [`IoStats::snapshot`] sums all stripes, so totals are exact regardless of
//! which threads did the charging and `IoSnapshot::since` keeps its meaning
//! unchanged. A single-threaded caller always lands in one stripe, making
//! serial counts bit-identical to the pre-striping flat counters.

use std::cell::Cell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stripes reserved for unpinned threads, selected by `ThreadId` hash.
const HASH_STRIPES: usize = 8;
/// Stripes reserved for pinned exchange workers (worker `w` uses slot
/// `w % PIN_STRIPES`; per-worker attribution is exact while `w` stays below
/// this, and merely coarsens — never loses counts — beyond it).
pub const PIN_STRIPES: usize = 16;
const STRIPES: usize = HASH_STRIPES + PIN_STRIPES;

thread_local! {
    /// Worker stripe override installed by [`IoStats::pin_worker`].
    static PINNED: Cell<Option<usize>> = const { Cell::new(None) };
    /// Lazily computed hash-band stripe for this thread (usize::MAX = unset).
    static HASH_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn current_stripe() -> usize {
    if let Some(slot) = PINNED.with(Cell::get) {
        return HASH_STRIPES + slot;
    }
    HASH_SLOT.with(|s| {
        let mut slot = s.get();
        if slot == usize::MAX {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            slot = (h.finish() as usize) % HASH_STRIPES;
            s.set(slot);
        }
        slot
    })
}

/// One cache-line-aligned stripe of counters.
#[derive(Debug, Default)]
#[repr(align(128))]
struct IoCell {
    heap_reads: AtomicU64,
    heap_writes: AtomicU64,
    index_reads: AtomicU64,
    index_writes: AtomicU64,
    logical_heap_reads: AtomicU64,
    logical_heap_writes: AtomicU64,
    logical_index_reads: AtomicU64,
    logical_index_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    wal_appends: AtomicU64,
    wal_forces: AtomicU64,
    wal_bytes: AtomicU64,
}

impl IoCell {
    fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            heap_reads: self.heap_reads.load(Ordering::Relaxed),
            heap_writes: self.heap_writes.load(Ordering::Relaxed),
            index_reads: self.index_reads.load(Ordering::Relaxed),
            index_writes: self.index_writes.load(Ordering::Relaxed),
            logical_heap_reads: self.logical_heap_reads.load(Ordering::Relaxed),
            logical_heap_writes: self.logical_heap_writes.load(Ordering::Relaxed),
            logical_index_reads: self.logical_index_reads.load(Ordering::Relaxed),
            logical_index_writes: self.logical_index_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_forces: self.wal_forces.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.heap_reads.store(0, Ordering::Relaxed);
        self.heap_writes.store(0, Ordering::Relaxed);
        self.index_reads.store(0, Ordering::Relaxed);
        self.index_writes.store(0, Ordering::Relaxed);
        self.logical_heap_reads.store(0, Ordering::Relaxed);
        self.logical_heap_writes.store(0, Ordering::Relaxed);
        self.logical_index_reads.store(0, Ordering::Relaxed);
        self.logical_index_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.wal_appends.store(0, Ordering::Relaxed);
        self.wal_forces.store(0, Ordering::Relaxed);
        self.wal_bytes.store(0, Ordering::Relaxed);
    }
}

/// Shared, thread-safe I/O counters (striped; see the module docs).
///
/// The counters distinguish heap-page traffic from index-node traffic because
/// several of the paper's claims (e.g. the backward-pointer experiment of
/// Figure 13) are precisely about trading index hops for heap joins.
#[derive(Debug)]
pub struct IoStats {
    stripes: [IoCell; STRIPES],
}

impl Default for IoStats {
    fn default() -> Self {
        Self {
            stripes: std::array::from_fn(|_| IoCell::default()),
        }
    }
}

impl IoStats {
    /// Create a fresh, zeroed counter set behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    fn cell(&self) -> &IoCell {
        &self.stripes[current_stripe()]
    }

    /// Pin the *current thread* to worker stripe `w` until the returned
    /// guard drops (nesting restores the previous pin). All counts this
    /// thread records while pinned are attributable via
    /// [`IoStats::worker_snapshot`]`(w)`; they still appear in the global
    /// [`IoStats::snapshot`] like any other count.
    pub fn pin_worker(w: usize) -> WorkerPin {
        let prev = PINNED.with(|p| p.replace(Some(w % PIN_STRIPES)));
        WorkerPin { prev }
    }

    /// Snapshot of worker stripe `w` alone — the I/O charged by threads
    /// pinned to `w`, exact as long as concurrently pinned workers use
    /// distinct `w < PIN_STRIPES`.
    pub fn worker_snapshot(&self, w: usize) -> IoSnapshot {
        self.stripes[HASH_STRIPES + w % PIN_STRIPES].snapshot()
    }

    /// Record `n` physical heap page reads.
    #[inline]
    pub fn heap_read(&self, n: u64) {
        self.cell().heap_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical heap page writes.
    #[inline]
    pub fn heap_write(&self, n: u64) {
        self.cell().heap_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical index node reads.
    #[inline]
    pub fn index_read(&self, n: u64) {
        self.cell().index_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical index node writes.
    #[inline]
    pub fn index_write(&self, n: u64) {
        self.cell().index_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical heap page reads.
    #[inline]
    pub fn logical_heap_read(&self, n: u64) {
        self.cell()
            .logical_heap_reads
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical heap page writes.
    #[inline]
    pub fn logical_heap_write(&self, n: u64) {
        self.cell()
            .logical_heap_writes
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical index node reads.
    #[inline]
    pub fn logical_index_read(&self, n: u64) {
        self.cell()
            .logical_index_reads
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical index node writes.
    #[inline]
    pub fn logical_index_write(&self, n: u64) {
        self.cell()
            .logical_index_writes
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` buffer-pool hits.
    #[inline]
    pub fn cache_hit(&self, n: u64) {
        self.cell().cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` buffer-pool misses.
    #[inline]
    pub fn cache_miss(&self, n: u64) {
        self.cell().cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` buffer-pool evictions.
    #[inline]
    pub fn cache_eviction(&self, n: u64) {
        self.cell().cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` WAL record appends.
    #[inline]
    pub fn wal_append(&self, n: u64) {
        self.cell().wal_appends.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` WAL forces that actually moved bytes.
    #[inline]
    pub fn wal_force(&self, n: u64) {
        self.cell().wal_forces.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` WAL bytes written durably (including torn partials).
    #[inline]
    pub fn wal_bytes(&self, n: u64) {
        self.cell().wal_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current counter values (sum of every stripe).
    pub fn snapshot(&self) -> IoSnapshot {
        let mut sum = IoSnapshot::default();
        for stripe in &self.stripes {
            sum.add_assign(&stripe.snapshot());
        }
        sum
    }

    /// Reset all counters (every stripe) to zero.
    pub fn reset(&self) {
        for stripe in &self.stripes {
            stripe.reset();
        }
    }
}

/// RAII guard for [`IoStats::pin_worker`]; restores the previous pin (if
/// any) on drop.
#[derive(Debug)]
pub struct WorkerPin {
    prev: Option<usize>,
}

impl Drop for WorkerPin {
    fn drop(&mut self) {
        PINNED.with(|p| p.set(self.prev));
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to express
/// "I/O performed between two snapshots".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Physical heap page reads.
    pub heap_reads: u64,
    /// Physical heap page writes.
    pub heap_writes: u64,
    /// Physical index node reads.
    pub index_reads: u64,
    /// Physical index node writes.
    pub index_writes: u64,
    /// Logical heap page reads (including buffer-pool hits).
    pub logical_heap_reads: u64,
    /// Logical heap page writes (including buffer-pool hits).
    pub logical_heap_writes: u64,
    /// Logical index node reads (including buffer-pool hits).
    pub logical_index_reads: u64,
    /// Logical index node writes (including buffer-pool hits).
    pub logical_index_writes: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Buffer-pool misses.
    pub cache_misses: u64,
    /// Buffer-pool evictions.
    pub cache_evictions: u64,
    /// WAL records appended (volatile until forced).
    pub wal_appends: u64,
    /// WAL forces that moved bytes to durable storage.
    pub wal_forces: u64,
    /// WAL bytes made durable (including torn partials).
    pub wal_bytes: u64,
}

impl IoSnapshot {
    /// Total of the four physical counters. Logical and cache counters are
    /// deliberately excluded so pre-buffer-pool figures keep their meaning.
    pub fn total(&self) -> u64 {
        self.heap_reads + self.heap_writes + self.index_reads + self.index_writes
    }

    /// Total physical reads (heap + index).
    pub fn reads(&self) -> u64 {
        self.heap_reads + self.index_reads
    }

    /// Total physical writes (heap + index).
    pub fn writes(&self) -> u64 {
        self.heap_writes + self.index_writes
    }

    /// Total logical accesses (heap + index, reads + writes).
    pub fn logical_total(&self) -> u64 {
        self.logical_heap_reads
            + self.logical_heap_writes
            + self.logical_index_reads
            + self.logical_index_writes
    }

    /// Total logical reads (heap + index).
    pub fn logical_reads(&self) -> u64 {
        self.logical_heap_reads + self.logical_index_reads
    }

    /// Total logical writes (heap + index).
    pub fn logical_writes(&self) -> u64 {
        self.logical_heap_writes + self.logical_index_writes
    }

    /// Buffer-pool hit ratio in `[0, 1]`; `0.0` when the pool saw no traffic
    /// (e.g. capacity 0, where every access bypasses the pool).
    pub fn hit_ratio(&self) -> f64 {
        let looked_up = self.cache_hits + self.cache_misses;
        if looked_up == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked_up as f64
        }
    }

    /// Counter-wise sum (used when merging stripes or per-worker deltas).
    pub fn add_assign(&mut self, other: &IoSnapshot) {
        self.heap_reads += other.heap_reads;
        self.heap_writes += other.heap_writes;
        self.index_reads += other.index_reads;
        self.index_writes += other.index_writes;
        self.logical_heap_reads += other.logical_heap_reads;
        self.logical_heap_writes += other.logical_heap_writes;
        self.logical_index_reads += other.logical_index_reads;
        self.logical_index_writes += other.logical_index_writes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.wal_appends += other.wal_appends;
        self.wal_forces += other.wal_forces;
        self.wal_bytes += other.wal_bytes;
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            heap_reads: self.heap_reads.saturating_sub(earlier.heap_reads),
            heap_writes: self.heap_writes.saturating_sub(earlier.heap_writes),
            index_reads: self.index_reads.saturating_sub(earlier.index_reads),
            index_writes: self.index_writes.saturating_sub(earlier.index_writes),
            logical_heap_reads: self
                .logical_heap_reads
                .saturating_sub(earlier.logical_heap_reads),
            logical_heap_writes: self
                .logical_heap_writes
                .saturating_sub(earlier.logical_heap_writes),
            logical_index_reads: self
                .logical_index_reads
                .saturating_sub(earlier.logical_index_reads),
            logical_index_writes: self
                .logical_index_writes
                .saturating_sub(earlier.logical_index_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_forces: self.wal_forces.saturating_sub(earlier.wal_forces),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
        }
    }
}

/// RAII helper measuring the I/O performed within a scope.
///
/// ```
/// use instn_storage::io::{IoScope, IoStats};
/// let stats = IoStats::new();
/// let scope = IoScope::begin(&stats);
/// stats.heap_read(3);
/// let delta = scope.end();
/// assert_eq!(delta.heap_reads, 3);
/// ```
pub struct IoScope {
    stats: Arc<IoStats>,
    start: IoSnapshot,
}

impl IoScope {
    /// Start measuring against `stats`.
    pub fn begin(stats: &Arc<IoStats>) -> Self {
        Self {
            stats: Arc::clone(stats),
            start: stats.snapshot(),
        }
    }

    /// Finish measuring and return the delta since [`IoScope::begin`].
    pub fn end(self) -> IoSnapshot {
        self.stats.snapshot().since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.heap_read(5);
        s.index_write(2);
        let a = s.snapshot();
        s.heap_read(1);
        s.heap_write(4);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.heap_reads, 1);
        assert_eq!(d.heap_writes, 4);
        assert_eq!(d.index_writes, 0);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.heap_read(10);
        s.logical_heap_read(10);
        s.cache_hit(3);
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
        assert_eq!(s.snapshot().logical_total(), 0);
        assert_eq!(s.snapshot().cache_hits, 0);
    }

    #[test]
    fn scope_measures_inner_io_only() {
        let s = IoStats::new();
        s.heap_read(100);
        let scope = IoScope::begin(&s);
        s.index_read(7);
        let d = scope.end();
        assert_eq!(d.index_reads, 7);
        assert_eq!(d.heap_reads, 0);
    }

    #[test]
    fn totals_partition() {
        let s = IoStats::new();
        s.heap_read(1);
        s.heap_write(2);
        s.index_read(3);
        s.index_write(4);
        let snap = s.snapshot();
        assert_eq!(snap.reads(), 4);
        assert_eq!(snap.writes(), 6);
        assert_eq!(snap.total(), 10);
    }

    #[test]
    fn logical_and_cache_counters_are_separate() {
        let s = IoStats::new();
        s.logical_heap_read(4);
        s.logical_index_write(2);
        s.cache_hit(3);
        s.cache_miss(1);
        s.cache_eviction(1);
        let snap = s.snapshot();
        // Physical counters untouched.
        assert_eq!(snap.total(), 0);
        assert_eq!(snap.logical_total(), 6);
        assert_eq!(snap.logical_reads(), 4);
        assert_eq!(snap.logical_writes(), 2);
        assert!((snap.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_zero_without_traffic() {
        let s = IoStats::new();
        s.heap_read(10);
        assert_eq!(s.snapshot().hit_ratio(), 0.0);
    }

    #[test]
    fn pinned_workers_attribute_exactly() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for w in 0..3usize {
                let s = &s;
                scope.spawn(move || {
                    let _pin = IoStats::pin_worker(w);
                    s.heap_read((w as u64 + 1) * 10);
                    s.logical_heap_read(w as u64 + 1);
                });
            }
        });
        for w in 0..3u64 {
            let ws = s.worker_snapshot(w as usize);
            assert_eq!(ws.heap_reads, (w + 1) * 10);
            assert_eq!(ws.logical_heap_reads, w + 1);
        }
        // Global totals see every stripe.
        assert_eq!(s.snapshot().heap_reads, 10 + 20 + 30);
        assert_eq!(s.snapshot().logical_heap_reads, 1 + 2 + 3);
    }

    #[test]
    fn unpinned_noise_never_lands_in_worker_stripes() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            // A pinned worker and an unpinned "session" thread race.
            let stats = &s;
            scope.spawn(move || {
                let _pin = IoStats::pin_worker(5);
                stats.index_read(42);
            });
            scope.spawn(move || {
                stats.index_read(1000);
            });
        });
        assert_eq!(s.worker_snapshot(5).index_reads, 42);
        assert_eq!(s.snapshot().index_reads, 1042);
    }

    #[test]
    fn pin_guard_restores_previous_pin() {
        let s = IoStats::new();
        let _outer = IoStats::pin_worker(1);
        {
            let _inner = IoStats::pin_worker(2);
            s.heap_read(1);
        }
        s.heap_read(2);
        assert_eq!(s.worker_snapshot(2).heap_reads, 1);
        assert_eq!(s.worker_snapshot(1).heap_reads, 2);
    }
}
