//! I/O accounting.
//!
//! Every page access in the heap files and every node visit in the B-Trees is
//! charged to a shared [`IoStats`]. The benchmark harness snapshots these
//! counters around each measured query so the paper's figures can be
//! regenerated in terms of simulated I/O as well as wall time.
//!
//! Counters come in two flavours:
//!
//! * **Physical** (`heap_reads`, `heap_writes`, `index_reads`,
//!   `index_writes`) — page transfers that would actually hit the disk. With
//!   the buffer pool disabled (capacity 0) every logical access is also a
//!   physical one, which keeps these counters bit-identical to the original
//!   uncached engine.
//! * **Logical** (`logical_*`) — page accesses requested by the engine,
//!   regardless of whether the buffer pool satisfied them from memory.
//!
//! The `cache_*` counters track buffer-pool behaviour itself (hits, misses,
//! evictions). See [`crate::buffer::BufferPool`] for the charging rules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// The counters distinguish heap-page traffic from index-node traffic because
/// several of the paper's claims (e.g. the backward-pointer experiment of
/// Figure 13) are precisely about trading index hops for heap joins.
#[derive(Debug, Default)]
pub struct IoStats {
    heap_reads: AtomicU64,
    heap_writes: AtomicU64,
    index_reads: AtomicU64,
    index_writes: AtomicU64,
    logical_heap_reads: AtomicU64,
    logical_heap_writes: AtomicU64,
    logical_index_reads: AtomicU64,
    logical_index_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    wal_appends: AtomicU64,
    wal_forces: AtomicU64,
    wal_bytes: AtomicU64,
}

impl IoStats {
    /// Create a fresh, zeroed counter set behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record `n` physical heap page reads.
    #[inline]
    pub fn heap_read(&self, n: u64) {
        self.heap_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical heap page writes.
    #[inline]
    pub fn heap_write(&self, n: u64) {
        self.heap_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical index node reads.
    #[inline]
    pub fn index_read(&self, n: u64) {
        self.index_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical index node writes.
    #[inline]
    pub fn index_write(&self, n: u64) {
        self.index_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical heap page reads.
    #[inline]
    pub fn logical_heap_read(&self, n: u64) {
        self.logical_heap_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical heap page writes.
    #[inline]
    pub fn logical_heap_write(&self, n: u64) {
        self.logical_heap_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical index node reads.
    #[inline]
    pub fn logical_index_read(&self, n: u64) {
        self.logical_index_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` logical index node writes.
    #[inline]
    pub fn logical_index_write(&self, n: u64) {
        self.logical_index_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` buffer-pool hits.
    #[inline]
    pub fn cache_hit(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` buffer-pool misses.
    #[inline]
    pub fn cache_miss(&self, n: u64) {
        self.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` buffer-pool evictions.
    #[inline]
    pub fn cache_eviction(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` WAL record appends.
    #[inline]
    pub fn wal_append(&self, n: u64) {
        self.wal_appends.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` WAL forces that actually moved bytes.
    #[inline]
    pub fn wal_force(&self, n: u64) {
        self.wal_forces.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` WAL bytes written durably (including torn partials).
    #[inline]
    pub fn wal_bytes(&self, n: u64) {
        self.wal_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            heap_reads: self.heap_reads.load(Ordering::Relaxed),
            heap_writes: self.heap_writes.load(Ordering::Relaxed),
            index_reads: self.index_reads.load(Ordering::Relaxed),
            index_writes: self.index_writes.load(Ordering::Relaxed),
            logical_heap_reads: self.logical_heap_reads.load(Ordering::Relaxed),
            logical_heap_writes: self.logical_heap_writes.load(Ordering::Relaxed),
            logical_index_reads: self.logical_index_reads.load(Ordering::Relaxed),
            logical_index_writes: self.logical_index_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_forces: self.wal_forces.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.heap_reads.store(0, Ordering::Relaxed);
        self.heap_writes.store(0, Ordering::Relaxed);
        self.index_reads.store(0, Ordering::Relaxed);
        self.index_writes.store(0, Ordering::Relaxed);
        self.logical_heap_reads.store(0, Ordering::Relaxed);
        self.logical_heap_writes.store(0, Ordering::Relaxed);
        self.logical_index_reads.store(0, Ordering::Relaxed);
        self.logical_index_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.wal_appends.store(0, Ordering::Relaxed);
        self.wal_forces.store(0, Ordering::Relaxed);
        self.wal_bytes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to express
/// "I/O performed between two snapshots".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Physical heap page reads.
    pub heap_reads: u64,
    /// Physical heap page writes.
    pub heap_writes: u64,
    /// Physical index node reads.
    pub index_reads: u64,
    /// Physical index node writes.
    pub index_writes: u64,
    /// Logical heap page reads (including buffer-pool hits).
    pub logical_heap_reads: u64,
    /// Logical heap page writes (including buffer-pool hits).
    pub logical_heap_writes: u64,
    /// Logical index node reads (including buffer-pool hits).
    pub logical_index_reads: u64,
    /// Logical index node writes (including buffer-pool hits).
    pub logical_index_writes: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Buffer-pool misses.
    pub cache_misses: u64,
    /// Buffer-pool evictions.
    pub cache_evictions: u64,
    /// WAL records appended (volatile until forced).
    pub wal_appends: u64,
    /// WAL forces that moved bytes to durable storage.
    pub wal_forces: u64,
    /// WAL bytes made durable (including torn partials).
    pub wal_bytes: u64,
}

impl IoSnapshot {
    /// Total of the four physical counters. Logical and cache counters are
    /// deliberately excluded so pre-buffer-pool figures keep their meaning.
    pub fn total(&self) -> u64 {
        self.heap_reads + self.heap_writes + self.index_reads + self.index_writes
    }

    /// Total physical reads (heap + index).
    pub fn reads(&self) -> u64 {
        self.heap_reads + self.index_reads
    }

    /// Total physical writes (heap + index).
    pub fn writes(&self) -> u64 {
        self.heap_writes + self.index_writes
    }

    /// Total logical accesses (heap + index, reads + writes).
    pub fn logical_total(&self) -> u64 {
        self.logical_heap_reads
            + self.logical_heap_writes
            + self.logical_index_reads
            + self.logical_index_writes
    }

    /// Total logical reads (heap + index).
    pub fn logical_reads(&self) -> u64 {
        self.logical_heap_reads + self.logical_index_reads
    }

    /// Total logical writes (heap + index).
    pub fn logical_writes(&self) -> u64 {
        self.logical_heap_writes + self.logical_index_writes
    }

    /// Buffer-pool hit ratio in `[0, 1]`; `0.0` when the pool saw no traffic
    /// (e.g. capacity 0, where every access bypasses the pool).
    pub fn hit_ratio(&self) -> f64 {
        let looked_up = self.cache_hits + self.cache_misses;
        if looked_up == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked_up as f64
        }
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            heap_reads: self.heap_reads.saturating_sub(earlier.heap_reads),
            heap_writes: self.heap_writes.saturating_sub(earlier.heap_writes),
            index_reads: self.index_reads.saturating_sub(earlier.index_reads),
            index_writes: self.index_writes.saturating_sub(earlier.index_writes),
            logical_heap_reads: self
                .logical_heap_reads
                .saturating_sub(earlier.logical_heap_reads),
            logical_heap_writes: self
                .logical_heap_writes
                .saturating_sub(earlier.logical_heap_writes),
            logical_index_reads: self
                .logical_index_reads
                .saturating_sub(earlier.logical_index_reads),
            logical_index_writes: self
                .logical_index_writes
                .saturating_sub(earlier.logical_index_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_forces: self.wal_forces.saturating_sub(earlier.wal_forces),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
        }
    }
}

/// RAII helper measuring the I/O performed within a scope.
///
/// ```
/// use instn_storage::io::{IoScope, IoStats};
/// let stats = IoStats::new();
/// let scope = IoScope::begin(&stats);
/// stats.heap_read(3);
/// let delta = scope.end();
/// assert_eq!(delta.heap_reads, 3);
/// ```
pub struct IoScope {
    stats: Arc<IoStats>,
    start: IoSnapshot,
}

impl IoScope {
    /// Start measuring against `stats`.
    pub fn begin(stats: &Arc<IoStats>) -> Self {
        Self {
            stats: Arc::clone(stats),
            start: stats.snapshot(),
        }
    }

    /// Finish measuring and return the delta since [`IoScope::begin`].
    pub fn end(self) -> IoSnapshot {
        self.stats.snapshot().since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.heap_read(5);
        s.index_write(2);
        let a = s.snapshot();
        s.heap_read(1);
        s.heap_write(4);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.heap_reads, 1);
        assert_eq!(d.heap_writes, 4);
        assert_eq!(d.index_writes, 0);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.heap_read(10);
        s.logical_heap_read(10);
        s.cache_hit(3);
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
        assert_eq!(s.snapshot().logical_total(), 0);
        assert_eq!(s.snapshot().cache_hits, 0);
    }

    #[test]
    fn scope_measures_inner_io_only() {
        let s = IoStats::new();
        s.heap_read(100);
        let scope = IoScope::begin(&s);
        s.index_read(7);
        let d = scope.end();
        assert_eq!(d.index_reads, 7);
        assert_eq!(d.heap_reads, 0);
    }

    #[test]
    fn totals_partition() {
        let s = IoStats::new();
        s.heap_read(1);
        s.heap_write(2);
        s.index_read(3);
        s.index_write(4);
        let snap = s.snapshot();
        assert_eq!(snap.reads(), 4);
        assert_eq!(snap.writes(), 6);
        assert_eq!(snap.total(), 10);
    }

    #[test]
    fn logical_and_cache_counters_are_separate() {
        let s = IoStats::new();
        s.logical_heap_read(4);
        s.logical_index_write(2);
        s.cache_hit(3);
        s.cache_miss(1);
        s.cache_eviction(1);
        let snap = s.snapshot();
        // Physical counters untouched.
        assert_eq!(snap.total(), 0);
        assert_eq!(snap.logical_total(), 6);
        assert_eq!(snap.logical_reads(), 4);
        assert_eq!(snap.logical_writes(), 2);
        assert!((snap.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_zero_without_traffic() {
        let s = IoStats::new();
        s.heap_read(10);
        assert_eq!(s.snapshot().hit_ratio(), 0.0);
    }
}
