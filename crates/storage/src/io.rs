//! I/O accounting.
//!
//! Every page access in the heap files and every node visit in the B-Trees is
//! charged to a shared [`IoStats`]. The benchmark harness snapshots these
//! counters around each measured query so the paper's figures can be
//! regenerated in terms of simulated I/O as well as wall time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// The counters distinguish heap-page traffic from index-node traffic because
/// several of the paper's claims (e.g. the backward-pointer experiment of
/// Figure 13) are precisely about trading index hops for heap joins.
#[derive(Debug, Default)]
pub struct IoStats {
    heap_reads: AtomicU64,
    heap_writes: AtomicU64,
    index_reads: AtomicU64,
    index_writes: AtomicU64,
}

impl IoStats {
    /// Create a fresh, zeroed counter set behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record `n` heap page reads.
    #[inline]
    pub fn heap_read(&self, n: u64) {
        self.heap_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` heap page writes.
    #[inline]
    pub fn heap_write(&self, n: u64) {
        self.heap_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` index node reads.
    #[inline]
    pub fn index_read(&self, n: u64) {
        self.index_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` index node writes.
    #[inline]
    pub fn index_write(&self, n: u64) {
        self.index_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            heap_reads: self.heap_reads.load(Ordering::Relaxed),
            heap_writes: self.heap_writes.load(Ordering::Relaxed),
            index_reads: self.index_reads.load(Ordering::Relaxed),
            index_writes: self.index_writes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.heap_reads.store(0, Ordering::Relaxed);
        self.heap_writes.store(0, Ordering::Relaxed);
        self.index_reads.store(0, Ordering::Relaxed);
        self.index_writes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to express
/// "I/O performed between two snapshots".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Heap page reads.
    pub heap_reads: u64,
    /// Heap page writes.
    pub heap_writes: u64,
    /// Index node reads.
    pub index_reads: u64,
    /// Index node writes.
    pub index_writes: u64,
}

impl IoSnapshot {
    /// Total of all four counters.
    pub fn total(&self) -> u64 {
        self.heap_reads + self.heap_writes + self.index_reads + self.index_writes
    }

    /// Total reads (heap + index).
    pub fn reads(&self) -> u64 {
        self.heap_reads + self.index_reads
    }

    /// Total writes (heap + index).
    pub fn writes(&self) -> u64 {
        self.heap_writes + self.index_writes
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            heap_reads: self.heap_reads.saturating_sub(earlier.heap_reads),
            heap_writes: self.heap_writes.saturating_sub(earlier.heap_writes),
            index_reads: self.index_reads.saturating_sub(earlier.index_reads),
            index_writes: self.index_writes.saturating_sub(earlier.index_writes),
        }
    }
}

/// RAII helper measuring the I/O performed within a scope.
///
/// ```
/// use instn_storage::io::{IoScope, IoStats};
/// let stats = IoStats::new();
/// let scope = IoScope::begin(&stats);
/// stats.heap_read(3);
/// let delta = scope.end();
/// assert_eq!(delta.heap_reads, 3);
/// ```
pub struct IoScope {
    stats: Arc<IoStats>,
    start: IoSnapshot,
}

impl IoScope {
    /// Start measuring against `stats`.
    pub fn begin(stats: &Arc<IoStats>) -> Self {
        Self {
            stats: Arc::clone(stats),
            start: stats.snapshot(),
        }
    }

    /// Finish measuring and return the delta since [`IoScope::begin`].
    pub fn end(self) -> IoSnapshot {
        self.stats.snapshot().since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.heap_read(5);
        s.index_write(2);
        let a = s.snapshot();
        s.heap_read(1);
        s.heap_write(4);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.heap_reads, 1);
        assert_eq!(d.heap_writes, 4);
        assert_eq!(d.index_writes, 0);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.heap_read(10);
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
    }

    #[test]
    fn scope_measures_inner_io_only() {
        let s = IoStats::new();
        s.heap_read(100);
        let scope = IoScope::begin(&s);
        s.index_read(7);
        let d = scope.end();
        assert_eq!(d.index_reads, 7);
        assert_eq!(d.heap_reads, 0);
    }

    #[test]
    fn totals_partition() {
        let s = IoStats::new();
        s.heap_read(1);
        s.heap_write(2);
        s.index_read(3);
        s.index_write(4);
        let snap = s.snapshot();
        assert_eq!(snap.reads(), 4);
        assert_eq!(snap.writes(), 6);
        assert_eq!(snap.total(), 10);
    }
}
