//! Heap-backed tables with stable OIDs.
//!
//! Every tuple carries a system-assigned [`Oid`]. An OID → [`RecordId`]
//! B-Tree is maintained per table; it is the substrate behind the paper's
//! internal `diskTupleLoc()` function (§4.1.2): given a tuple identifier,
//! return its heap location so the Summary-BTree can store a *backward
//! pointer* straight to the data tuple.

use std::sync::Arc;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::error::StorageError;
use crate::heap::HeapFile;
use crate::io::IoStats;
use crate::page::RecordId;
use crate::tuple::{decode_tuple, encode_tuple, Schema, Tuple};
use crate::Result;

/// System-assigned, stable tuple identifier (PostgreSQL-style OID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl Oid {
    /// 8-byte big-endian key encoding (order-preserving).
    pub fn to_key(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decode from the key encoding.
    pub fn from_key(bytes: &[u8]) -> Option<Oid> {
        bytes.try_into().ok().map(|b| Oid(u64::from_be_bytes(b)))
    }
}

/// A user relation: schema + heap file + OID index.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapFile,
    oid_index: BTree<RecordId>,
    next_oid: u64,
    tuple_count: usize,
}

impl Table {
    /// Create an empty table charging I/O to `stats` directly (no caching).
    pub fn new(name: impl Into<String>, schema: Schema, stats: Arc<IoStats>) -> Self {
        Self::with_pool(name, schema, BufferPool::disabled(stats))
    }

    /// Create an empty table whose heap and OID index are cached by `pool`.
    pub fn with_pool(name: impl Into<String>, schema: Schema, pool: Arc<BufferPool>) -> Self {
        Self {
            name: name.into(),
            schema,
            heap: HeapFile::with_pool(Arc::clone(&pool)),
            oid_index: BTree::new_in(pool),
            next_oid: 1,
            tuple_count: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.tuple_count
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuple_count == 0
    }

    /// Heap pages allocated.
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Heap payload bytes (for storage-overhead experiments).
    pub fn used_bytes(&self) -> usize {
        self.heap.used_bytes()
    }

    /// Insert a tuple, assigning and returning a fresh OID.
    pub fn insert(&mut self, tuple: Tuple) -> Result<Oid> {
        self.schema.validate(&tuple)?;
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        let rid = self.heap.insert(&encode_tuple(&tuple))?;
        self.oid_index.insert(&oid.to_key(), rid);
        self.tuple_count += 1;
        Ok(oid)
    }

    /// Restore a tuple under an explicit OID (persistence replay). The OID
    /// counter advances past it so future inserts never collide.
    pub fn restore(&mut self, oid: Oid, tuple: Tuple) -> Result<()> {
        self.schema.validate(&tuple)?;
        if self.oid_index.get_first(&oid.to_key()).is_some() {
            return Err(StorageError::TableExists(format!(
                "{}: oid {} already present",
                self.name, oid.0
            )));
        }
        let rid = self.heap.insert(&encode_tuple(&tuple))?;
        self.oid_index.insert(&oid.to_key(), rid);
        self.next_oid = self.next_oid.max(oid.0 + 1);
        self.tuple_count += 1;
        Ok(())
    }

    /// `diskTupleLoc()`: heap location of the tuple with `oid`.
    pub fn disk_tuple_loc(&self, oid: Oid) -> Result<RecordId> {
        self.oid_index
            .get_first(&oid.to_key())
            .ok_or(StorageError::OidNotFound(oid.0))
    }

    /// Fetch a tuple by OID (index probe + heap read).
    pub fn get(&self, oid: Oid) -> Result<Tuple> {
        let rid = self.disk_tuple_loc(oid)?;
        decode_tuple(&self.heap.get(rid)?)
    }

    /// Fetch a tuple directly by heap location (what backward pointers do:
    /// no OID-index probe, one heap page read).
    pub fn get_at(&self, rid: RecordId) -> Result<Tuple> {
        decode_tuple(&self.heap.get(rid)?)
    }

    /// Update the tuple with `oid`, maintaining the OID index if the record
    /// relocates.
    pub fn update(&mut self, oid: Oid, tuple: Tuple) -> Result<()> {
        self.schema.validate(&tuple)?;
        let rid = self.disk_tuple_loc(oid)?;
        let new_rid = self.heap.update(rid, &encode_tuple(&tuple))?;
        if new_rid != rid {
            self.oid_index.update_value(&oid.to_key(), &rid, new_rid)?;
        }
        Ok(())
    }

    /// Delete the tuple with `oid`.
    pub fn delete(&mut self, oid: Oid) -> Result<()> {
        let rid = self.disk_tuple_loc(oid)?;
        self.heap.delete(rid)?;
        self.oid_index.delete(&oid.to_key(), &rid)?;
        self.tuple_count -= 1;
        Ok(())
    }

    /// Sequential scan over `(oid, tuple)` in OID order.
    ///
    /// Implemented as an index-ordered walk so OIDs are recoverable; charges
    /// heap reads per record page as a table scan would.
    pub fn scan(&self) -> impl Iterator<Item = (Oid, Tuple)> + '_ {
        self.oid_index.range(None, None).filter_map(|(k, rid)| {
            let oid = Oid::from_key(&k)?;
            let bytes = self.heap.get(rid).ok()?;
            decode_tuple(&bytes).ok().map(|t| (oid, t))
        })
    }

    /// All live OIDs in order.
    pub fn oids(&self) -> Vec<Oid> {
        self.oid_index
            .range(None, None)
            .filter_map(|(k, _)| Oid::from_key(&k))
            .collect()
    }

    /// Open a resumable scan over the table (same order and I/O charging as
    /// [`Table::scan`], but without borrowing the table between pulls — the
    /// shape pull-based executors need). The table must not be mutated
    /// while the cursor is live.
    pub fn scan_open(&self) -> ScanCursor {
        ScanCursor(self.oid_index.cursor(None, None))
    }

    /// Open a resumable scan over the *inclusive* OID range `[lo, hi]`
    /// (`None` = unbounded). Same order and I/O charging as
    /// [`Table::scan_open`]; this is the morsel-granular entry point the
    /// parallel executor uses — each worker walks one disjoint OID range.
    pub fn scan_open_range(&self, lo: Option<Oid>, hi: Option<Oid>) -> ScanCursor {
        let lo = lo.map(Oid::to_key);
        let hi = hi.map(Oid::to_key);
        ScanCursor(
            self.oid_index
                .cursor(lo.as_ref().map(|k| &k[..]), hi.as_ref().map(|k| &k[..])),
        )
    }

    /// Split the live OID space into at most `ceil(len / morsel_rows)`
    /// contiguous, disjoint, inclusive `[lo, hi]` ranges covering every
    /// tuple in OID order. Concatenating range scans over the returned
    /// ranges is equivalent to one full [`Table::scan`].
    pub fn morsel_ranges(&self, morsel_rows: usize) -> Vec<(Oid, Oid)> {
        let oids = self.oids();
        let step = morsel_rows.max(1);
        oids.chunks(step)
            .map(|c| (c[0], *c.last().expect("chunks are non-empty")))
            .collect()
    }

    /// Pull the next `(oid, tuple)` from a resumable scan.
    pub fn scan_next(&self, cur: &mut ScanCursor) -> Option<(Oid, Tuple)> {
        loop {
            let (k, rid) = self.oid_index.cursor_next(&mut cur.0)?;
            let Some(oid) = Oid::from_key(&k) else {
                continue;
            };
            let Ok(bytes) = self.heap.get(rid) else {
                continue;
            };
            if let Ok(t) = decode_tuple(&bytes) {
                return Some((oid, t));
            }
        }
    }
}

/// Resumable position of a [`Table::scan_open`] sequential scan.
#[derive(Debug, Clone)]
pub struct ScanCursor(crate::btree::Cursor);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{ColumnType, Value};

    fn birds_schema() -> Schema {
        Schema::of(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("family", ColumnType::Text),
        ])
    }

    fn bird(i: i64) -> Tuple {
        vec![
            Value::Int(i),
            Value::Text(format!("bird-{i}")),
            Value::Text(format!("family-{}", i % 5)),
        ]
    }

    #[test]
    fn insert_assigns_sequential_oids() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        let a = t.insert(bird(1)).unwrap();
        let b = t.insert(bird(2)).unwrap();
        assert_eq!(a, Oid(1));
        assert_eq!(b, Oid(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_by_oid_and_by_location() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        let oid = t.insert(bird(7)).unwrap();
        assert_eq!(t.get(oid).unwrap()[0], Value::Int(7));
        let rid = t.disk_tuple_loc(oid).unwrap();
        assert_eq!(t.get_at(rid).unwrap()[0], Value::Int(7));
    }

    #[test]
    fn backward_pointer_access_skips_index_io() {
        let stats = IoStats::new();
        let mut t = Table::new("birds", birds_schema(), Arc::clone(&stats));
        let oid = t.insert(bird(1)).unwrap();
        let rid = t.disk_tuple_loc(oid).unwrap();
        stats.reset();
        t.get_at(rid).unwrap();
        let direct = stats.snapshot();
        assert_eq!(direct.index_reads, 0);
        assert_eq!(direct.heap_reads, 1);
        stats.reset();
        t.get(oid).unwrap();
        let via_index = stats.snapshot();
        assert!(via_index.index_reads >= 1);
    }

    #[test]
    fn update_and_delete() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        let oid = t.insert(bird(1)).unwrap();
        let mut tup = t.get(oid).unwrap();
        tup[1] = Value::Text("renamed".into());
        t.update(oid, tup).unwrap();
        assert_eq!(t.get(oid).unwrap()[1], Value::Text("renamed".into()));
        t.delete(oid).unwrap();
        assert!(t.get(oid).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn update_survives_relocation() {
        let mut t = Table::new(
            "blobs",
            Schema::of(&[("body", ColumnType::Text)]),
            IoStats::new(),
        );
        let oid = t.insert(vec![Value::Text("s".into())]).unwrap();
        // Force the page nearly full so growth relocates.
        for _ in 0..2 {
            t.insert(vec![Value::Text("x".repeat(3900))]).unwrap();
        }
        t.update(oid, vec![Value::Text("y".repeat(5000))]).unwrap();
        assert_eq!(
            t.get(oid).unwrap()[0],
            Value::Text("y".repeat(5000)),
            "tuple readable after relocation"
        );
    }

    #[test]
    fn scan_in_oid_order() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        for i in 0..10 {
            t.insert(bird(i)).unwrap();
        }
        t.delete(Oid(5)).unwrap();
        let oids: Vec<u64> = t.scan().map(|(o, _)| o.0).collect();
        assert_eq!(oids, vec![1, 2, 3, 4, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn morsel_ranges_cover_scan_exactly() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        for i in 0..23 {
            t.insert(bird(i)).unwrap();
        }
        t.delete(Oid(4)).unwrap();
        t.delete(Oid(17)).unwrap();
        let full: Vec<(Oid, Tuple)> = t.scan().collect();
        for morsel_rows in [1, 3, 7, 100] {
            let ranges = t.morsel_ranges(morsel_rows);
            // Disjoint and ordered.
            assert!(ranges.windows(2).all(|w| w[0].1 < w[1].0));
            let mut rejoined = Vec::new();
            for (lo, hi) in &ranges {
                let mut cur = t.scan_open_range(Some(*lo), Some(*hi));
                while let Some(pair) = t.scan_next(&mut cur) {
                    rejoined.push(pair);
                }
            }
            assert_eq!(rejoined, full, "morsel_rows={morsel_rows}");
        }
        assert!(t.morsel_ranges(4).len() >= 21 / 4);
    }

    #[test]
    fn range_scan_bounds_are_inclusive() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        for i in 0..10 {
            t.insert(bird(i)).unwrap();
        }
        let mut cur = t.scan_open_range(Some(Oid(3)), Some(Oid(6)));
        let mut got = Vec::new();
        while let Some((oid, _)) = t.scan_next(&mut cur) {
            got.push(oid.0);
        }
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn schema_is_enforced() {
        let mut t = Table::new("birds", birds_schema(), IoStats::new());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Text("x".into()), Value::Int(1), Value::Int(2)])
            .is_err());
    }
}
