//! Values, tuples, schemas, and their byte encoding.
//!
//! Tuples are stored in heap files as length-prefixed byte records; the
//! encoding is deliberately simple (tag byte + little-endian payloads) so
//! page counts reflect realistic record sizes.

use std::cmp::Ordering;
use std::fmt;

use crate::error::StorageError;
use crate::Result;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// The type of this value, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// Integer view (Int or Bool), if applicable.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float view (Float or Int widened), if applicable.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text view, if applicable.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if applicable.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness for predicate evaluation (NULL is false).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL-style comparison: NULL compares less than everything, numeric
    /// types compare cross-type, text lexicographically.
    pub fn cmp_sql(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => format!("{a}").cmp(&format!("{b}")),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A data tuple: an ordered list of values.
pub type Tuple = Vec<Value>;

/// A named, typed column list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(String, ColumnType)>) -> Self {
        Self { columns }
    }

    /// Convenience constructor from string slices.
    pub fn of(cols: &[(&str, ColumnType)]) -> Self {
        Self::new(cols.iter().map(|(n, t)| ((*n).to_string(), *t)).collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The `(name, type)` pairs.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Name of column `i`.
    pub fn column_name(&self, i: usize) -> Option<&str> {
        self.columns.get(i).map(|(n, _)| n.as_str())
    }

    /// Type of column `i`.
    pub fn column_type(&self, i: usize) -> Option<ColumnType> {
        self.columns.get(i).map(|(_, t)| *t)
    }

    /// Check that `tuple` conforms to this schema (NULL fits anything).
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} columns, got {}",
                self.columns.len(),
                tuple.len()
            )));
        }
        for (i, v) in tuple.iter().enumerate() {
            if let Some(t) = v.column_type() {
                if t != self.columns[i].1 {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column {} ({}) expected {:?}, got {:?}",
                        i, self.columns[i].0, self.columns[i].1, t
                    )));
                }
            }
        }
        Ok(())
    }

    /// Projection of this schema onto the given column indexes.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema::new(cols.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Concatenation of two schemas (for joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }
}

/// Encode a tuple to bytes for heap storage.
pub fn encode_tuple(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * tuple.len());
    out.extend_from_slice(&(tuple.len() as u32).to_le_bytes());
    for v in tuple {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
        }
    }
    out
}

/// Decode a tuple previously produced by [`encode_tuple`].
pub fn decode_tuple(bytes: &[u8]) -> Result<Tuple> {
    let mut pos = 0usize;
    let n = read_u32(bytes, &mut pos)? as usize;
    let mut tuple = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *bytes
            .get(pos)
            .ok_or_else(|| StorageError::Corrupt("truncated tag".into()))?;
        pos += 1;
        let v = match tag {
            0 => Value::Null,
            1 => Value::Int(i64::from_le_bytes(read_array(bytes, &mut pos)?)),
            2 => Value::Float(f64::from_le_bytes(read_array(bytes, &mut pos)?)),
            3 => {
                let len = read_u32(bytes, &mut pos)? as usize;
                let end = pos + len;
                let s = bytes
                    .get(pos..end)
                    .ok_or_else(|| StorageError::Corrupt("truncated text".into()))?;
                pos = end;
                Value::Text(
                    String::from_utf8(s.to_vec())
                        .map_err(|e| StorageError::Corrupt(e.to_string()))?,
                )
            }
            4 => {
                let b = *bytes
                    .get(pos)
                    .ok_or_else(|| StorageError::Corrupt("truncated bool".into()))?;
                pos += 1;
                Value::Bool(b != 0)
            }
            t => return Err(StorageError::Corrupt(format!("unknown tag {t}"))),
        };
        tuple.push(v);
    }
    Ok(tuple)
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let arr: [u8; 4] = read_array(bytes, pos)?;
    Ok(u32::from_le_bytes(arr))
}

fn read_array<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let end = *pos + N;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| StorageError::Corrupt("truncated value".into()))?;
    *pos = end;
    let mut arr = [0u8; N];
    arr.copy_from_slice(slice);
    Ok(arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let t: Tuple = vec![
            Value::Int(-42),
            Value::Float(3.5),
            Value::Text("swan goose".into()),
            Value::Bool(true),
            Value::Null,
        ];
        let bytes = encode_tuple(&t);
        assert_eq!(decode_tuple(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t: Tuple = vec![];
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_tuple(&[1, 0, 0, 0, 9]).is_err());
        assert!(decode_tuple(&[]).is_err());
    }

    #[test]
    fn schema_validation() {
        let s = Schema::of(&[("id", ColumnType::Int), ("name", ColumnType::Text)]);
        assert!(s
            .validate(&vec![Value::Int(1), Value::Text("x".into())])
            .is_ok());
        assert!(s.validate(&vec![Value::Null, Value::Null]).is_ok());
        assert!(s.validate(&vec![Value::Int(1)]).is_err());
        assert!(s
            .validate(&vec![Value::Text("x".into()), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn schema_lookup_project_join() {
        let s = Schema::of(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("weight", ColumnType::Float),
        ]);
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        let p = s.project(&[2, 0]);
        assert_eq!(p.column_name(0), Some("weight"));
        assert_eq!(p.column_name(1), Some("id"));
        let j = s.join(&p);
        assert_eq!(j.arity(), 5);
    }

    #[test]
    fn sql_comparison_semantics() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.cmp_sql(&Value::Int(0)), Less);
        assert_eq!(Value::Int(2).cmp_sql(&Value::Float(2.0)), Equal);
        assert_eq!(Value::Int(3).cmp_sql(&Value::Float(2.5)), Greater);
        assert_eq!(
            Value::Text("a".into()).cmp_sql(&Value::Text("b".into())),
            Less
        );
        assert_eq!(Value::Bool(false).cmp_sql(&Value::Bool(true)), Less);
    }

    #[test]
    fn value_views() {
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Text("t".into()).as_text(), Some("t"));
        assert!(!Value::Null.is_truthy());
        assert!(Value::Bool(true).is_truthy());
    }
}
