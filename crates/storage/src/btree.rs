//! An order-B multi-map B-Tree over byte-string keys.
//!
//! This is the substrate for three of the paper's structures:
//!
//! * the standard B-Tree on the OID column of every user relation (behind
//!   `diskTupleLoc()`),
//! * the baseline indexing scheme's B-Tree on the derived
//!   `Label-Cnt` column of the normalized replica table, and
//! * the Summary-BTree itself, which per §4.1.1 "follows the same structure
//!   and operations of the standard B-Tree" and differs only in what its leaf
//!   values point at.
//!
//! Nodes live in an arena; every node visited during descent is charged as an
//! index read and every node modified as an index write, so the logarithmic
//! bounds of §4.1.3 are directly observable in [`crate::io::IoStats`].
//!
//! Duplicate keys are allowed (a classifier key such as `Disease:008` can be
//! shared by many tuples); deletion therefore takes a `(key, value)` pair.
//! Deletion is *lazy* — entries are removed from leaves without eager page
//! merging — matching PostgreSQL, whose B-Tree likewise defers page
//! reclamation to vacuum.

use std::sync::Arc;

use crate::buffer::{BufferPool, FileId, FileKind};
use crate::error::StorageError;
use crate::io::IoStats;
use crate::Result;

/// Default maximum entries per node ("B" in the paper's bounds).
pub const DEFAULT_ORDER: usize = 64;

type Key = Vec<u8>;

#[derive(Debug, Clone)]
enum Node<V> {
    Internal {
        /// `keys[i]` separates `children[i]` (keys < keys[i]) from
        /// `children[i+1]` (keys >= keys[i]).
        keys: Vec<Key>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<(Key, V)>,
        next: Option<usize>,
    },
}

/// Multi-map B-Tree with byte keys and cloneable values.
#[derive(Debug)]
pub struct BTree<V> {
    nodes: Vec<Node<V>>,
    root: usize,
    order: usize,
    len: usize,
    height: usize,
    pool: Arc<BufferPool>,
    file: FileId,
}

impl<V: Clone + PartialEq> BTree<V> {
    /// Create an empty tree with the default order, charging I/O to `stats`
    /// directly (no caching).
    pub fn new(stats: Arc<IoStats>) -> Self {
        Self::with_order(stats, DEFAULT_ORDER)
    }

    /// Create an empty tree with a specific node capacity, uncached.
    pub fn with_order(stats: Arc<IoStats>, order: usize) -> Self {
        Self::with_order_in(BufferPool::disabled(stats), order)
    }

    /// Create an empty tree with the default order whose node accesses are
    /// cached by `pool`.
    pub fn new_in(pool: Arc<BufferPool>) -> Self {
        Self::with_order_in(pool, DEFAULT_ORDER)
    }

    /// Create an empty tree with a specific node capacity, cached by `pool`.
    pub fn with_order_in(pool: Arc<BufferPool>, order: usize) -> Self {
        assert!(order >= 4, "B-Tree order must be at least 4");
        let file = pool.register_file(FileKind::Index);
        Self {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            len: 0,
            height: 1,
            pool,
            file,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (leaf level = 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of allocated nodes (live + superseded by splits).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        self.pool.stats()
    }

    /// The buffer pool this tree charges.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Approximate byte footprint of all live entries (for the storage
    /// overhead experiment of Figure 7).
    pub fn used_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Internal { keys, children } => {
                    keys.iter().map(|k| k.len() + 8).sum::<usize>() + children.len() * 8
                }
                Node::Leaf { entries, .. } => entries
                    .iter()
                    .map(|(k, _)| k.len() + std::mem::size_of::<V>() + 8)
                    .sum(),
            })
            .sum()
    }

    fn read_node(&self, idx: usize) -> &Node<V> {
        self.pool.read(self.file, idx as u64);
        &self.nodes[idx]
    }

    fn write_node(&mut self, idx: usize) -> &mut Node<V> {
        self.pool.write(self.file, idx as u64);
        &mut self.nodes[idx]
    }

    /// Insert a `(key, value)` entry. Duplicate keys are kept.
    pub fn insert(&mut self, key: &[u8], value: V) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.pool.alloc(self.file, (self.nodes.len() - 1) as u64);
            self.root = self.nodes.len() - 1;
            self.height += 1;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `(separator, new_right_node)` on split.
    fn insert_rec(&mut self, idx: usize, key: &[u8], value: V) -> Option<(Key, usize)> {
        // Charge the descent read; the write is charged where mutation happens.
        self.pool.read(self.file, idx as u64);
        match &self.nodes[idx] {
            Node::Internal { keys, .. } => {
                let child_pos = upper_bound_keys(keys, key);
                let child = match &self.nodes[idx] {
                    Node::Internal { children, .. } => children[child_pos],
                    Node::Leaf { .. } => unreachable!(),
                };
                let split = self.insert_rec(child, key, value)?;
                // Child split: install separator here. The node was fetched
                // during the descent above, so this is a bare (logical) write.
                self.pool.mutate(self.file, idx as u64);
                let (sep, right) = split;
                let order = self.order;
                let node = &mut self.nodes[idx];
                let Node::Internal { keys, children } = node else {
                    unreachable!()
                };
                keys.insert(child_pos, sep);
                children.insert(child_pos + 1, right);
                if keys.len() <= order {
                    return None;
                }
                // Split this internal node.
                let mid = keys.len() / 2;
                let up_key = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `up_key` moves up, not right.
                let right_children = children.split_off(mid + 1);
                let right_node = Node::Internal {
                    keys: right_keys,
                    children: right_children,
                };
                self.nodes.push(right_node);
                self.pool.alloc(self.file, (self.nodes.len() - 1) as u64);
                Some((up_key, self.nodes.len() - 1))
            }
            Node::Leaf { .. } => {
                self.pool.mutate(self.file, idx as u64);
                let order = self.order;
                let next_slot = self.nodes.len();
                let node = &mut self.nodes[idx];
                let Node::Leaf { entries, next } = node else {
                    unreachable!()
                };
                let pos = upper_bound_entries(entries, key);
                entries.insert(pos, (key.to_vec(), value));
                if entries.len() <= order {
                    return None;
                }
                // Split the leaf.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_node = Node::Leaf {
                    entries: right_entries,
                    next: *next,
                };
                *next = Some(next_slot);
                self.nodes.push(right_node);
                self.pool.alloc(self.file, next_slot as u64);
                Some((sep, next_slot))
            }
        }
    }

    /// Locate the leaf that may contain `key` and the position of the first
    /// entry `>= key` within it.
    fn seek(&self, key: &[u8]) -> (usize, usize) {
        let mut idx = self.root;
        loop {
            match self.read_node(idx) {
                Node::Internal { keys, children } => {
                    idx = children[lower_bound_keys(keys, key)];
                }
                Node::Leaf { entries, .. } => {
                    let pos = entries.partition_point(|(k, _)| k.as_slice() < key);
                    return (idx, pos);
                }
            }
        }
    }

    /// First value stored under `key`, if any.
    pub fn get_first(&self, key: &[u8]) -> Option<V> {
        self.range(Some(key), Some(key)).next().map(|(_, v)| v)
    }

    /// All values stored under exactly `key`.
    pub fn get_all(&self, key: &[u8]) -> Vec<V> {
        self.range(Some(key), Some(key)).map(|(_, v)| v).collect()
    }

    /// Inclusive range scan: all `(key, value)` with `lo <= key <= hi`,
    /// in key order. `None` bounds are unbounded, mirroring the paper's
    /// `classLabel:000` / `classLabel:999` sentinel probes.
    pub fn range<'a>(
        &'a self,
        lo: Option<&[u8]>,
        hi: Option<&'a [u8]>,
    ) -> impl Iterator<Item = (Key, V)> + 'a {
        let mut cur = self.cursor(lo, hi);
        std::iter::from_fn(move || self.cursor_next(&mut cur))
    }

    /// Open a resumable ascending cursor over `lo <= key <= hi`. The
    /// root-to-leaf descent is charged now; each leaf hop is charged as
    /// [`BTree::cursor_next`] crosses it, so an early-terminating consumer
    /// only pays for the leaves it actually visits. Positions are node
    /// indices: the tree must not be mutated while the cursor is live.
    pub fn cursor(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Cursor {
        let (leaf, pos) = match lo {
            Some(lo) => self.seek(lo),
            None => self.leftmost_leaf(),
        };
        Cursor {
            leaf: Some(leaf),
            pos,
            hi: hi.map(<[u8]>::to_vec),
        }
    }

    /// Advance an ascending cursor, returning the next entry in key order.
    pub fn cursor_next(&self, cur: &mut Cursor) -> Option<(Key, V)> {
        loop {
            let leaf = cur.leaf?;
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                unreachable!()
            };
            if cur.pos < entries.len() {
                let (k, v) = &entries[cur.pos];
                if let Some(hi) = &cur.hi {
                    if k > hi {
                        cur.leaf = None;
                        return None;
                    }
                }
                cur.pos += 1;
                return Some((k.clone(), v.clone()));
            }
            cur.leaf = *next;
            cur.pos = 0;
            if let Some(next_leaf) = cur.leaf {
                self.pool.read(self.file, next_leaf as u64);
            }
        }
    }

    /// Open a resumable *descending* cursor over `lo <= key <= hi`,
    /// yielding entries in reverse key order (duplicates come out in
    /// reverse insertion order). Leaves are singly linked forward, so the
    /// cursor keeps the root-to-leaf path and re-descends to reach each
    /// previous leaf — a hop costs a couple of node reads instead of one,
    /// the honest price of a B+Tree without back pointers. Like the
    /// ascending cursor, I/O is charged as the cursor advances.
    pub fn cursor_desc(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> CursorDesc {
        let mut stack = Vec::new();
        let mut idx = self.root;
        let (leaf, pos) = loop {
            match self.read_node(idx) {
                Node::Internal { keys, children } => {
                    let ci = match hi {
                        Some(h) => upper_bound_keys(keys, h),
                        None => children.len() - 1,
                    };
                    stack.push((idx, ci));
                    idx = children[ci];
                }
                Node::Leaf { entries, .. } => {
                    let pos = match hi {
                        Some(h) => entries.partition_point(|(k, _)| k.as_slice() <= h),
                        None => entries.len(),
                    };
                    break (idx, pos);
                }
            }
        };
        CursorDesc {
            stack,
            leaf: Some(leaf),
            pos,
            lo: lo.map(<[u8]>::to_vec),
        }
    }

    /// Advance a descending cursor, returning the next entry in reverse
    /// key order.
    pub fn cursor_desc_next(&self, cur: &mut CursorDesc) -> Option<(Key, V)> {
        loop {
            let leaf = cur.leaf?;
            let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
                unreachable!()
            };
            if cur.pos > 0 {
                let (k, v) = &entries[cur.pos - 1];
                if let Some(lo) = &cur.lo {
                    if k < lo {
                        cur.leaf = None;
                        return None;
                    }
                }
                cur.pos -= 1;
                return Some((k.clone(), v.clone()));
            }
            // Leaf exhausted: re-descend from the deepest ancestor that
            // still has children to the left.
            loop {
                match cur.stack.pop() {
                    None => {
                        cur.leaf = None;
                        return None;
                    }
                    Some((node, ci)) if ci > 0 => {
                        cur.stack.push((node, ci - 1));
                        let Node::Internal { children, .. } = self.read_node(node) else {
                            unreachable!()
                        };
                        let mut idx = children[ci - 1];
                        loop {
                            match self.read_node(idx) {
                                Node::Internal { children, .. } => {
                                    cur.stack.push((idx, children.len() - 1));
                                    idx = *children.last().expect("internal nodes have children");
                                }
                                Node::Leaf { entries, .. } => {
                                    cur.leaf = Some(idx);
                                    cur.pos = entries.len();
                                    break;
                                }
                            }
                        }
                        break;
                    }
                    Some(_) => {}
                }
            }
        }
    }

    fn leftmost_leaf(&self) -> (usize, usize) {
        let mut idx = self.root;
        loop {
            match self.read_node(idx) {
                Node::Internal { children, .. } => idx = children[0],
                Node::Leaf { .. } => return (idx, 0),
            }
        }
    }

    /// Delete one `(key, value)` entry. Errors if not present.
    pub fn delete(&mut self, key: &[u8], value: &V) -> Result<()> {
        let (mut leaf, mut pos) = self.seek(key);
        loop {
            let (found, advance) = {
                let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                    unreachable!()
                };
                if pos >= entries.len() {
                    (None, *next)
                } else if entries[pos].0.as_slice() != key {
                    return Err(StorageError::KeyNotFound);
                } else if &entries[pos].1 == value {
                    (Some(pos), None)
                } else {
                    pos += 1;
                    (None, Some(leaf)) // stay, pos advanced
                }
            };
            match (found, advance) {
                (Some(p), _) => {
                    let node = self.write_node(leaf);
                    let Node::Leaf { entries, .. } = node else {
                        unreachable!()
                    };
                    entries.remove(p);
                    self.len -= 1;
                    return Ok(());
                }
                (None, Some(next)) if next != leaf => {
                    leaf = next;
                    pos = 0;
                    self.pool.read(self.file, next as u64);
                }
                (None, Some(_same)) => { /* advanced within leaf; loop */ }
                (None, None) => return Err(StorageError::KeyNotFound),
            }
        }
    }

    /// Replace one `(key, old)` entry's value with `new` in place.
    pub fn update_value(&mut self, key: &[u8], old: &V, new: V) -> Result<()> {
        self.delete(key, old)?;
        self.insert(key, new);
        Ok(())
    }

    /// Build a tree from entries that are already sorted by key.
    ///
    /// This is the bulk-creation mode of Figure 8: leaves are packed
    /// sequentially and internal levels built bottom-up, far cheaper than
    /// repeated root-to-leaf insertion.
    pub fn bulk_load(stats: Arc<IoStats>, order: usize, sorted: Vec<(Key, V)>) -> Self {
        Self::bulk_load_in(BufferPool::disabled(stats), order, sorted)
    }

    /// [`BTree::bulk_load`] with node accesses cached by `pool`.
    pub fn bulk_load_in(pool: Arc<BufferPool>, order: usize, sorted: Vec<(Key, V)>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut tree = Self::with_order_in(pool, order);
        if sorted.is_empty() {
            return tree;
        }
        tree.len = sorted.len();
        tree.nodes.clear();
        let per_leaf = (order * 2) / 3; // ~66% fill, PostgreSQL-style
        let per_leaf = per_leaf.max(2);
        let mut level: Vec<(Key, usize)> = Vec::new(); // (first key, node idx)
        for chunk in sorted.chunks(per_leaf) {
            let idx = tree.nodes.len();
            tree.nodes.push(Node::Leaf {
                entries: chunk.to_vec(),
                next: None,
            });
            tree.pool.alloc(tree.file, idx as u64);
            level.push((chunk[0].0.clone(), idx));
        }
        // Link leaves.
        for w in 0..level.len().saturating_sub(1) {
            let next_idx = level[w + 1].1;
            if let Node::Leaf { next, .. } = &mut tree.nodes[level[w].1] {
                *next = Some(next_idx);
            }
        }
        tree.height = 1;
        // Build internal levels.
        while level.len() > 1 {
            let mut upper: Vec<(Key, usize)> = Vec::new();
            for chunk in level.chunks(per_leaf.max(2)) {
                let keys: Vec<Key> = chunk[1..].iter().map(|(k, _)| k.clone()).collect();
                let children: Vec<usize> = chunk.iter().map(|(_, i)| *i).collect();
                let idx = tree.nodes.len();
                tree.nodes.push(Node::Internal { keys, children });
                tree.pool.alloc(tree.file, idx as u64);
                upper.push((chunk[0].0.clone(), idx));
            }
            level = upper;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree
    }
}

/// Resumable ascending scan position (see [`BTree::cursor`]). Holds no
/// borrow of the tree, so a pull-based operator can keep one across calls
/// that also need mutable access to surrounding state.
#[derive(Debug, Clone)]
pub struct Cursor {
    leaf: Option<usize>,
    pos: usize,
    hi: Option<Vec<u8>>,
}

/// Resumable descending scan position (see [`BTree::cursor_desc`]).
#[derive(Debug, Clone)]
pub struct CursorDesc {
    /// Root-to-current path: `(internal node, child index descended into)`.
    stack: Vec<(usize, usize)>,
    leaf: Option<usize>,
    /// `entries[pos - 1]` is the next entry to return; 0 = leaf exhausted.
    pos: usize,
    lo: Option<Vec<u8>>,
}

/// Position of the first separator strictly greater than `key`
/// (descend into `children[result]` for inserts, keeping duplicates right).
fn upper_bound_keys(keys: &[Key], key: &[u8]) -> usize {
    keys.partition_point(|k| k.as_slice() <= key)
}

/// Child position for *seeking* the first occurrence of `key`: descend left
/// of equal separators, because duplicates of a separator key may live in the
/// left subtree (splits keep the first right-hand key as separator while
/// inserts route duplicates right).
fn lower_bound_keys(keys: &[Key], key: &[u8]) -> usize {
    keys.partition_point(|k| k.as_slice() < key)
}

fn upper_bound_entries<V>(entries: &[(Key, V)], key: &[u8]) -> usize {
    entries.partition_point(|(k, _)| k.as_slice() <= key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> BTree<u64> {
        BTree::with_order(IoStats::new(), 8)
    }

    #[test]
    fn desc_cursor_mirrors_range_with_duplicates() {
        let mut t = tree();
        for i in 0..300u64 {
            // Heavy duplication so reverse order within equal keys matters.
            t.insert(format!("k{:04}", i % 40).as_bytes(), i);
        }
        for (lo, hi) in [
            (None, None),
            (Some(b"k0005".as_slice()), Some(b"k0025".as_slice())),
            (Some(b"k0039".as_slice()), None),
            (None, Some(b"k0000".as_slice())),
            (Some(b"k0050".as_slice()), Some(b"k0060".as_slice())), // empty
        ] {
            let mut fwd: Vec<(Key, u64)> = t.range(lo, hi).collect();
            fwd.reverse();
            let mut cur = t.cursor_desc(lo, hi);
            let mut bwd = Vec::new();
            while let Some(e) = t.cursor_desc_next(&mut cur) {
                bwd.push(e);
            }
            assert_eq!(bwd, fwd, "bounds {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn desc_cursor_on_empty_tree_yields_nothing() {
        let t = tree();
        let mut cur = t.cursor_desc(None, None);
        assert!(t.cursor_desc_next(&mut cur).is_none());
        let mut cur = t.cursor_desc(Some(b"a"), Some(b"z"));
        assert!(t.cursor_desc_next(&mut cur).is_none());
    }

    #[test]
    fn cursor_charges_io_lazily() {
        let mut t = tree();
        for i in 0..500u64 {
            t.insert(format!("{i:06}").as_bytes(), i);
        }
        t.stats().reset();
        let mut cur = t.cursor(None, None);
        let after_open = t.stats().snapshot().index_reads;
        // Opening pays only the descent, not the whole leaf chain.
        assert!(after_open <= t.height() as u64 + 1);
        for _ in 0..10 {
            t.cursor_next(&mut cur);
        }
        let after_ten = t.stats().snapshot().index_reads;
        while t.cursor_next(&mut cur).is_some() {}
        let after_all = t.stats().snapshot().index_reads;
        assert!(
            after_ten < after_all,
            "draining the cursor keeps charging leaf hops ({after_ten} vs {after_all})"
        );
    }

    #[test]
    fn insert_and_point_lookup() {
        let mut t = tree();
        for i in 0..200u64 {
            t.insert(format!("k{i:04}").as_bytes(), i);
        }
        assert_eq!(t.len(), 200);
        for i in (0..200u64).step_by(17) {
            assert_eq!(t.get_first(format!("k{i:04}").as_bytes()), Some(i));
        }
        assert_eq!(t.get_first(b"missing"), None);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = tree();
        for i in 0..1000u64 {
            t.insert(format!("{i:06}").as_bytes(), i);
        }
        // order 8 -> height around log_4..8(1000/8): small.
        assert!(t.height() >= 3 && t.height() <= 7, "height {}", t.height());
    }

    #[test]
    fn duplicates_are_kept_and_individually_deletable() {
        let mut t = tree();
        t.insert(b"dup", 1);
        t.insert(b"dup", 2);
        t.insert(b"dup", 3);
        let mut all = t.get_all(b"dup");
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
        t.delete(b"dup", &2).unwrap();
        let mut all = t.get_all(b"dup");
        all.sort_unstable();
        assert_eq!(all, vec![1, 3]);
        assert!(t.delete(b"dup", &2).is_err());
    }

    #[test]
    fn many_duplicates_span_leaves() {
        let mut t = tree();
        for i in 0..100u64 {
            t.insert(b"same", i);
        }
        assert_eq!(t.get_all(b"same").len(), 100);
        t.delete(b"same", &99).unwrap();
        assert_eq!(t.get_all(b"same").len(), 99);
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut t = tree();
        for i in (0..100u64).rev() {
            t.insert(format!("{i:04}").as_bytes(), i);
        }
        let got: Vec<u64> = t
            .range(Some(b"0010"), Some(b"0019"))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, (10..=19).collect::<Vec<u64>>());
    }

    #[test]
    fn open_ended_ranges() {
        let mut t = tree();
        for i in 0..50u64 {
            t.insert(format!("{i:04}").as_bytes(), i);
        }
        assert_eq!(t.range(None, None).count(), 50);
        assert_eq!(t.range(Some(b"0045"), None).count(), 5);
        assert_eq!(t.range(None, Some(b"0004")).count(), 5);
    }

    #[test]
    fn update_value_moves_entry() {
        let mut t = tree();
        t.insert(b"k", 1);
        t.update_value(b"k", &1, 9).unwrap();
        assert_eq!(t.get_all(b"k"), vec![9]);
    }

    #[test]
    fn delete_missing_key_errors() {
        let mut t = tree();
        t.insert(b"a", 1);
        assert!(matches!(t.delete(b"b", &1), Err(StorageError::KeyNotFound)));
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let sorted: Vec<(Vec<u8>, u64)> = (0..500u64)
            .map(|i| (format!("{i:05}").into_bytes(), i))
            .collect();
        let bulk = BTree::bulk_load(IoStats::new(), 8, sorted.clone());
        assert_eq!(bulk.len(), 500);
        for (k, v) in &sorted {
            assert_eq!(bulk.get_first(k), Some(*v), "key {:?}", k);
        }
        let all: Vec<u64> = bulk.range(None, None).map(|(_, v)| v).collect();
        assert_eq!(all, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn bulk_load_empty() {
        let t: BTree<u64> = BTree::bulk_load(IoStats::new(), 8, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.range(None, None).count(), 0);
    }

    #[test]
    fn point_lookup_io_is_logarithmic() {
        let stats = IoStats::new();
        let mut t = BTree::with_order(Arc::clone(&stats), 64);
        for i in 0..100_000u64 {
            t.insert(format!("{i:08}").as_bytes(), i);
        }
        stats.reset();
        let _ = t.get_first(b"00050000");
        let reads = stats.snapshot().index_reads;
        // height is ~3 for 100k entries at order 64.
        assert!(reads <= (t.height() as u64) + 2, "reads={reads}");
    }

    #[test]
    fn pooled_repeat_lookup_hits_cached_path() {
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 256);
        let mut t = BTree::with_order_in(Arc::clone(&pool), 64);
        for i in 0..10_000u64 {
            t.insert(format!("{i:08}").as_bytes(), i);
        }
        // Cold: clear residency, then probe twice.
        pool.set_capacity(0);
        pool.set_capacity(256);
        stats.reset();
        let _ = t.get_first(b"00005000");
        let cold = stats.snapshot();
        assert!(cold.index_reads >= t.height() as u64);
        stats.reset();
        let _ = t.get_first(b"00005000");
        let warm = stats.snapshot();
        assert_eq!(warm.index_reads, 0, "warm descent is all cache hits");
        assert_eq!(warm.logical_index_reads, cold.logical_index_reads);
        assert!(warm.cache_hits >= t.height() as u64);
    }

    #[test]
    fn pooled_and_uncached_trees_agree_on_logical_io() {
        let run = |cap: usize| {
            let stats = IoStats::new();
            let pool = BufferPool::new(Arc::clone(&stats), cap);
            let mut t = BTree::with_order_in(Arc::clone(&pool), 8);
            for i in 0..500u64 {
                t.insert(format!("{i:04}").as_bytes(), i);
            }
            let _ = t.range(Some(b"0100"), Some(b"0200")).count();
            t.delete(b"0042", &42).unwrap();
            stats.snapshot()
        };
        let uncached = run(0);
        let pooled = run(1 << 20);
        // Same logical work regardless of caching.
        assert_eq!(uncached.logical_index_reads, pooled.logical_index_reads);
        assert_eq!(uncached.logical_index_writes, pooled.logical_index_writes);
        // Uncached physical counters equal the logical stream by definition.
        assert_eq!(uncached.index_reads, uncached.logical_index_reads);
        assert_eq!(uncached.index_writes, uncached.logical_index_writes);
        // A big-enough pool never re-reads a node.
        assert!(pooled.index_reads < uncached.index_reads / 10);
    }

    #[test]
    fn insert_after_bulk_load() {
        let sorted: Vec<(Vec<u8>, u64)> = (0..100u64)
            .map(|i| (format!("{:03}", i * 2).into_bytes(), i * 2))
            .collect();
        let mut t = BTree::bulk_load(IoStats::new(), 8, sorted);
        t.insert(b"101", 101);
        let vals: Vec<u64> = t
            .range(Some(b"100"), Some(b"102"))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(vals, vec![100, 101, 102]);
    }
}
