//! Error type shared by all storage-layer modules.

use std::fmt;

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record was larger than a page can hold.
    RecordTooLarge { size: usize, max: usize },
    /// A page id referenced a page that does not exist (or was freed).
    PageNotFound(u32),
    /// A record id referenced a slot that does not exist or was deleted.
    RecordNotFound { page: u32, slot: u16 },
    /// A table name or id was not present in the catalog.
    TableNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A tuple did not match the schema it was inserted under.
    SchemaMismatch(String),
    /// An OID lookup failed.
    OidNotFound(u64),
    /// Tuple bytes could not be decoded.
    Corrupt(String),
    /// A B-Tree delete did not find the (key, value) pair.
    KeyNotFound,
    /// The simulated process was killed by the fault injector; every durable
    /// write from this point on is dropped (see [`crate::wal::FaultInjector`]).
    Crashed,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record not found at page {page} slot {slot}")
            }
            StorageError::TableNotFound(n) => write!(f, "table not found: {n}"),
            StorageError::TableExists(n) => write!(f, "table already exists: {n}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::OidNotFound(o) => write!(f, "oid {o} not found"),
            StorageError::Corrupt(m) => write!(f, "corrupt record: {m}"),
            StorageError::KeyNotFound => write!(f, "key/value pair not found in index"),
            StorageError::Crashed => write!(f, "simulated crash: durable write dropped"),
        }
    }
}

impl std::error::Error for StorageError {}
