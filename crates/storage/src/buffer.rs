//! Buffer-pool manager.
//!
//! A [`BufferPool`] is a fixed-capacity page cache shared by every heap file
//! and B-Tree of a database. Pages in this engine live in per-file arenas
//! (`Vec<Page>` / `Vec<Node>`), so the pool does not own page bytes; it is the
//! *residency directory*: which `(file, page)` frames are currently in
//! memory, which are dirty, which are pinned, and in which order the CLOCK
//! hand will reclaim them. All I/O accounting flows through the pool, which
//! is what lets one component decide, per access, whether the engine pays a
//! physical transfer or a cache hit.
//!
//! # Charging rules
//!
//! Every access charges a *logical* counter for its file kind. What happens
//! to the *physical* counters depends on pool state:
//!
//! | access                 | capacity 0 (disabled) | miss                    | hit        |
//! |------------------------|-----------------------|-------------------------|------------|
//! | [`BufferPool::read`]   | phys read             | phys read, admit clean  | —          |
//! | [`BufferPool::write`]  | phys read + write     | phys read, admit dirty  | mark dirty |
//! | [`BufferPool::mutate`] | phys write            | phys read, admit dirty  | mark dirty |
//! | [`BufferPool::alloc`]  | phys write            | admit dirty (no read)   | n/a        |
//!
//! Evicting a dirty frame charges one physical write of the victim's kind
//! (the write-back); clean victims are dropped for free. With capacity 0 the
//! physical counters are bit-identical to the engine before the pool existed:
//! `read` ↔ the old `heap_read(1)`/`index_read(1)` charge, `write` ↔ the old
//! read-modify-write charge, `mutate`/`alloc` ↔ the old bare write charge.
//!
//! # Eviction
//!
//! CLOCK (second chance): frames sit in a circular list; a hit sets the
//! frame's reference bit; the hand clears reference bits as it sweeps and
//! evicts the first unreferenced, unpinned frame. Pinned frames are never
//! evicted — if every frame is pinned the pool temporarily over-allocates
//! rather than corrupt an in-progress multi-page operation, and shrinks back
//! on the next admission.
//!
//! # Write-ahead ordering
//!
//! When a [`crate::wal::Wal`] is attached ([`BufferPool::set_wal`]), every
//! frame dirtied remembers the log position of the operation that dirtied it
//! (`rec_lsn`), and every physical page write — dirty eviction,
//! [`BufferPool::flush_all`], or a capacity-0 immediate write — first forces
//! the log up to that position. No page effect can reach "disk" before the
//! log record describing it. Without a WAL attached, behaviour and counters
//! are bit-identical to the WAL-less pool.

use crate::io::IoStats;
use crate::wal::{Lsn, Wal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use instn_obs::{Counter, Gauge, MetricsRegistry};

/// Which counter family a registered file charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Heap pages (`heap_reads` / `heap_writes`).
    Heap,
    /// Index nodes (`index_reads` / `index_writes`).
    Index,
}

/// Handle for a file registered with [`BufferPool::register_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identity of one cached frame: a page within a registered file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameKey {
    /// Owning file.
    pub file: FileId,
    /// Page (heap page id or B-Tree node index) within that file.
    pub page: u64,
}

/// Record of one eviction, reported so callers (and property tests) can see
/// exactly which frames left the pool and whether they needed write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The frame that was evicted.
    pub key: FrameKey,
    /// Whether the frame was dirty (and therefore written back).
    pub dirty: bool,
}

/// Outcome of a single pool access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Access {
    /// Whether the access was satisfied from the pool. Always `false` with
    /// capacity 0 and for [`BufferPool::alloc`].
    pub hit: bool,
    /// Frames evicted to make room (empty on hits and while under capacity).
    pub evicted: Vec<Evicted>,
}

#[derive(Debug)]
struct Frame {
    key: FrameKey,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// Log position the write-back of this frame must force first (the
    /// latest operation that dirtied it). `None` when clean or WAL-less.
    rec_lsn: Option<Lsn>,
}

#[derive(Debug, Default)]
struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<FrameKey, usize>,
    hand: usize,
    kinds: Vec<FileKind>,
    /// Log forced ahead of every physical page write when attached.
    wal: Option<Arc<Wal>>,
}

/// Observability handles resolved once from a [`MetricsRegistry`]
/// (`BufferPool::attach_metrics`). Recording is striped-atomic and
/// no-ops while the registry is disabled; the counters shadow the
/// `IoStats` cache fields so a live `\metrics` dump sees them without
/// snapshotting I/O stripes.
#[derive(Debug)]
struct PoolObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    resident: Gauge,
}

/// Shared, thread-safe buffer-pool manager. See the module docs for the
/// charging rules.
#[derive(Debug)]
pub struct BufferPool {
    stats: Arc<IoStats>,
    capacity: AtomicUsize,
    state: Mutex<PoolState>,
    obs: OnceLock<PoolObs>,
}

impl BufferPool {
    /// Create a pool holding at most `capacity` frames. Capacity 0 disables
    /// caching entirely: every access is charged as a physical transfer and
    /// the pool keeps no state, which reproduces the uncached engine's
    /// counters exactly.
    pub fn new(stats: Arc<IoStats>, capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            stats,
            capacity: AtomicUsize::new(capacity),
            state: Mutex::new(PoolState::default()),
            obs: OnceLock::new(),
        })
    }

    /// Resolve metric handles from `registry` (idempotent; the first call
    /// wins). Until attached — and while the registry is disabled — every
    /// access records exactly what it did before this subsystem existed.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let _ = self.obs.set(PoolObs {
            hits: registry.counter("bufferpool_hits_total", "buffer-pool page hits"),
            misses: registry.counter("bufferpool_misses_total", "buffer-pool page misses"),
            evictions: registry
                .counter("bufferpool_evictions_total", "buffer-pool frame evictions"),
            resident: registry.gauge("bufferpool_resident_pages", "frames currently resident"),
        });
    }

    #[inline]
    fn note_hit(&self) {
        self.stats.cache_hit(1);
        if let Some(o) = self.obs.get() {
            o.hits.inc();
        }
    }

    #[inline]
    fn note_miss(&self) {
        self.stats.cache_miss(1);
        if let Some(o) = self.obs.get() {
            o.misses.inc();
        }
    }

    #[inline]
    fn note_resident(&self, frames: usize) {
        if let Some(o) = self.obs.get() {
            o.resident.set(frames as i64);
        }
    }

    /// Create a disabled (capacity 0) pool — the compatibility default.
    pub fn disabled(stats: Arc<IoStats>) -> Arc<Self> {
        Self::new(stats, 0)
    }

    /// The shared I/O counters this pool charges.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Current frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Resize the pool. Shrinking evicts (with write-back of dirty frames)
    /// until the resident set fits; growing takes effect immediately.
    /// Resizing to 0 flushes and drops every frame, returning the pool to
    /// the disabled, physically-accounted mode.
    pub fn set_capacity(&self, capacity: usize) {
        // Store under the state lock: accesses re-read capacity while
        // holding the same lock, so none can admit a frame into a pool
        // that a racing resize has already disabled.
        let mut st = self.state.lock().expect("buffer pool poisoned");
        self.capacity.store(capacity, Ordering::Relaxed);
        while st.frames.len() > capacity {
            match Self::clock_victim(&mut st) {
                Some(slot) => {
                    self.evict_slot(&mut st, slot);
                }
                None => break, // every remaining frame is pinned
            }
        }
    }

    /// Register a file (heap or index arena) and obtain its [`FileId`].
    pub fn register_file(&self, kind: FileKind) -> FileId {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        st.kinds.push(kind);
        FileId((st.kinds.len() - 1) as u32)
    }

    /// Attach a write-ahead log: from now on every physical page write is
    /// preceded by a log force up to the dirtying operation's position (and
    /// reported to the log's fault injector as a crash point).
    pub fn set_wal(&self, wal: Arc<Wal>) {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        st.wal = Some(wal);
    }

    /// Fetch a page for reading.
    pub fn read(&self, file: FileId, page: u64) -> Access {
        // Capacity is read *under* the state lock (here and in the other
        // access paths): a racing `set_capacity(0)` holds the same lock, so
        // no access can admit a frame into a pool it already disabled.
        let mut st = self.state.lock().expect("buffer pool poisoned");
        let cap = self.capacity.load(Ordering::Relaxed);
        self.stats_logical_read(&st, file);
        if cap == 0 {
            self.charge_physical_read(&st, file);
            return Access::default();
        }
        let key = FrameKey { file, page };
        if let Some(&slot) = st.map.get(&key) {
            st.frames[slot].referenced = true;
            self.note_hit();
            return Access {
                hit: true,
                evicted: Vec::new(),
            };
        }
        self.note_miss();
        self.charge_physical_read(&st, file);
        let evicted = self.admit(&mut st, cap, key, false);
        Access {
            hit: false,
            evicted,
        }
    }

    /// Fetch a page for modification (read-modify-write). This is the charge
    /// the pager's `write` and the B-Tree's `write_node` pay: a logical read
    /// plus a logical write.
    pub fn write(&self, file: FileId, page: u64) -> Access {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        let cap = self.capacity.load(Ordering::Relaxed);
        self.stats_logical_read(&st, file);
        self.stats_logical_write(&st, file);
        if cap == 0 {
            self.charge_physical_read(&st, file);
            self.charge_physical_write(&st, file, None);
            return Access::default();
        }
        let key = FrameKey { file, page };
        let rec_lsn = st.wal.as_ref().map(|w| w.current_lsn());
        if let Some(&slot) = st.map.get(&key) {
            let frame = &mut st.frames[slot];
            frame.referenced = true;
            frame.dirty = true;
            frame.rec_lsn = rec_lsn;
            self.note_hit();
            return Access {
                hit: true,
                evicted: Vec::new(),
            };
        }
        self.note_miss();
        self.charge_physical_read(&st, file);
        let evicted = self.admit(&mut st, cap, key, true);
        Access {
            hit: false,
            evicted,
        }
    }

    /// Modify a page already fetched earlier in the same operation (e.g. a
    /// B-Tree node mutated after the descent that read it). Charges a logical
    /// write only — no logical read — matching the uncached engine's bare
    /// write charge at these sites. If the frame was evicted since the fetch
    /// it is honestly re-read.
    pub fn mutate(&self, file: FileId, page: u64) -> Access {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        let cap = self.capacity.load(Ordering::Relaxed);
        self.stats_logical_write(&st, file);
        if cap == 0 {
            self.charge_physical_write(&st, file, None);
            return Access::default();
        }
        let key = FrameKey { file, page };
        let rec_lsn = st.wal.as_ref().map(|w| w.current_lsn());
        if let Some(&slot) = st.map.get(&key) {
            let frame = &mut st.frames[slot];
            frame.referenced = true;
            frame.dirty = true;
            frame.rec_lsn = rec_lsn;
            self.note_hit();
            return Access {
                hit: true,
                evicted: Vec::new(),
            };
        }
        self.note_miss();
        self.charge_physical_read(&st, file);
        let evicted = self.admit(&mut st, cap, key, true);
        Access {
            hit: false,
            evicted,
        }
    }

    /// Record creation of a brand-new page (heap allocation, B-Tree node
    /// split, bulk-load node). The page is born dirty in the pool; there is
    /// nothing on disk to read, so no read is ever charged and the access
    /// counts neither as a hit nor a miss.
    pub fn alloc(&self, file: FileId, page: u64) -> Access {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        let cap = self.capacity.load(Ordering::Relaxed);
        self.stats_logical_write(&st, file);
        if cap == 0 {
            self.charge_physical_write(&st, file, None);
            return Access::default();
        }
        let key = FrameKey { file, page };
        let rec_lsn = st.wal.as_ref().map(|w| w.current_lsn());
        if let Some(&slot) = st.map.get(&key) {
            // Re-allocation of a resident page id (possible after a clear):
            // just dirty it.
            let frame = &mut st.frames[slot];
            frame.referenced = true;
            frame.dirty = true;
            frame.rec_lsn = rec_lsn;
            return Access {
                hit: true,
                evicted: Vec::new(),
            };
        }
        let evicted = self.admit(&mut st, cap, key, true);
        Access {
            hit: false,
            evicted,
        }
    }

    /// Pin a resident frame so eviction skips it. Returns `false` (no-op) if
    /// the frame is not resident — with capacity 0 nothing is ever resident,
    /// so pinning is free there. Pins nest; match each with [`Self::unpin`].
    pub fn pin(&self, file: FileId, page: u64) -> bool {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        if self.capacity.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let key = FrameKey { file, page };
        match st.map.get(&key).copied() {
            Some(slot) => {
                st.frames[slot].pins += 1;
                true
            }
            None => false,
        }
    }

    /// Release one pin taken by [`Self::pin`]. Harmless if the frame is not
    /// resident or not pinned.
    pub fn unpin(&self, file: FileId, page: u64) {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        let key = FrameKey { file, page };
        if let Some(slot) = st.map.get(&key).copied() {
            let frame = &mut st.frames[slot];
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Write back every dirty frame (charging one physical write each,
    /// preceded by a log force up to its `rec_lsn` when a WAL is attached)
    /// and clear its dirty bit. Frames stay resident. Returns the keys
    /// written.
    pub fn flush_all(&self) -> Vec<FrameKey> {
        let mut st = self.state.lock().expect("buffer pool poisoned");
        let mut dirty = Vec::new();
        for frame in &mut st.frames {
            if frame.dirty {
                frame.dirty = false;
                dirty.push((frame.key, frame.rec_lsn.take()));
            }
        }
        let mut written = Vec::with_capacity(dirty.len());
        for (key, rec_lsn) in dirty {
            self.charge_physical_write(&st, key.file, rec_lsn);
            written.push(key);
        }
        written
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.state
            .lock()
            .expect("buffer pool poisoned")
            .frames
            .len()
    }

    /// Whether `(file, page)` is currently resident.
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        let st = self.state.lock().expect("buffer pool poisoned");
        st.map.contains_key(&FrameKey { file, page })
    }

    /// Whether `(file, page)` is resident with at least one pin.
    pub fn is_pinned(&self, file: FileId, page: u64) -> bool {
        let st = self.state.lock().expect("buffer pool poisoned");
        st.map
            .get(&FrameKey { file, page })
            .is_some_and(|&slot| st.frames[slot].pins > 0)
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Admit `key` (must not be resident), evicting as needed. Returns the
    /// eviction records.
    fn admit(&self, st: &mut PoolState, cap: usize, key: FrameKey, dirty: bool) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        while st.frames.len() >= cap {
            match Self::clock_victim(st) {
                Some(slot) => evicted.push(self.evict_slot(st, slot)),
                None => break, // all pinned: over-allocate rather than fail
            }
        }
        let rec_lsn = if dirty {
            st.wal.as_ref().map(|w| w.current_lsn())
        } else {
            None
        };
        let slot = st.frames.len();
        st.frames.push(Frame {
            key,
            dirty,
            pins: 0,
            referenced: true,
            rec_lsn,
        });
        st.map.insert(key, slot);
        self.note_resident(st.frames.len());
        evicted
    }

    /// One CLOCK sweep: clear reference bits until an unpinned, unreferenced
    /// frame comes under the hand. `None` if every frame is pinned.
    fn clock_victim(st: &mut PoolState) -> Option<usize> {
        let n = st.frames.len();
        if n == 0 {
            return None;
        }
        // Two full sweeps suffice: the first clears reference bits, the
        // second must find a victim unless everything is pinned.
        for _ in 0..2 * n {
            let slot = st.hand;
            st.hand = (st.hand + 1) % n;
            let frame = &mut st.frames[slot];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Some(slot);
        }
        None
    }

    /// Remove the frame at `slot`, writing it back if dirty, and keep the
    /// slot map and clock hand consistent.
    fn evict_slot(&self, st: &mut PoolState, slot: usize) -> Evicted {
        let frame = st.frames.remove(slot);
        st.map.remove(&frame.key);
        for i in slot..st.frames.len() {
            let moved = st.frames[i].key;
            st.map.insert(moved, i);
        }
        if st.hand > slot {
            st.hand -= 1;
        }
        if st.hand >= st.frames.len() {
            st.hand = 0;
        }
        if frame.dirty {
            self.charge_physical_write(st, frame.key.file, frame.rec_lsn);
        }
        self.stats.cache_eviction(1);
        if let Some(o) = self.obs.get() {
            o.evictions.inc();
        }
        self.note_resident(st.frames.len());
        Evicted {
            key: frame.key,
            dirty: frame.dirty,
        }
    }

    fn kind_of(st: &PoolState, file: FileId) -> FileKind {
        st.kinds[file.0 as usize]
    }

    fn stats_logical_read(&self, st: &PoolState, file: FileId) {
        match Self::kind_of(st, file) {
            FileKind::Heap => self.stats.logical_heap_read(1),
            FileKind::Index => self.stats.logical_index_read(1),
        }
    }

    fn stats_logical_write(&self, st: &PoolState, file: FileId) {
        match Self::kind_of(st, file) {
            FileKind::Heap => self.stats.logical_heap_write(1),
            FileKind::Index => self.stats.logical_index_write(1),
        }
    }

    fn charge_physical_read(&self, st: &PoolState, file: FileId) {
        match Self::kind_of(st, file) {
            FileKind::Heap => self.stats.heap_read(1),
            FileKind::Index => self.stats.index_read(1),
        }
    }

    /// Charge one physical page write, enforcing the WAL ordering invariant
    /// first: the log is forced up to the frame's `rec_lsn` (or the full
    /// appended tail for immediate capacity-0 writes), then the write itself
    /// is reported to the fault injector as a crash point. Force failures
    /// are swallowed here — a crashed injector latches, and the engine
    /// surfaces it at the next commit force.
    fn charge_physical_write(&self, st: &PoolState, file: FileId, rec_lsn: Option<Lsn>) {
        if let Some(wal) = &st.wal {
            let upto = rec_lsn.unwrap_or_else(|| wal.current_lsn());
            let _ = wal.force(upto);
            let _ = wal.page_write();
        }
        match Self::kind_of(st, file) {
            FileKind::Heap => self.stats.heap_write(1),
            FileKind::Index => self.stats.index_write(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> (Arc<BufferPool>, Arc<IoStats>, FileId, FileId) {
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), cap);
        let heap = pool.register_file(FileKind::Heap);
        let index = pool.register_file(FileKind::Index);
        (pool, stats, heap, index)
    }

    #[test]
    fn capacity_zero_charges_like_uncached_engine() {
        let (pool, stats, heap, index) = pool(0);
        pool.read(heap, 1); // heap_read(1)
        pool.write(heap, 1); // heap_read(1) + heap_write(1)
        pool.alloc(heap, 2); // heap_write(1)
        pool.read(index, 0); // index_read(1)
        pool.mutate(index, 0); // index_write(1)
        let s = stats.snapshot();
        assert_eq!(s.heap_reads, 2);
        assert_eq!(s.heap_writes, 2);
        assert_eq!(s.index_reads, 1);
        assert_eq!(s.index_writes, 1);
        // Logical mirrors the request stream; cache counters stay silent.
        assert_eq!(s.logical_heap_reads, 2);
        assert_eq!(s.logical_heap_writes, 2);
        assert_eq!(s.logical_index_reads, 1);
        assert_eq!(s.logical_index_writes, 1);
        assert_eq!(s.cache_hits + s.cache_misses + s.cache_evictions, 0);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn hits_suppress_physical_reads() {
        let (pool, stats, heap, _) = pool(4);
        assert!(!pool.read(heap, 1).hit);
        assert!(pool.read(heap, 1).hit);
        assert!(pool.read(heap, 1).hit);
        let s = stats.snapshot();
        assert_eq!(s.heap_reads, 1);
        assert_eq!(s.logical_heap_reads, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn clock_evicts_and_writes_back_dirty() {
        let (pool, stats, heap, _) = pool(2);
        pool.write(heap, 1); // miss: phys read, dirty
        pool.read(heap, 2); // miss: phys read, clean
                            // Third page: someone must go. Sweep clears both reference bits,
                            // then evicts page 1 (dirty → write-back).
        let access = pool.read(heap, 3);
        assert_eq!(access.evicted.len(), 1);
        let s = stats.snapshot();
        assert_eq!(s.cache_evictions, 1);
        if access.evicted[0].dirty {
            assert_eq!(s.heap_writes, 1); // deferred write paid at write-back
        }
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let (pool, _, heap, _) = pool(2);
        pool.read(heap, 1);
        assert!(pool.pin(heap, 1));
        pool.read(heap, 2);
        for p in 3..10 {
            pool.read(heap, p);
            assert!(pool.contains(heap, 1), "pinned page evicted at p={p}");
        }
        pool.unpin(heap, 1);
        for p in 10..20 {
            pool.read(heap, p);
        }
        assert!(!pool.contains(heap, 1), "unpinned page never evicted");
    }

    #[test]
    fn all_pinned_over_allocates_then_recovers() {
        let (pool, _, heap, _) = pool(2);
        pool.read(heap, 1);
        pool.read(heap, 2);
        pool.pin(heap, 1);
        pool.pin(heap, 2);
        pool.read(heap, 3); // nothing evictable: over-allocate
        assert_eq!(pool.resident(), 3);
        pool.unpin(heap, 1);
        pool.unpin(heap, 2);
        pool.read(heap, 4); // shrinks back under capacity
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn flush_all_writes_dirty_once() {
        let (pool, stats, heap, index) = pool(8);
        pool.write(heap, 1);
        pool.mutate(index, 0);
        pool.read(heap, 2);
        let before = stats.snapshot();
        let written = pool.flush_all();
        assert_eq!(written.len(), 2);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.heap_writes, 1);
        assert_eq!(delta.index_writes, 1);
        // Second flush is a no-op.
        assert!(pool.flush_all().is_empty());
        assert_eq!(pool.resident(), 3);
    }

    #[test]
    fn set_capacity_zero_flushes_and_disables() {
        let (pool, stats, heap, _) = pool(4);
        pool.write(heap, 1);
        pool.read(heap, 2);
        pool.set_capacity(0);
        assert_eq!(pool.resident(), 0);
        let s = stats.snapshot();
        assert_eq!(s.heap_writes, 1, "dirty page written back on disable");
        let before = stats.snapshot();
        pool.read(heap, 1);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.heap_reads, 1, "disabled pool charges physically");
        assert_eq!(delta.cache_misses, 0);
    }

    #[test]
    fn mutate_refetches_if_evicted() {
        let (pool, stats, heap, _) = pool(1);
        pool.read(heap, 1);
        pool.read(heap, 2); // evicts 1
        let before = stats.snapshot();
        pool.mutate(heap, 1); // not resident: honest re-read
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.heap_reads, 1);
        assert_eq!(delta.cache_misses, 1);
        assert_eq!(delta.logical_heap_writes, 1);
        assert_eq!(delta.logical_heap_reads, 0);
    }

    #[test]
    fn concurrent_resize_to_zero_never_leaves_residents() {
        // Regression: capacity used to be read before taking the state lock,
        // so an access racing `set_capacity(0)` could admit a frame into a
        // pool that was already disabled.
        use std::sync::atomic::AtomicBool;
        let (pool, _, heap, index) = pool(8);
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let pool = Arc::clone(&pool);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut p = w as u64;
                    while !stop.load(Ordering::Relaxed) {
                        pool.read(heap, p % 32);
                        pool.write(heap, (p + 1) % 32);
                        pool.mutate(index, p % 16);
                        p = p.wrapping_add(3);
                    }
                })
            })
            .collect();
        for round in 0..300 {
            pool.set_capacity(8);
            std::thread::yield_now();
            pool.set_capacity(0);
            assert_eq!(
                pool.resident(),
                0,
                "round {round}: disabled pool holds frames"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn dirty_eviction_forces_log_first() {
        use crate::wal::{Lsn, Wal, WalRecordKind};
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 2);
        let wal = Wal::new(Arc::clone(&stats));
        pool.set_wal(Arc::clone(&wal));
        let heap = pool.register_file(FileKind::Heap);
        let lsn = wal.append(WalRecordKind::Op, b"dirties page 1");
        pool.write(heap, 1); // dirty, rec_lsn = lsn
        assert_eq!(wal.flushed_lsn(), Lsn(0), "no write-back yet: log is lazy");
        pool.read(heap, 2);
        let access = pool.read(heap, 3); // evicts dirty page 1
        assert!(access.evicted.iter().any(|e| e.dirty));
        assert!(
            wal.flushed_lsn() >= lsn,
            "dirty write-back must force the log up to rec_lsn first"
        );
    }

    #[test]
    fn flush_all_forces_exactly_up_to_rec_lsn() {
        use crate::wal::{Wal, WalRecordKind};
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 8);
        let wal = Wal::new(Arc::clone(&stats));
        pool.set_wal(Arc::clone(&wal));
        let heap = pool.register_file(FileKind::Heap);
        let lsn = wal.append(WalRecordKind::Op, b"dirties page 1");
        pool.write(heap, 1);
        let later = wal.append(WalRecordKind::Op, b"unrelated later op");
        pool.flush_all();
        assert!(wal.flushed_lsn() >= lsn);
        assert!(
            wal.flushed_lsn() < later,
            "flush forces only what write-back ordering requires"
        );
    }

    #[test]
    fn capacity_zero_write_forces_whole_log() {
        use crate::wal::{Wal, WalRecordKind};
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 0);
        let wal = Wal::new(Arc::clone(&stats));
        pool.set_wal(Arc::clone(&wal));
        let heap = pool.register_file(FileKind::Heap);
        wal.append(WalRecordKind::Op, b"op");
        pool.write(heap, 1); // immediate physical write
        assert_eq!(
            wal.flushed_lsn(),
            wal.current_lsn(),
            "an immediate page write forces the full appended tail"
        );
    }

    #[test]
    fn alloc_is_writeonly_and_bypasses_hit_miss() {
        let (pool, stats, heap, _) = pool(4);
        pool.alloc(heap, 1);
        let s = stats.snapshot();
        assert_eq!(s.heap_reads, 0);
        assert_eq!(s.heap_writes, 0, "write deferred until eviction/flush");
        assert_eq!(s.logical_heap_writes, 1);
        assert_eq!(s.cache_hits + s.cache_misses, 0);
        assert!(pool.contains(heap, 1));
        pool.flush_all();
        assert_eq!(stats.snapshot().heap_writes, 1);
    }
}
