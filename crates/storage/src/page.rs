//! Slotted pages.
//!
//! A [`Page`] stores variable-length records behind a slot directory, exactly
//! the layout textbooks (and PostgreSQL) use: records grow from the end of
//! the page toward the front, the slot array grows from the front toward the
//! end, and deleting a record leaves a dead slot so that [`RecordId`]s of the
//! surviving records remain stable.

use crate::error::StorageError;
use crate::Result;

/// Usable bytes per page. 8 KiB, matching PostgreSQL's default block size.
pub const PAGE_SIZE: usize = 8192;

/// Per-slot bookkeeping overhead used when estimating capacity.
const SLOT_OVERHEAD: usize = 8;

/// Identifier of a page within a single [`crate::pager::Pager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Physical location of a record: page + slot.
///
/// This is the Rust analogue of a PostgreSQL `ctid`, and is what the paper's
/// `diskTupleLoc()` returns: the Summary-BTree stores these as *backward
/// pointers* straight to the annotated data tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page containing the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Construct from raw parts.
    pub fn new(page: u32, slot: u16) -> Self {
        Self {
            page: PageId(page),
            slot,
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Live(Vec<u8>),
    Dead,
}

/// A slotted page holding variable-length records.
///
/// The implementation keeps records as owned byte vectors but enforces the
/// [`PAGE_SIZE`] byte budget (record bytes + slot overhead), so page counts —
/// and therefore the simulated I/O of every experiment — match what a real
/// on-disk layout would produce.
#[derive(Debug, Clone, Default)]
pub struct Page {
    slots: Vec<Slot>,
    used: usize,
    live: usize,
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently consumed (record payloads + slot overhead).
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes still available for a new record payload.
    pub fn free_bytes(&self) -> usize {
        PAGE_SIZE.saturating_sub(self.used + SLOT_OVERHEAD)
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> usize {
        self.live
    }

    /// Whether a record of `len` payload bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len + SLOT_OVERHEAD + self.used <= PAGE_SIZE
    }

    /// Largest payload a single (empty) page can hold.
    pub fn max_record_len() -> usize {
        PAGE_SIZE - SLOT_OVERHEAD
    }

    /// Insert a record, returning its slot number.
    pub fn insert(&mut self, data: &[u8]) -> Result<u16> {
        if data.len() > Self::max_record_len() {
            return Err(StorageError::RecordTooLarge {
                size: data.len(),
                max: Self::max_record_len(),
            });
        }
        if !self.fits(data.len()) {
            return Err(StorageError::RecordTooLarge {
                size: data.len(),
                max: self.free_bytes(),
            });
        }
        self.used += data.len() + SLOT_OVERHEAD;
        self.live += 1;
        // Reuse a dead slot if available to keep the slot array compact.
        for (i, s) in self.slots.iter_mut().enumerate() {
            if matches!(s, Slot::Dead) {
                *s = Slot::Live(data.to_vec());
                // Dead slot directory entries were already paid for.
                self.used -= SLOT_OVERHEAD;
                return Ok(i as u16);
            }
        }
        self.slots.push(Slot::Live(data.to_vec()));
        Ok((self.slots.len() - 1) as u16)
    }

    /// Fetch the record in `slot`.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        match self.slots.get(slot as usize) {
            Some(Slot::Live(d)) => Some(d.as_slice()),
            _ => None,
        }
    }

    /// Delete the record in `slot`. Returns the payload length freed.
    pub fn delete(&mut self, slot: u16) -> Option<usize> {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Live(_)) => {
                let len = match s {
                    Slot::Live(d) => d.len(),
                    Slot::Dead => unreachable!(),
                };
                *s = Slot::Dead;
                // Slot directory entry stays (keeps other RecordIds stable);
                // only the payload bytes are reclaimed.
                self.used -= len;
                self.live -= 1;
                Some(len)
            }
            _ => None,
        }
    }

    /// Replace the record in `slot` in place, if the new payload fits.
    ///
    /// Returns `false` when it does not fit (caller must relocate).
    pub fn update(&mut self, slot: u16, data: &[u8]) -> Result<bool> {
        let old_len = match self.slots.get(slot as usize) {
            Some(Slot::Live(d)) => d.len(),
            _ => return Err(StorageError::RecordNotFound { page: 0, slot }),
        };
        let new_used = self.used - old_len + data.len();
        if new_used > PAGE_SIZE {
            return Ok(false);
        }
        self.slots[slot as usize] = Slot::Live(data.to_vec());
        self.used = new_used;
        Ok(true)
    }

    /// Iterate over `(slot, payload)` for live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Live(d) => Some((i as u16, d.as_slice())),
            Slot::Dead => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1), Some(&b"hello"[..]));
        assert_eq!(p.get(s2), Some(&b"world!"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_keeps_other_slots_stable() {
        let mut p = Page::new();
        let s1 = p.insert(b"a").unwrap();
        let s2 = p.insert(b"b").unwrap();
        assert_eq!(p.delete(s1), Some(1));
        assert_eq!(p.get(s1), None);
        assert_eq!(p.get(s2), Some(&b"b"[..]));
        assert_eq!(p.live_records(), 1);
    }

    #[test]
    fn dead_slot_is_reused() {
        let mut p = Page::new();
        let s1 = p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        p.delete(s1).unwrap();
        let s3 = p.insert(b"c").unwrap();
        assert_eq!(s3, s1);
        assert_eq!(p.get(s3), Some(&b"c"[..]));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut p = Page::new();
        let big = vec![0u8; Page::max_record_len()];
        p.insert(&big).unwrap();
        assert!(matches!(
            p.insert(b"x"),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        let big = vec![0u8; PAGE_SIZE + 1];
        assert!(p.insert(&big).is_err());
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert(b"short").unwrap();
        assert!(p.update(s, b"longer-payload").unwrap());
        assert_eq!(p.get(s), Some(&b"longer-payload"[..]));
        // Updating a missing slot errors.
        assert!(p.update(99, b"x").is_err());
    }

    #[test]
    fn update_that_overflows_reports_false() {
        let mut p = Page::new();
        let s = p.insert(b"tiny").unwrap();
        p.insert(&vec![1u8; 4000]).unwrap();
        p.insert(&vec![2u8; 4000]).unwrap();
        let huge = vec![3u8; 5000];
        assert!(!p.update(s, &huge).unwrap());
        // Original survives a failed update.
        assert_eq!(p.get(s), Some(&b"tiny"[..]));
    }

    #[test]
    fn iter_skips_dead() {
        let mut p = Page::new();
        let s1 = p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        p.delete(s1).unwrap();
        let got: Vec<_> = p.iter().map(|(_, d)| d.to_vec()).collect();
        assert_eq!(got, vec![b"b".to_vec()]);
    }
}
