//! Physical write-ahead log with deterministic fault injection.
//!
//! The simulated disk of this engine keeps page bytes in volatile arenas and
//! observes "I/O" through [`crate::io::IoStats`]; what survives a crash is
//! modelled explicitly: the last checkpoint snapshot plus the *durable prefix*
//! of this log. A [`Wal`] therefore maintains two buffers — `pending` bytes
//! appended but not yet forced, and `durable` bytes that have survived —
//! and moves bytes from one to the other only through [`Wal::force`], the
//! single point where a [`FaultInjector`] can kill the "process" (cleanly or
//! mid-write, leaving a torn tail).
//!
//! # Record format
//!
//! Every record is length-prefixed and checksummed:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [kind: u8] [payload: len bytes]
//! ```
//!
//! `len` counts the payload only; `crc` is CRC-32 (IEEE) over `kind ‖
//! payload`. [`Lsn`]s are byte offsets of record *ends*, so `force(lsn)`
//! makes everything up to and including that record durable. A log always
//! starts with a [`WalRecordKind::Checkpoint`] record binding it to the
//! snapshot it extends; [`Wal::scan`] validates records front to back and
//! stops at the first torn or corrupt frame, which is how recovery discards
//! an unfinished tail.
//!
//! # Ordering invariant
//!
//! The buffer pool forces the log up to a dirty frame's `rec_lsn` before
//! writing the frame back (eviction or [`crate::buffer::BufferPool::flush_all`]),
//! so no page effect can "reach disk" before the log record describing it —
//! the classic WAL rule, enforced in one place and unit-tested directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::StorageError;
use crate::io::IoStats;
use crate::Result;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Table-free bitwise variant:
/// the log and snapshot records this guards are small enough that the ~8
/// shifts per byte never show up in profiles, and it keeps the crate free of
/// lookup-table noise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Log sequence number: the byte offset just past a record. Monotone within
/// one log generation (reset at every checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Lsn(pub u64);

/// Kinds of log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordKind {
    /// A logical redo operation (payload encoded by the engine layer).
    Op,
    /// Commit marker: every op record before it (since the previous commit
    /// or abort) is atomic with it. Ops without a following durable commit
    /// are discarded at recovery.
    Commit,
    /// Log head: binds this log generation to a checkpoint snapshot
    /// (payload: snapshot length + CRC-32).
    Checkpoint,
    /// Abort marker: the ops since the previous commit/abort failed to
    /// apply and must not be grouped into a later commit during replay.
    Abort,
}

impl WalRecordKind {
    fn tag(self) -> u8 {
        match self {
            WalRecordKind::Op => 1,
            WalRecordKind::Commit => 2,
            WalRecordKind::Checkpoint => 3,
            WalRecordKind::Abort => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => WalRecordKind::Op,
            2 => WalRecordKind::Commit,
            3 => WalRecordKind::Checkpoint,
            4 => WalRecordKind::Abort,
            _ => return None,
        })
    }
}

/// Fixed bytes in front of every record payload (`len` + `crc` + `kind`).
pub const WAL_RECORD_HEADER: usize = 4 + 4 + 1;

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultState {
    /// Durable-write events observed so far (log forces + page writes).
    events: u64,
    /// Crash when `events` reaches this value (1-based), if armed.
    crash_at: Option<u64>,
    /// Whether the crashing write lands half its bytes (torn) or none.
    torn: bool,
    /// Latched after the crash fires: all later durable writes are dropped.
    crashed: bool,
}

/// What the injector let a durable write do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteOutcome {
    Full,
    Torn,
    Dropped,
}

/// Deterministic crash scheduler for the durability sweep.
///
/// Every durable-write event — each [`Wal::force`] that moves bytes and each
/// physical page write the buffer pool reports via [`Wal::page_write`] —
/// increments a counter. Arming the injector at event `n` makes the `n`-th
/// event fail: the process is considered dead from that instant, so the
/// event's effect is suppressed (or, for the torn variant, half the forced
/// bytes land) and every later durable write is silently dropped. Running
/// the same workload with the injector unarmed first tells the sweep how
/// many events exist, so it can crash at every single one.
#[derive(Debug, Default)]
pub struct FaultInjector {
    state: Mutex<FaultState>,
}

impl FaultInjector {
    /// A fresh injector that never fires until [`FaultInjector::arm`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Crash at the `crash_at_event`-th durable-write event from now
    /// (1-based, counted from construction). `torn` makes the fatal log
    /// force land half its bytes instead of none.
    pub fn arm(&self, crash_at_event: u64, torn: bool) {
        let mut st = self.state.lock().expect("fault injector poisoned");
        st.crash_at = Some(crash_at_event);
        st.torn = torn;
    }

    /// Durable-write events observed so far.
    pub fn events(&self) -> u64 {
        self.state.lock().expect("fault injector poisoned").events
    }

    /// Whether the simulated process has crashed.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault injector poisoned").crashed
    }

    fn on_write(&self) -> WriteOutcome {
        let mut st = self.state.lock().expect("fault injector poisoned");
        if st.crashed {
            return WriteOutcome::Dropped;
        }
        st.events += 1;
        if st.crash_at.is_some_and(|at| st.events >= at) {
            st.crashed = true;
            if st.torn {
                return WriteOutcome::Torn;
            }
            return WriteOutcome::Dropped;
        }
        WriteOutcome::Full
    }
}

// ---------------------------------------------------------------------
// The log.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct WalState {
    /// Appended but not yet forced; starts at byte offset `flushed`.
    pending: Vec<u8>,
    /// Bytes that survived forcing (plus, after a torn crash, a ragged tail).
    durable: Vec<u8>,
    /// Lsn up to which the log is cleanly durable.
    flushed: u64,
}

/// Observability handles (`Wal::attach_metrics`): append/force latency
/// histograms plus an append/bytes counter pair mirroring the `IoStats`
/// fields for live export.
#[derive(Debug)]
struct WalObs {
    append_ns: instn_obs::Histogram,
    fsync_ns: instn_obs::Histogram,
    appends: instn_obs::Counter,
    forces: instn_obs::Counter,
    bytes: instn_obs::Counter,
}

/// The physical write-ahead log. See the module docs for format and model.
#[derive(Debug)]
pub struct Wal {
    stats: Arc<IoStats>,
    fault: Option<Arc<FaultInjector>>,
    state: Mutex<WalState>,
    /// End offset of the last appended record (`flushed + pending.len()`),
    /// mirrored atomically so the buffer pool can stamp `rec_lsn` without
    /// taking the log lock.
    appended: AtomicU64,
    obs: std::sync::OnceLock<WalObs>,
}

impl Wal {
    /// An empty log with no fault injection.
    pub fn new(stats: Arc<IoStats>) -> Arc<Self> {
        Arc::new(Self {
            stats,
            fault: None,
            state: Mutex::new(WalState::default()),
            appended: AtomicU64::new(0),
            obs: std::sync::OnceLock::new(),
        })
    }

    /// An empty log whose durable writes go through `fault`.
    pub fn with_faults(stats: Arc<IoStats>, fault: Arc<FaultInjector>) -> Arc<Self> {
        Arc::new(Self {
            stats,
            fault: Some(fault),
            state: Mutex::new(WalState::default()),
            appended: AtomicU64::new(0),
            obs: std::sync::OnceLock::new(),
        })
    }

    /// Resolve metric handles from `registry` (idempotent). Appends and
    /// forces then record latency histograms (`wal_append_ns`,
    /// `wal_fsync_ns`) and counters; the timing pair is skipped entirely
    /// while the registry is disabled.
    pub fn attach_metrics(&self, registry: &instn_obs::MetricsRegistry) {
        let _ = self.obs.set(WalObs {
            append_ns: registry.histogram("wal_append_ns", "WAL append latency (ns)"),
            fsync_ns: registry.histogram("wal_fsync_ns", "WAL force/fsync latency (ns)"),
            appends: registry.counter("wal_appends_total", "WAL records appended"),
            forces: registry.counter("wal_forces_total", "WAL forces"),
            bytes: registry.counter("wal_bytes_total", "WAL bytes made durable"),
        });
    }

    /// The fault injector wired into this log, if any.
    pub fn fault(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Append a record to the in-memory tail. Nothing is durable until a
    /// [`Wal::force`] covers the returned [`Lsn`].
    pub fn append(&self, kind: WalRecordKind, payload: &[u8]) -> Lsn {
        let timer = self
            .obs
            .get()
            .filter(|o| o.append_ns.is_enabled())
            .map(|_| std::time::Instant::now());
        let mut st = self.state.lock().expect("wal poisoned");
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(kind.tag());
        body.extend_from_slice(payload);
        st.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        st.pending.extend_from_slice(&crc32(&body).to_le_bytes());
        st.pending.extend_from_slice(&body);
        let end = st.flushed + st.pending.len() as u64;
        self.appended.store(end, Ordering::Relaxed);
        self.stats.wal_append(1);
        if let Some(o) = self.obs.get() {
            o.appends.inc();
            if let Some(t) = timer {
                o.append_ns.record_duration(t.elapsed());
            }
        }
        Lsn(end)
    }

    /// Lsn just past the last appended record.
    pub fn current_lsn(&self) -> Lsn {
        Lsn(self.appended.load(Ordering::Relaxed))
    }

    /// Lsn up to which the log is cleanly durable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.state.lock().expect("wal poisoned").flushed)
    }

    /// Make the log durable up to (at least) `upto`. A no-op if already
    /// covered. Returns [`StorageError::Crashed`] when the fault injector
    /// kills the write — cleanly (no bytes land) or torn (half land).
    pub fn force(&self, upto: Lsn) -> Result<()> {
        let timer = self
            .obs
            .get()
            .filter(|o| o.fsync_ns.is_enabled())
            .map(|_| std::time::Instant::now());
        let mut st = self.state.lock().expect("wal poisoned");
        if st.flushed >= upto.0 {
            return Ok(());
        }
        let take = (upto.0 - st.flushed) as usize;
        debug_assert!(take <= st.pending.len(), "lsn beyond appended tail");
        let outcome = self
            .fault
            .as_ref()
            .map(|f| f.on_write())
            .unwrap_or(WriteOutcome::Full);
        let done = |bytes: u64| {
            if let Some(o) = self.obs.get() {
                o.forces.inc();
                o.bytes.add(bytes);
                if let Some(t) = timer {
                    o.fsync_ns.record_duration(t.elapsed());
                }
            }
        };
        match outcome {
            WriteOutcome::Full => {
                let moved: Vec<u8> = st.pending.drain(..take).collect();
                st.durable.extend_from_slice(&moved);
                st.flushed = upto.0;
                self.stats.wal_force(1);
                self.stats.wal_bytes(take as u64);
                done(take as u64);
                Ok(())
            }
            WriteOutcome::Torn => {
                let half = take / 2;
                let torn: Vec<u8> = st.pending[..half].to_vec();
                st.durable.extend_from_slice(&torn);
                // `flushed` does not advance: the force failed.
                self.stats.wal_force(1);
                self.stats.wal_bytes(half as u64);
                done(half as u64);
                Err(StorageError::Crashed)
            }
            WriteOutcome::Dropped => Err(StorageError::Crashed),
        }
    }

    /// Force everything appended so far.
    pub fn force_all(&self) -> Result<()> {
        self.force(self.current_lsn())
    }

    /// Report one physical page write to the fault injector (called by the
    /// buffer pool after the covering log force). The page bytes themselves
    /// live in volatile arenas — this is purely a crash point.
    pub fn page_write(&self) -> Result<()> {
        match self
            .fault
            .as_ref()
            .map(|f| f.on_write())
            .unwrap_or(WriteOutcome::Full)
        {
            WriteOutcome::Full => Ok(()),
            _ => Err(StorageError::Crashed),
        }
    }

    /// The bytes that would be found "on disk" after a crash right now.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.state.lock().expect("wal poisoned").durable.clone()
    }

    /// Bytes cleanly durable (excludes any torn tail).
    pub fn durable_len(&self) -> u64 {
        self.state.lock().expect("wal poisoned").flushed
    }

    /// Truncate the log for a fresh generation (checkpoint). The caller must
    /// have flushed every dirty page first — see `Database::checkpoint`.
    pub fn reset(&self) {
        let mut st = self.state.lock().expect("wal poisoned");
        st.pending.clear();
        st.durable.clear();
        st.flushed = 0;
        self.appended.store(0, Ordering::Relaxed);
    }

    /// Validate `bytes` front to back, returning every whole, checksummed
    /// record and how far the clean prefix reaches. Parsing stops at the
    /// first short or corrupt frame — a torn tail, by construction,
    /// invalidates only records past the last clean force.
    pub fn scan(bytes: &[u8]) -> WalScan {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= WAL_RECORD_HEADER {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_end = pos + 8 + 1 + len;
            let Some(body) = bytes.get(pos + 8..body_end) else {
                break; // torn: record extends past the durable bytes
            };
            if crc32(body) != crc {
                break; // bit rot or a torn frame that still parsed
            }
            let Some(kind) = WalRecordKind::from_tag(body[0]) else {
                break;
            };
            records.push((kind, body[1..].to_vec()));
            pos = body_end;
        }
        WalScan {
            records,
            valid_bytes: pos,
            trailing_bytes: bytes.len() - pos,
        }
    }
}

/// Result of [`Wal::scan`]: the clean record prefix of a recovered log.
#[derive(Debug)]
pub struct WalScan {
    /// Whole, checksum-valid records in order.
    pub records: Vec<(WalRecordKind, Vec<u8>)>,
    /// Bytes consumed by those records.
    pub valid_bytes: usize,
    /// Bytes past the clean prefix (torn tail or garbage), discarded.
    pub trailing_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_force_scan_roundtrip() {
        let wal = Wal::new(IoStats::new());
        wal.append(WalRecordKind::Checkpoint, b"head");
        wal.append(WalRecordKind::Op, b"op-1");
        let lsn = wal.append(WalRecordKind::Commit, b"");
        assert_eq!(wal.flushed_lsn(), Lsn(0));
        wal.force(lsn).unwrap();
        assert_eq!(wal.flushed_lsn(), lsn);
        let scan = Wal::scan(&wal.durable_bytes());
        assert_eq!(scan.trailing_bytes, 0);
        let kinds: Vec<WalRecordKind> = scan.records.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                WalRecordKind::Checkpoint,
                WalRecordKind::Op,
                WalRecordKind::Commit
            ]
        );
        assert_eq!(scan.records[1].1, b"op-1");
    }

    #[test]
    fn force_is_incremental_and_idempotent() {
        let stats = IoStats::new();
        let wal = Wal::new(Arc::clone(&stats));
        let a = wal.append(WalRecordKind::Op, b"a");
        wal.force(a).unwrap();
        wal.force(a).unwrap(); // no-op
        let b = wal.append(WalRecordKind::Op, b"b");
        wal.force(b).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.wal_forces, 2, "covered forces are free");
        assert_eq!(s.wal_appends, 2);
        assert_eq!(s.wal_bytes, wal.durable_len());
        assert_eq!(Wal::scan(&wal.durable_bytes()).records.len(), 2);
    }

    #[test]
    fn unforced_tail_is_not_durable() {
        let wal = Wal::new(IoStats::new());
        let a = wal.append(WalRecordKind::Op, b"forced");
        wal.append(WalRecordKind::Op, b"lost");
        wal.force(a).unwrap();
        let scan = Wal::scan(&wal.durable_bytes());
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].1, b"forced");
    }

    #[test]
    fn clean_crash_drops_the_whole_force() {
        let fault = FaultInjector::new();
        let wal = Wal::with_faults(IoStats::new(), Arc::clone(&fault));
        let a = wal.append(WalRecordKind::Op, b"one");
        wal.force(a).unwrap();
        fault.arm(fault.events() + 1, false);
        let b = wal.append(WalRecordKind::Op, b"two");
        assert_eq!(wal.force(b), Err(StorageError::Crashed));
        assert!(fault.crashed());
        // Later writes are dropped silently.
        let c = wal.append(WalRecordKind::Op, b"three");
        assert_eq!(wal.force(c), Err(StorageError::Crashed));
        let scan = Wal::scan(&wal.durable_bytes());
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.trailing_bytes, 0);
    }

    #[test]
    fn torn_crash_leaves_invalid_tail_that_scan_discards() {
        let fault = FaultInjector::new();
        let wal = Wal::with_faults(IoStats::new(), Arc::clone(&fault));
        let a = wal.append(WalRecordKind::Op, b"durable op");
        wal.force(a).unwrap();
        fault.arm(fault.events() + 1, true);
        let b = wal.append(WalRecordKind::Op, b"torn away mid-write");
        assert_eq!(wal.force(b), Err(StorageError::Crashed));
        let bytes = wal.durable_bytes();
        assert!(bytes.len() as u64 > wal.durable_len(), "torn tail present");
        let scan = Wal::scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].1, b"durable op");
        assert!(scan.trailing_bytes > 0);
    }

    #[test]
    fn scan_rejects_bit_flips() {
        let wal = Wal::new(IoStats::new());
        let a = wal.append(WalRecordKind::Op, b"payload");
        wal.force(a).unwrap();
        let mut bytes = wal.durable_bytes();
        let n = bytes.len();
        for i in 0..n {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            let scan = Wal::scan(&flipped);
            assert!(
                scan.records.is_empty() || flipped == bytes,
                "flip at byte {i} must invalidate the record"
            );
        }
        // Untouched bytes still parse.
        bytes.truncate(n);
        assert_eq!(Wal::scan(&bytes).records.len(), 1);
    }

    #[test]
    fn reset_starts_a_fresh_generation() {
        let wal = Wal::new(IoStats::new());
        let a = wal.append(WalRecordKind::Op, b"old");
        wal.force(a).unwrap();
        wal.reset();
        assert_eq!(wal.current_lsn(), Lsn(0));
        assert_eq!(wal.flushed_lsn(), Lsn(0));
        assert!(wal.durable_bytes().is_empty());
        let b = wal.append(WalRecordKind::Checkpoint, b"new head");
        wal.force(b).unwrap();
        assert_eq!(Wal::scan(&wal.durable_bytes()).records.len(), 1);
    }

    #[test]
    fn page_write_is_a_crash_point() {
        let fault = FaultInjector::new();
        let wal = Wal::with_faults(IoStats::new(), Arc::clone(&fault));
        wal.page_write().unwrap();
        fault.arm(fault.events() + 1, false);
        assert_eq!(wal.page_write(), Err(StorageError::Crashed));
        assert!(fault.crashed());
    }
}
