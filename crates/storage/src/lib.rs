//! # instn-storage
//!
//! The storage substrate for the InsightNotes+ reproduction.
//!
//! The original system (EDBT 2015) is a patched PostgreSQL; every experiment
//! in its evaluation section is ultimately a statement about *pages touched*
//! and *levels of indirection* (extra joins) between an index entry and the
//! data tuple it annotates. This crate therefore provides a faithful,
//! self-contained stand-in for the PostgreSQL storage layer:
//!
//! * [`page`] — slotted 8 KiB pages holding variable-length records,
//! * [`pager`] — a page arena with an [`io::IoStats`] accounting layer that
//!   counts every logical page read and write,
//! * [`buffer`] — a fixed-capacity CLOCK buffer pool shared by all heap
//!   files and B-Trees of a database, splitting accounting into logical
//!   accesses vs physical transfers (capacity 0 reproduces the uncached
//!   engine's counters exactly),
//! * [`heap`] — heap files (unordered record storage) built on the pager,
//! * [`btree`] — an order-B multi-map B-Tree with byte-string keys whose node
//!   visits are charged to the same I/O accounting,
//! * [`mod@tuple`] — values, tuples, schemas, and their byte encoding,
//! * [`table`] — a heap-backed table with stable OIDs and an OID → heap
//!   location B-Tree (the substrate behind the paper's `diskTupleLoc()`),
//! * [`catalog`] — the table registry,
//! * [`wal`] — a physical write-ahead log (length-prefixed, checksummed
//!   records) with a deterministic fault injector; the buffer pool forces it
//!   ahead of every page write-back so crash recovery can replay a
//!   consistent prefix.
//!
//! All structures are deterministic and in-memory; "disk" cost is observed
//! through [`io::IoStats`], which the benchmark harness reports next to wall
//! time so the paper's relative speedups can be checked against both metrics.

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod error;
pub mod heap;
pub mod io;
pub mod page;
pub mod pager;
pub mod table;
pub mod tuple;
pub mod wal;

pub use btree::{BTree, Cursor, CursorDesc};
pub use buffer::{Access, BufferPool, Evicted, FileId, FileKind, FrameKey};
pub use catalog::{Catalog, TableId};
pub use error::StorageError;
pub use heap::HeapFile;
pub use io::{IoScope, IoSnapshot, IoStats};
pub use page::{PageId, RecordId, PAGE_SIZE};
pub use pager::Pager;
pub use table::{Oid, ScanCursor, Table};
pub use tuple::{ColumnType, Schema, Tuple, Value};
pub use wal::{crc32, FaultInjector, Lsn, Wal, WalRecordKind, WalScan};

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

// Compile-time guarantee that the storage layer is shareable across
// threads: the multi-session executor in `instn-query` hands `&Database`
// (and therefore every structure below) to N reader threads at once. A
// non-Sync field sneaking into any of these types must fail the build
// here, not deep inside a threaded test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BufferPool>();
    assert_send_sync::<Pager>();
    assert_send_sync::<HeapFile>();
    assert_send_sync::<BTree<u64>>();
    assert_send_sync::<BTree<Oid>>();
    assert_send_sync::<Table>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<Wal>();
    assert_send_sync::<FaultInjector>();
    assert_send_sync::<IoStats>();
};
