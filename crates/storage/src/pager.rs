//! Page arena with I/O accounting.
//!
//! A [`Pager`] owns the pages of one storage object (heap file). Every page
//! access goes through [`Pager::read`] / [`Pager::write`], which charge the
//! shared [`crate::buffer::BufferPool`] — a disabled (capacity 0) pool
//! charges every access as a physical transfer, reproducing the original
//! direct-to-[`IoStats`] accounting bit for bit. This is the single funnel
//! through which the benchmark harness observes "disk" traffic.

use std::sync::Arc;

use crate::buffer::{BufferPool, FileId, FileKind};
use crate::error::StorageError;
use crate::io::IoStats;
use crate::page::{Page, PageId};
use crate::Result;

/// The arena of pages backing one heap file, plus its buffer-pool handle.
#[derive(Debug)]
pub struct Pager {
    pages: Vec<Page>,
    pool: Arc<BufferPool>,
    file: FileId,
}

impl Pager {
    /// Create an empty pager charging I/O to `stats` directly (no caching).
    pub fn new(stats: Arc<IoStats>) -> Self {
        Self::with_pool(BufferPool::disabled(stats))
    }

    /// Create an empty pager registered with `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        let file = pool.register_file(FileKind::Heap);
        Self {
            pages: Vec::new(),
            pool,
            file,
        }
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        self.pool.stats()
    }

    /// The buffer pool this pager charges.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// This pager's file handle within the buffer pool.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes used across all pages (for storage-overhead experiments).
    pub fn used_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.used_bytes()).sum()
    }

    /// Allocate a fresh page; charged as one logical write (physical when
    /// uncached, deferred to write-back when pooled).
    pub fn allocate(&mut self) -> PageId {
        self.pages.push(Page::new());
        let id = (self.pages.len() - 1) as u32;
        self.pool.alloc(self.file, u64::from(id));
        PageId(id)
    }

    /// Read access to a page; charged as one logical read.
    pub fn read(&self, id: PageId) -> Result<&Page> {
        self.pool.read(self.file, u64::from(id.0));
        self.pages
            .get(id.0 as usize)
            .ok_or(StorageError::PageNotFound(id.0))
    }

    /// Write access to a page; charged as one logical read + one logical
    /// write (a page must be fetched before it can be modified).
    pub fn write(&mut self, id: PageId) -> Result<&mut Page> {
        self.pool.write(self.file, u64::from(id.0));
        self.pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageNotFound(id.0))
    }

    /// Pin `id` in the buffer pool so a multi-page operation (e.g. chunked
    /// record assembly) cannot have its anchor page evicted under it. No-op
    /// when the page is not resident. Pair with [`Pager::unpin`].
    pub fn pin(&self, id: PageId) -> bool {
        self.pool.pin(self.file, u64::from(id.0))
    }

    /// Release one pin taken by [`Pager::pin`].
    pub fn unpin(&self, id: PageId) {
        self.pool.unpin(self.file, u64::from(id.0));
    }

    /// Peek at a page without charging I/O.
    ///
    /// Used only for bookkeeping that a real system would keep in the free
    /// space map (e.g. "which page has room"), never for data access.
    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.pages.get(id.0 as usize)
    }

    /// Iterate over all page ids (no I/O charged; iteration of *contents*
    /// goes through [`Pager::read`]).
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.pages.len() as u32).map(PageId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_access_are_charged() {
        let stats = IoStats::new();
        let mut pager = Pager::new(Arc::clone(&stats));
        let pid = pager.allocate();
        assert_eq!(stats.snapshot().heap_writes, 1);
        pager.write(pid).unwrap().insert(b"x").unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.heap_writes, 2);
        assert_eq!(snap.heap_reads, 1);
        pager.read(pid).unwrap();
        assert_eq!(stats.snapshot().heap_reads, 2);
    }

    #[test]
    fn missing_page_errors() {
        let pager = Pager::new(IoStats::new());
        assert!(matches!(
            pager.read(PageId(3)),
            Err(StorageError::PageNotFound(3))
        ));
    }

    #[test]
    fn peek_is_free() {
        let stats = IoStats::new();
        let mut pager = Pager::new(Arc::clone(&stats));
        let pid = pager.allocate();
        let before = stats.snapshot();
        assert!(pager.peek(pid).is_some());
        assert_eq!(stats.snapshot(), before);
    }

    #[test]
    fn pooled_pager_reads_hit_after_first_fetch() {
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 8);
        let mut pager = Pager::with_pool(Arc::clone(&pool));
        let pid = pager.allocate();
        pager.read(pid).unwrap();
        pager.read(pid).unwrap();
        let snap = stats.snapshot();
        // Page was born in the pool by allocate(); both reads hit.
        assert_eq!(snap.heap_reads, 0);
        assert_eq!(snap.logical_heap_reads, 2);
        assert_eq!(snap.cache_hits, 2);
    }
}
