//! Page arena with I/O accounting.
//!
//! A [`Pager`] owns the pages of one storage object (heap file). Every page
//! access goes through [`Pager::read`] / [`Pager::write`], which charge the
//! shared [`IoStats`]. This is the single funnel through which the benchmark
//! harness observes "disk" traffic.

use std::sync::Arc;

use crate::error::StorageError;
use crate::io::IoStats;
use crate::page::{Page, PageId};
use crate::Result;

/// The arena of pages backing one heap file, plus the shared I/O counters.
#[derive(Debug)]
pub struct Pager {
    pages: Vec<Page>,
    stats: Arc<IoStats>,
}

impl Pager {
    /// Create an empty pager charging I/O to `stats`.
    pub fn new(stats: Arc<IoStats>) -> Self {
        Self {
            pages: Vec::new(),
            stats,
        }
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes used across all pages (for storage-overhead experiments).
    pub fn used_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.used_bytes()).sum()
    }

    /// Allocate a fresh page; charged as one write.
    pub fn allocate(&mut self) -> PageId {
        self.pages.push(Page::new());
        self.stats.heap_write(1);
        PageId((self.pages.len() - 1) as u32)
    }

    /// Read access to a page; charged as one read.
    pub fn read(&self, id: PageId) -> Result<&Page> {
        self.stats.heap_read(1);
        self.pages
            .get(id.0 as usize)
            .ok_or(StorageError::PageNotFound(id.0))
    }

    /// Write access to a page; charged as one read + one write
    /// (a page must be fetched before it can be modified).
    pub fn write(&mut self, id: PageId) -> Result<&mut Page> {
        self.stats.heap_read(1);
        self.stats.heap_write(1);
        self.pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageNotFound(id.0))
    }

    /// Peek at a page without charging I/O.
    ///
    /// Used only for bookkeeping that a real system would keep in the free
    /// space map (e.g. "which page has room"), never for data access.
    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.pages.get(id.0 as usize)
    }

    /// Iterate over all page ids (no I/O charged; iteration of *contents*
    /// goes through [`Pager::read`]).
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.pages.len() as u32).map(PageId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_access_are_charged() {
        let stats = IoStats::new();
        let mut pager = Pager::new(Arc::clone(&stats));
        let pid = pager.allocate();
        assert_eq!(stats.snapshot().heap_writes, 1);
        pager.write(pid).unwrap().insert(b"x").unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.heap_writes, 2);
        assert_eq!(snap.heap_reads, 1);
        pager.read(pid).unwrap();
        assert_eq!(stats.snapshot().heap_reads, 2);
    }

    #[test]
    fn missing_page_errors() {
        let pager = Pager::new(IoStats::new());
        assert!(matches!(
            pager.read(PageId(3)),
            Err(StorageError::PageNotFound(3))
        ));
    }

    #[test]
    fn peek_is_free() {
        let stats = IoStats::new();
        let mut pager = Pager::new(Arc::clone(&stats));
        let pid = pager.allocate();
        let before = stats.snapshot();
        assert!(pager.peek(pid).is_some());
        assert_eq!(stats.snapshot(), before);
    }
}
