//! Table registry.
//!
//! The [`Catalog`] maps table names to [`TableId`]s and owns the [`Table`]
//! objects. Higher layers (the annotation store, summary storage, indexes)
//! hold `TableId`s and borrow tables through the catalog.

use std::collections::HashMap;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::StorageError;
use crate::io::IoStats;
use crate::table::Table;
use crate::tuple::Schema;
use crate::Result;

/// Identifier of a table within one [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Owns all tables of one database instance.
#[derive(Debug)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    pool: Arc<BufferPool>,
}

impl Catalog {
    /// Create an empty catalog charging I/O to `stats` directly (no caching).
    pub fn new(stats: Arc<IoStats>) -> Self {
        Self::with_pool(BufferPool::disabled(stats))
    }

    /// Create an empty catalog whose tables share the buffer pool `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Self {
            tables: Vec::new(),
            by_name: HashMap::new(),
            pool,
        }
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        self.pool.stats()
    }

    /// The buffer pool shared by this catalog's tables.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a table, failing if the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        if self.by_name.contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables
            .push(Table::with_pool(name, schema, Arc::clone(&self.pool)));
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Borrow a table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.0 as usize)
            .ok_or_else(|| StorageError::TableNotFound(format!("#{}", id.0)))
    }

    /// Mutably borrow a table by id.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.0 as usize)
            .ok_or_else(|| StorageError::TableNotFound(format!("#{}", id.0)))
    }

    /// Borrow a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        self.table(self.table_id(name)?)
    }

    /// All `(id, name)` pairs.
    pub fn list(&self) -> Vec<(TableId, &str)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{ColumnType, Value};

    #[test]
    fn create_lookup_roundtrip() {
        let mut c = Catalog::new(IoStats::new());
        let id = c
            .create_table("birds", Schema::of(&[("id", ColumnType::Int)]))
            .unwrap();
        assert_eq!(c.table_id("birds").unwrap(), id);
        assert_eq!(c.table(id).unwrap().name(), "birds");
        assert_eq!(c.table_by_name("birds").unwrap().name(), "birds");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new(IoStats::new());
        c.create_table("t", Schema::of(&[("x", ColumnType::Int)]))
            .unwrap();
        assert!(matches!(
            c.create_table("t", Schema::of(&[("x", ColumnType::Int)])),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn missing_table_errors() {
        let c = Catalog::new(IoStats::new());
        assert!(c.table_id("nope").is_err());
        assert!(c.table(TableId(9)).is_err());
    }

    #[test]
    fn tables_share_io_stats() {
        let stats = IoStats::new();
        let mut c = Catalog::new(Arc::clone(&stats));
        let a = c
            .create_table("a", Schema::of(&[("x", ColumnType::Int)]))
            .unwrap();
        let b = c
            .create_table("b", Schema::of(&[("x", ColumnType::Int)]))
            .unwrap();
        c.table_mut(a).unwrap().insert(vec![Value::Int(1)]).unwrap();
        c.table_mut(b).unwrap().insert(vec![Value::Int(2)]).unwrap();
        assert!(stats.snapshot().total() > 0);
    }

    #[test]
    fn list_enumerates_in_creation_order() {
        let mut c = Catalog::new(IoStats::new());
        c.create_table("one", Schema::of(&[("x", ColumnType::Int)]))
            .unwrap();
        c.create_table("two", Schema::of(&[("x", ColumnType::Int)]))
            .unwrap();
        let names: Vec<&str> = c.list().into_iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["one", "two"]);
    }
}
