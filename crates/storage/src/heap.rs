//! Heap files: unordered collections of variable-length records.
//!
//! A [`HeapFile`] is the storage behind user relations, the raw-annotations
//! table, the de-normalized `R_SummaryStorage` catalog tables, and the
//! baseline scheme's normalized replica table. Records are addressed by
//! stable [`RecordId`]s, which is what makes the Summary-BTree's backward
//! pointers possible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::StorageError;
use crate::io::IoStats;
use crate::page::{Page, PageId, RecordId};
use crate::pager::Pager;
use crate::Result;

/// Record framing tags: records larger than a page are split into chunk
/// records referenced by a directory record (the moral equivalent of
/// PostgreSQL's TOAST). Reading an oversized record costs one page read per
/// chunk, which is exactly what an oversized row costs a real system.
const TAG_SIMPLE: u8 = 0;
const TAG_CHUNK: u8 = 1;
const TAG_DIRECTORY: u8 = 2;

/// An unordered record file over slotted pages.
#[derive(Debug)]
pub struct HeapFile {
    pager: Pager,
    /// Free-space hint: pages that recently had room, newest first.
    /// A real system keeps this in a free space map; consulting it is free.
    insert_hint: Option<PageId>,
    record_count: usize,
    /// Oversized records whose chunk assembly failed during a scan. Scans
    /// skip such records rather than yield garbage; this counter is how
    /// callers (and the recovery sweep) observe that corruption was seen.
    corrupt_skipped: AtomicU64,
}

impl HeapFile {
    /// Create an empty heap file charging I/O to `stats` directly
    /// (no caching).
    pub fn new(stats: Arc<IoStats>) -> Self {
        Self::with_pool(BufferPool::disabled(stats))
    }

    /// Create an empty heap file whose pages are cached by `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Self {
            pager: Pager::with_pool(pool),
            insert_hint: None,
            record_count: 0,
            corrupt_skipped: AtomicU64::new(0),
        }
    }

    /// Number of corrupt oversized records scans have skipped (see
    /// [`HeapFile::scan`]). Non-zero means the file needs repair.
    pub fn corrupt_skipped(&self) -> u64 {
        self.corrupt_skipped.load(Ordering::Relaxed)
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        self.pager.stats()
    }

    /// The buffer pool this file charges.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.pager.pool()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.record_count
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pager.page_count()
    }

    /// Total payload bytes stored (for storage-overhead experiments).
    pub fn used_bytes(&self) -> usize {
        self.pager.used_bytes()
    }

    /// Largest payload that fits one framed record.
    fn chunk_capacity() -> usize {
        Page::max_record_len() - 1
    }

    /// Insert raw framed bytes into some page with room.
    fn insert_framed(&mut self, framed: &[u8]) -> Result<RecordId> {
        let pid = match self.insert_hint {
            Some(pid)
                if self
                    .pager
                    .peek(pid)
                    .map(|p| p.fits(framed.len()))
                    .unwrap_or(false) =>
            {
                pid
            }
            _ => {
                let pid = self.pager.allocate();
                self.insert_hint = Some(pid);
                pid
            }
        };
        let slot = self.pager.write(pid)?.insert(framed)?;
        Ok(RecordId { page: pid, slot })
    }

    /// Insert a record, returning its stable location. Records larger than
    /// a page are split across chunk records behind a directory record.
    pub fn insert(&mut self, data: &[u8]) -> Result<RecordId> {
        let cap = Self::chunk_capacity();
        let rid = if data.len() <= cap {
            let mut framed = Vec::with_capacity(data.len() + 1);
            framed.push(TAG_SIMPLE);
            framed.extend_from_slice(data);
            self.insert_framed(&framed)?
        } else {
            let mut chunk_rids: Vec<RecordId> = Vec::new();
            for chunk in data.chunks(cap) {
                let mut framed = Vec::with_capacity(chunk.len() + 1);
                framed.push(TAG_CHUNK);
                framed.extend_from_slice(chunk);
                chunk_rids.push(self.insert_framed(&framed)?);
            }
            let mut dir = Vec::with_capacity(1 + 8 + chunk_rids.len() * 6);
            dir.push(TAG_DIRECTORY);
            dir.extend_from_slice(&(data.len() as u64).to_le_bytes());
            dir.extend_from_slice(&(chunk_rids.len() as u32).to_le_bytes());
            for c in &chunk_rids {
                dir.extend_from_slice(&c.page.0.to_le_bytes());
                dir.extend_from_slice(&c.slot.to_le_bytes());
            }
            if dir.len() > cap {
                return Err(StorageError::RecordTooLarge {
                    size: data.len(),
                    max: cap * cap / 8,
                });
            }
            self.insert_framed(&dir)?
        };
        self.record_count += 1;
        Ok(rid)
    }

    fn read_framed(&self, rid: RecordId) -> Result<Vec<u8>> {
        let page = self.pager.read(rid.page)?;
        page.get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or(StorageError::RecordNotFound {
                page: rid.page.0,
                slot: rid.slot,
            })
    }

    fn directory_chunks(framed: &[u8]) -> Result<(u64, Vec<RecordId>)> {
        let total = u64::from_le_bytes(
            framed
                .get(1..9)
                .ok_or_else(|| StorageError::Corrupt("directory header".into()))?
                .try_into()
                .expect("slice is 8 bytes"),
        );
        let n = u32::from_le_bytes(
            framed
                .get(9..13)
                .ok_or_else(|| StorageError::Corrupt("directory count".into()))?
                .try_into()
                .expect("slice is 4 bytes"),
        ) as usize;
        let mut rids = Vec::with_capacity(n);
        let mut pos = 13;
        for _ in 0..n {
            let page = u32::from_le_bytes(
                framed
                    .get(pos..pos + 4)
                    .ok_or_else(|| StorageError::Corrupt("directory entry".into()))?
                    .try_into()
                    .expect("slice is 4 bytes"),
            );
            let slot = u16::from_le_bytes(
                framed
                    .get(pos + 4..pos + 6)
                    .ok_or_else(|| StorageError::Corrupt("directory entry".into()))?
                    .try_into()
                    .expect("slice is 2 bytes"),
            );
            rids.push(RecordId::new(page, slot));
            pos += 6;
        }
        Ok((total, rids))
    }

    /// Fetch the record at `rid` (one page read per chunk for oversized
    /// records).
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        let framed = self.read_framed(rid)?;
        match framed.first() {
            Some(&TAG_SIMPLE) => Ok(framed[1..].to_vec()),
            Some(&TAG_DIRECTORY) => {
                // Pin the directory's page for the duration of chunk
                // assembly: the chunk reads must not evict the anchor of the
                // multi-page operation in progress.
                self.pager.pin(rid.page);
                let assembled = (|| {
                    let (total, chunks) = Self::directory_chunks(&framed)?;
                    let mut out = Vec::with_capacity(total as usize);
                    for c in chunks {
                        let chunk = self.read_framed(c)?;
                        if chunk.first() != Some(&TAG_CHUNK) {
                            return Err(StorageError::Corrupt("expected chunk record".into()));
                        }
                        out.extend_from_slice(&chunk[1..]);
                    }
                    Ok(out)
                })();
                self.pager.unpin(rid.page);
                assembled
            }
            Some(&TAG_CHUNK) => Err(StorageError::RecordNotFound {
                page: rid.page.0,
                slot: rid.slot,
            }),
            _ => Err(StorageError::Corrupt("bad record tag".into())),
        }
    }

    fn delete_framed(&mut self, rid: RecordId) -> Result<usize> {
        let page = self.pager.write(rid.page)?;
        page.delete(rid.slot).ok_or(StorageError::RecordNotFound {
            page: rid.page.0,
            slot: rid.slot,
        })
    }

    /// Delete the record at `rid` (and its chunks, if oversized).
    ///
    /// The directory entry goes first: once it is gone the record is dead —
    /// `record_count` and scans agree — and a failure while reclaiming
    /// chunks strands only invisible orphan space, never live accounting.
    /// (The old chunks-first order could lose every chunk and still leave
    /// the directory claiming a record that no longer exists.)
    pub fn delete(&mut self, rid: RecordId) -> Result<()> {
        let framed = self.read_framed(rid)?;
        let chunks = if framed.first() == Some(&TAG_DIRECTORY) {
            Self::directory_chunks(&framed)?.1
        } else {
            Vec::new()
        };
        self.delete_framed(rid)?;
        self.record_count -= 1;
        self.insert_hint = Some(rid.page);
        for c in chunks {
            self.delete_framed(c)?;
        }
        Ok(())
    }

    /// Update the record at `rid`. If the new payload no longer fits in its
    /// page the record is relocated and the **new** location returned —
    /// exactly the "delete + re-insert" behaviour the paper leans on for
    /// Summary-BTree maintenance.
    pub fn update(&mut self, rid: RecordId, data: &[u8]) -> Result<RecordId> {
        let framed = self.read_framed(rid)?;
        // In-place only for simple → simple updates that still fit.
        if framed.first() == Some(&TAG_SIMPLE) && data.len() <= Self::chunk_capacity() {
            let mut new_framed = Vec::with_capacity(data.len() + 1);
            new_framed.push(TAG_SIMPLE);
            new_framed.extend_from_slice(data);
            let fitted = self.pager.write(rid.page)?.update(rid.slot, &new_framed)?;
            if fitted {
                return Ok(rid);
            }
        }
        self.delete(rid)?;
        self.insert(data)
    }

    /// Full scan over `(RecordId, payload)`, charging one read per page.
    /// Oversized records are returned once (at their directory location),
    /// with their chunks re-read and assembled. A directory whose chunks
    /// fail to assemble (truncated, deleted, or mis-tagged) is *skipped*
    /// and counted in [`HeapFile::corrupt_skipped`] — never silently
    /// yielded as an empty or partial payload.
    pub fn scan(&self) -> impl Iterator<Item = (RecordId, Vec<u8>)> + '_ {
        self.pager.page_ids().flat_map(move |pid| {
            let page = self.pager.read(pid).expect("page ids are dense");
            let entries: Vec<(RecordId, Option<Vec<u8>>)> = page
                .iter()
                .filter_map(|(slot, data)| {
                    let rid = RecordId { page: pid, slot };
                    match data.first() {
                        Some(&TAG_SIMPLE) => Some((rid, Some(data[1..].to_vec()))),
                        // Chunks are assembled after the page borrow ends.
                        Some(&TAG_DIRECTORY) => Some((rid, None)),
                        _ => None,
                    }
                })
                .collect();
            entries
                .into_iter()
                .filter_map(move |(rid, data)| match data {
                    Some(d) => Some((rid, d)),
                    None => match self.get(rid) {
                        Ok(d) => Some((rid, d)),
                        Err(_) => {
                            self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                    },
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> HeapFile {
        HeapFile::new(IoStats::new())
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut h = heap();
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap(), b"beta");
        assert_eq!(h.len(), 2);
        h.delete(a).unwrap();
        assert!(h.get(a).is_err());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut h = heap();
        let rec = vec![7u8; 3000];
        for _ in 0..10 {
            h.insert(&rec).unwrap();
        }
        // 3000B records, ~2 per 8KiB page -> at least 5 pages.
        assert!(h.page_count() >= 5, "got {} pages", h.page_count());
        assert_eq!(h.len(), 10);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let mut h = heap();
        let rid = h.insert(b"abc").unwrap();
        let rid2 = h.update(rid, b"abcd").unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(h.get(rid).unwrap(), b"abcd");
    }

    #[test]
    fn update_relocates_when_page_full() {
        let mut h = heap();
        let rid = h.insert(b"small").unwrap();
        // Fill the same page almost completely.
        h.insert(&vec![1u8; 4000]).unwrap();
        h.insert(&vec![2u8; 4000]).unwrap();
        let rid2 = h.update(rid, &vec![3u8; 5000]).unwrap();
        assert_ne!(rid, rid2);
        assert_eq!(h.get(rid2).unwrap(), vec![3u8; 5000]);
        assert!(h.get(rid).is_err());
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn scan_returns_all_live_records() {
        let mut h = heap();
        let rids: Vec<_> = (0..20u8).map(|i| h.insert(&[i]).unwrap()).collect();
        h.delete(rids[3]).unwrap();
        h.delete(rids[17]).unwrap();
        let seen: Vec<u8> = h.scan().map(|(_, d)| d[0]).collect();
        assert_eq!(seen.len(), 18);
        assert!(!seen.contains(&3));
        assert!(!seen.contains(&17));
    }

    #[test]
    fn oversized_records_roundtrip() {
        let mut h = heap();
        let big = (0..30_000u32)
            .flat_map(|i| i.to_le_bytes())
            .collect::<Vec<u8>>();
        let rid = h.insert(&big).unwrap();
        assert_eq!(h.get(rid).unwrap(), big);
        assert_eq!(h.len(), 1);
        // Update to an even bigger payload relocates transparently.
        let bigger = vec![7u8; 50_000];
        let rid2 = h.update(rid, &bigger).unwrap();
        assert_eq!(h.get(rid2).unwrap(), bigger);
        assert_eq!(h.len(), 1);
        h.delete(rid2).unwrap();
        assert_eq!(h.len(), 0);
        assert!(h.get(rid2).is_err());
    }

    #[test]
    fn oversized_read_costs_one_page_per_chunk() {
        let stats = IoStats::new();
        let mut h = HeapFile::new(Arc::clone(&stats));
        let big = vec![1u8; 40_000]; // ~5 chunks of ~8 KiB
        let rid = h.insert(&big).unwrap();
        stats.reset();
        h.get(rid).unwrap();
        let reads = stats.snapshot().heap_reads;
        assert!(reads >= 5, "chunked read touches every chunk page: {reads}");
    }

    #[test]
    fn scan_assembles_oversized_records_and_skips_chunks() {
        let mut h = heap();
        h.insert(b"small").unwrap();
        let big = vec![9u8; 20_000];
        h.insert(&big).unwrap();
        let all: Vec<Vec<u8>> = h.scan().map(|(_, d)| d).collect();
        assert_eq!(all.len(), 2, "chunks must not appear as records");
        assert!(all.contains(&b"small".to_vec()));
        assert!(all.contains(&big));
    }

    #[test]
    fn scan_charges_one_read_per_page() {
        let stats = IoStats::new();
        let mut h = HeapFile::new(Arc::clone(&stats));
        for _ in 0..6 {
            h.insert(&vec![0u8; 3000]).unwrap();
        }
        let pages = h.page_count();
        let before = stats.snapshot();
        let _ = h.scan().count();
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.heap_reads, pages as u64);
    }

    #[test]
    fn pooled_scan_cold_pays_page_count_warm_pays_zero() {
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 64);
        let mut h = HeapFile::with_pool(Arc::clone(&pool));
        for _ in 0..6 {
            h.insert(&vec![0u8; 3000]).unwrap();
        }
        let pages = h.page_count() as u64;
        assert!(pages <= 64, "working set must fit the pool");
        // Cold: drop everything the inserts left resident.
        pool.set_capacity(0);
        pool.set_capacity(64);
        stats.reset();
        let _ = h.scan().count();
        let cold = stats.snapshot();
        assert_eq!(cold.heap_reads, pages, "cold scan faults every page once");
        assert_eq!(cold.logical_heap_reads, pages);
        // Warm: the whole file is now resident.
        stats.reset();
        let _ = h.scan().count();
        let warm = stats.snapshot();
        assert_eq!(warm.heap_reads, 0, "warm scan is free of physical I/O");
        assert_eq!(warm.logical_heap_reads, pages);
        assert_eq!(warm.cache_hits, pages);
    }

    #[test]
    fn pooled_chunked_record_faults_each_chunk_page_once() {
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), 64);
        let mut h = HeapFile::with_pool(Arc::clone(&pool));
        let big = vec![1u8; 40_000]; // ~5 chunks of ~8 KiB
        let rid = h.insert(&big).unwrap();
        let pages = h.page_count() as u64;
        pool.set_capacity(0);
        pool.set_capacity(64);
        stats.reset();
        h.get(rid).unwrap();
        let cold = stats.snapshot();
        assert!(cold.heap_reads >= 5, "cold chunked read faults every chunk");
        assert!(cold.heap_reads <= pages, "but each page at most once");
        stats.reset();
        h.get(rid).unwrap();
        let warm = stats.snapshot();
        assert_eq!(warm.heap_reads, 0, "resident chunks are not re-fetched");
        assert_eq!(warm.logical_heap_reads, cold.logical_heap_reads);
    }

    /// Corrupt an oversized record by deleting one of its chunk records
    /// out from under the directory, returning the victim chunk's id.
    fn break_one_chunk(h: &mut HeapFile, dir: RecordId) -> RecordId {
        let framed = h.read_framed(dir).unwrap();
        assert_eq!(framed.first(), Some(&TAG_DIRECTORY));
        let (_, chunks) = HeapFile::directory_chunks(&framed).unwrap();
        let victim = chunks[chunks.len() / 2];
        h.pager
            .write(victim.page)
            .unwrap()
            .delete(victim.slot)
            .unwrap();
        victim
    }

    #[test]
    fn scan_skips_corrupt_oversized_record_and_counts_it() {
        // Regression: the scan used to yield `unwrap_or_default()` — an
        // EMPTY payload — for a directory whose chunks are gone, silently
        // presenting corruption as a zero-length record.
        let mut h = heap();
        h.insert(b"healthy").unwrap();
        let big = vec![5u8; 20_000];
        let dir = h.insert(&big).unwrap();
        break_one_chunk(&mut h, dir);
        assert!(h.get(dir).is_err(), "direct read surfaces the corruption");
        let all: Vec<Vec<u8>> = h.scan().map(|(_, d)| d).collect();
        assert_eq!(all, vec![b"healthy".to_vec()], "no empty payload leaks");
        assert_eq!(h.corrupt_skipped(), 1);
        // The counter accumulates across scans.
        let _ = h.scan().count();
        assert_eq!(h.corrupt_skipped(), 2);
    }

    #[test]
    fn truncated_chunk_surfaces_instead_of_empty_payload() {
        // A chunk whose bytes were overwritten with a non-chunk tag (the
        // moral equivalent of a torn chunk write) must also be surfaced.
        let mut h = heap();
        let big = vec![6u8; 20_000];
        let dir = h.insert(&big).unwrap();
        let framed = h.read_framed(dir).unwrap();
        let (_, chunks) = HeapFile::directory_chunks(&framed).unwrap();
        let victim = chunks[0];
        h.pager
            .write(victim.page)
            .unwrap()
            .update(victim.slot, &[TAG_SIMPLE, 7])
            .unwrap();
        assert!(h.get(dir).is_err());
        // The re-tagged chunk now scans as an (orphan) simple record, but
        // the corrupt directory itself is skipped, not yielded empty.
        let all: Vec<Vec<u8>> = h.scan().map(|(_, d)| d).collect();
        assert_eq!(all, vec![vec![7u8]]);
        assert_eq!(h.corrupt_skipped(), 1);
    }

    #[test]
    fn failed_chunk_delete_never_strands_accounting() {
        // Regression: delete used to remove chunks before the directory, so
        // a failure mid-way left `record_count` and the directory claiming
        // a record whose chunks were already gone. Directory-first order
        // makes the record dead the moment accounting says so.
        let mut h = heap();
        let big = vec![8u8; 20_000];
        let dir = h.insert(&big).unwrap();
        assert_eq!(h.len(), 1);
        break_one_chunk(&mut h, dir);
        let err = h.delete(dir);
        assert!(err.is_err(), "missing chunk still reported");
        assert_eq!(h.len(), 0, "record is gone from accounting");
        assert_eq!(h.scan().count(), 0, "and from scans");
        assert!(h.get(dir).is_err());
        assert!(h.delete(dir).is_err(), "double delete stays an error");
    }

    #[test]
    fn chunk_assembly_pins_directory_page_under_pressure() {
        let stats = IoStats::new();
        // Pool smaller than the chunk count: assembly evicts chunks as it
        // goes, but the pinned directory page must survive.
        let pool = BufferPool::new(Arc::clone(&stats), 2);
        let mut h = HeapFile::with_pool(Arc::clone(&pool));
        let big = vec![3u8; 40_000];
        let rid = h.insert(&big).unwrap();
        assert_eq!(h.get(rid).unwrap(), big);
        // The pin was released afterwards: pressure can now evict it.
        assert!(!h.pool().is_pinned(h.pager.file_id(), u64::from(rid.page.0)));
    }
}
