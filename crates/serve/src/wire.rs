//! The wire protocol: length-prefixed frames with a versioned handshake.
//!
//! Every message on the socket is one *frame*: a little-endian `u32`
//! payload length followed by that many payload bytes, capped at
//! [`MAX_FRAME_BYTES`] so a corrupt or hostile peer cannot make the server
//! allocate unboundedly. On top of frames:
//!
//! * **Handshake** — the client opens with [`ClientHello`] (magic,
//!   protocol version); the server answers with [`ServerHello`] (its
//!   version plus a [`HandshakeStatus`]). Admission control happens here:
//!   an over-capacity server answers `Busy` without reading the client
//!   hello and closes — the cheapest possible rejection.
//! * **Requests** — [`Request::Query`] carries a statement plus an
//!   optional per-request deadline; `Ping` and `Shutdown` are one-byte
//!   admin requests. [`Request::Prepare`] registers a statement under a
//!   server-side handle so [`Request::ExecutePrepared`] can skip the parse
//!   (and usually the plan) on every subsequent execution;
//!   [`Request::ClosePrepared`] frees the handle.
//! * **Responses** — typed rows ([`Response::Rows`]), rendered text
//!   (`EXPLAIN`/DDL acknowledgements), a prepared-statement handle
//!   ([`Response::Prepared`]), or a structured error with a
//!   machine-readable [`ErrorCode`].
//!
//! Values cross the wire with a one-byte type tag (`NULL`, `i64`, `f64`
//! bit pattern, UTF-8 text, bool), so the encoding is canonical: the same
//! row always encodes to the same bytes, which is what lets the serve
//! benchmark assert byte-identical results against an in-process oracle.

use std::io::{Read, Write};

use instn_core::AnnotatedTuple;
use instn_storage::{Oid, TableId, Value};

/// Protocol version spoken by this build. Bumped on any frame-layout
/// change; the handshake rejects mismatches instead of guessing.
pub const PROTOCOL_VERSION: u16 = 1;

/// Client hello magic.
pub const CLIENT_MAGIC: [u8; 4] = *b"INSN";
/// Server hello magic.
pub const SERVER_MAGIC: [u8; 4] = *b"INSO";

/// Hard cap on one frame's payload. Large enough for any realistic result
/// set here, small enough to bound a malicious length prefix.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Outcome of the handshake, from the server's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeStatus {
    /// Connection admitted; requests may follow.
    Ok,
    /// The client's protocol version is not this server's.
    VersionMismatch,
    /// Admission control rejected the connection (worker pool and accept
    /// queue both full). Retry later.
    Busy,
    /// The server is draining and accepts no new connections.
    ShuttingDown,
}

impl HandshakeStatus {
    fn to_byte(self) -> u8 {
        match self {
            HandshakeStatus::Ok => 0,
            HandshakeStatus::VersionMismatch => 1,
            HandshakeStatus::Busy => 2,
            HandshakeStatus::ShuttingDown => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => HandshakeStatus::Ok,
            1 => HandshakeStatus::VersionMismatch,
            2 => HandshakeStatus::Busy,
            3 => HandshakeStatus::ShuttingDown,
            other => return Err(WireError::Malformed(format!("handshake status {other}"))),
        })
    }
}

/// Machine-readable error classification carried in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The statement did not lex/parse.
    Parse,
    /// The statement parsed but referenced unknown names.
    Bind,
    /// The engine returned an error during execution.
    Exec,
    /// The request missed its wall-clock deadline.
    DeadlineExceeded,
    /// The request panicked; the panic was contained at the serve boundary
    /// and the connection (and every other one) keeps serving.
    Panicked,
    /// The engine lock is poisoned (a writer panicked mid-mutation);
    /// the server fails requests fast instead of aborting workers.
    EnginePoisoned,
    /// The peer violated the protocol (bad opcode, oversized frame…).
    Protocol,
    /// The server is draining; no further requests will be served.
    ShuttingDown,
    /// The statement kind is not servable over the wire.
    Unsupported,
    /// An `ExecutePrepared`/`ClosePrepared` named a handle this connection
    /// never prepared (or already closed).
    UnknownHandle,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Parse => 1,
            ErrorCode::Bind => 2,
            ErrorCode::Exec => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Panicked => 5,
            ErrorCode::EnginePoisoned => 6,
            ErrorCode::Protocol => 7,
            ErrorCode::ShuttingDown => 8,
            ErrorCode::Unsupported => 9,
            ErrorCode::UnknownHandle => 10,
        }
    }

    fn from_u16(v: u16) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::Parse,
            2 => ErrorCode::Bind,
            3 => ErrorCode::Exec,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::Panicked,
            6 => ErrorCode::EnginePoisoned,
            7 => ErrorCode::Protocol,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Unsupported,
            10 => ErrorCode::UnknownHandle,
            other => return Err(WireError::Malformed(format!("error code {other}"))),
        })
    }
}

/// Errors while encoding/decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes read/write timeouts).
    Io(std::io::Error),
    /// A structurally invalid frame.
    Malformed(String),
    /// A frame longer than [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One request from client to server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute one statement. `deadline_ms = 0` means "use the server's
    /// configured default deadline".
    Query {
        /// Per-request wall-clock budget in milliseconds (0 = server
        /// default).
        deadline_ms: u32,
        /// The statement text.
        statement: String,
    },
    /// Liveness probe; answered with `Response::Text("pong")`.
    Ping,
    /// Ask the server to drain and exit (honored only when the server was
    /// started with `allow_remote_shutdown`).
    Shutdown,
    /// Register a statement under a server-side handle. The server parses
    /// and validates once, then answers [`Response::Prepared`]; every later
    /// [`Request::ExecutePrepared`] skips the parse entirely.
    Prepare {
        /// The statement text (must be a `SELECT`).
        statement: String,
    },
    /// Execute a previously prepared statement by handle.
    ExecutePrepared {
        /// The handle from [`Response::Prepared`].
        handle: u64,
        /// Per-request wall-clock budget in milliseconds (0 = server
        /// default).
        deadline_ms: u32,
    },
    /// Free a prepared-statement handle.
    ClosePrepared {
        /// The handle to drop.
        handle: u64,
    },
}

/// One response from server to client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Typed result rows.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// The rows.
        rows: Vec<WireRow>,
    },
    /// Rendered text (EXPLAIN output, DDL acknowledgement, ping reply…).
    Text(String),
    /// A structured error.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledgement of [`Request::Prepare`].
    Prepared {
        /// The server-side handle to pass to `ExecutePrepared`.
        handle: u64,
        /// Output column names the statement will produce.
        columns: Vec<String>,
    },
}

/// One result row as it crosses the wire: source provenance, typed data
/// values, and the attached summary objects rendered `name:size` (the same
/// shape the interactive shell prints).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// `(table, oid)` provenance while single-sourced; `None` after a join.
    pub source: Option<(u32, u64)>,
    /// The data values.
    pub values: Vec<Value>,
    /// Attached summaries, rendered `name:size`.
    pub summaries: Vec<String>,
}

impl WireRow {
    /// The canonical wire projection of an executor row.
    pub fn from_tuple(t: &AnnotatedTuple) -> Self {
        WireRow {
            source: t.source.map(|(tid, oid)| (tid.0, oid.0)),
            values: t.values.clone(),
            summaries: t
                .summaries
                .iter()
                .map(|o| format!("{}:{}", o.summary_name(), o.size()))
                .collect(),
        }
    }
}

// ---- frame transport -------------------------------------------------

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---- primitive encoders ----------------------------------------------

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string".into()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value, WireError> {
    Ok(match c.u8()? {
        0 => Value::Null,
        1 => Value::Int(i64::from_le_bytes(c.take(8)?.try_into().unwrap())),
        2 => Value::Float(f64::from_bits(c.u64()?)),
        3 => Value::Text(c.str()?),
        4 => Value::Bool(c.u8()? != 0),
        other => return Err(WireError::Malformed(format!("value tag {other}"))),
    })
}

// ---- handshake -------------------------------------------------------

/// The client's opening frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHello {
    /// Protocol version the client speaks.
    pub version: u16,
}

impl ClientHello {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6);
        out.extend_from_slice(&CLIENT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        if c.take(4)? != CLIENT_MAGIC {
            return Err(WireError::Malformed("bad client magic".into()));
        }
        let version = c.u16()?;
        c.done()?;
        Ok(ClientHello { version })
    }
}

/// The server's reply to [`ClientHello`] (or its unsolicited rejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// Protocol version the server speaks.
    pub version: u16,
    /// Admission outcome.
    pub status: HandshakeStatus,
}

impl ServerHello {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7);
        out.extend_from_slice(&SERVER_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.status.to_byte());
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        if c.take(4)? != SERVER_MAGIC {
            return Err(WireError::Malformed("bad server magic".into()));
        }
        let version = c.u16()?;
        let status = HandshakeStatus::from_byte(c.u8()?)?;
        c.done()?;
        Ok(ServerHello { version, status })
    }
}

// ---- requests / responses --------------------------------------------

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                deadline_ms,
                statement,
            } => {
                out.push(0);
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                put_str(&mut out, statement);
            }
            Request::Ping => out.push(1),
            Request::Shutdown => out.push(2),
            Request::Prepare { statement } => {
                out.push(3);
                put_str(&mut out, statement);
            }
            Request::ExecutePrepared {
                handle,
                deadline_ms,
            } => {
                out.push(4);
                out.extend_from_slice(&handle.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::ClosePrepared { handle } => {
                out.push(5);
                out.extend_from_slice(&handle.to_le_bytes());
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            0 => Request::Query {
                deadline_ms: c.u32()?,
                statement: c.str()?,
            },
            1 => Request::Ping,
            2 => Request::Shutdown,
            3 => Request::Prepare {
                statement: c.str()?,
            },
            4 => Request::ExecutePrepared {
                handle: c.u64()?,
                deadline_ms: c.u32()?,
            },
            5 => Request::ClosePrepared { handle: c.u64()? },
            other => return Err(WireError::Malformed(format!("request opcode {other}"))),
        };
        c.done()?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Rows { columns, rows } => {
                out.push(0);
                out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                for col in columns {
                    put_str(&mut out, col);
                }
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    match row.source {
                        Some((t, o)) => {
                            out.push(1);
                            out.extend_from_slice(&t.to_le_bytes());
                            out.extend_from_slice(&o.to_le_bytes());
                        }
                        None => out.push(0),
                    }
                    out.extend_from_slice(&(row.values.len() as u32).to_le_bytes());
                    for v in &row.values {
                        put_value(&mut out, v);
                    }
                    out.extend_from_slice(&(row.summaries.len() as u32).to_le_bytes());
                    for s in &row.summaries {
                        put_str(&mut out, s);
                    }
                }
            }
            Response::Text(s) => {
                out.push(1);
                put_str(&mut out, s);
            }
            Response::Error { code, message } => {
                out.push(2);
                out.extend_from_slice(&code.to_u16().to_le_bytes());
                put_str(&mut out, message);
            }
            Response::Prepared { handle, columns } => {
                out.push(3);
                out.extend_from_slice(&handle.to_le_bytes());
                out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                for col in columns {
                    put_str(&mut out, col);
                }
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            0 => {
                let ncols = c.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(c.str()?);
                }
                let nrows = c.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(4096));
                for _ in 0..nrows {
                    let source = match c.u8()? {
                        0 => None,
                        1 => Some((c.u32()?, c.u64()?)),
                        other => return Err(WireError::Malformed(format!("source tag {other}"))),
                    };
                    let nvals = c.u32()? as usize;
                    let mut values = Vec::with_capacity(nvals.min(1024));
                    for _ in 0..nvals {
                        values.push(get_value(&mut c)?);
                    }
                    let nsums = c.u32()? as usize;
                    let mut summaries = Vec::with_capacity(nsums.min(1024));
                    for _ in 0..nsums {
                        summaries.push(c.str()?);
                    }
                    rows.push(WireRow {
                        source,
                        values,
                        summaries,
                    });
                }
                Response::Rows { columns, rows }
            }
            1 => Response::Text(c.str()?),
            2 => Response::Error {
                code: ErrorCode::from_u16(c.u16()?)?,
                message: c.str()?,
            },
            3 => {
                let handle = c.u64()?;
                let ncols = c.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(c.str()?);
                }
                Response::Prepared { handle, columns }
            }
            other => return Err(WireError::Malformed(format!("response tag {other}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

/// Reconstruct the source pair as engine types (test/diagnostic helper).
pub fn source_ids(source: Option<(u32, u64)>) -> Option<(TableId, Oid)> {
    source.map(|(t, o)| (TableId(t), Oid(o)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        // A hostile length prefix is rejected before allocation.
        let mut bad = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 8]);
        let mut r = &bad[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn handshake_roundtrip() {
        let ch = ClientHello {
            version: PROTOCOL_VERSION,
        };
        assert_eq!(ClientHello::decode(&ch.encode()).unwrap(), ch);
        for status in [
            HandshakeStatus::Ok,
            HandshakeStatus::VersionMismatch,
            HandshakeStatus::Busy,
            HandshakeStatus::ShuttingDown,
        ] {
            let sh = ServerHello {
                version: PROTOCOL_VERSION,
                status,
            };
            assert_eq!(ServerHello::decode(&sh.encode()).unwrap(), sh);
        }
        assert!(ClientHello::decode(b"XXXX\x01\x00").is_err());
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Query {
                deadline_ms: 250,
                statement: "SELECT * FROM Birds;".into(),
            },
            Request::Ping,
            Request::Shutdown,
            Request::Prepare {
                statement: "SELECT id FROM Birds".into(),
            },
            Request::ExecutePrepared {
                handle: u64::MAX,
                deadline_ms: 0,
            },
            Request::ClosePrepared { handle: 7 },
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        assert!(Request::decode(&[9]).is_err());
        // Trailing garbage is rejected, not ignored.
        let mut enc = Request::Ping.encode();
        enc.push(0);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn response_roundtrip_all_value_types() {
        let resp = Response::Rows {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                WireRow {
                    source: Some((3, 17)),
                    values: vec![
                        Value::Int(-5),
                        Value::Text("héllo".into()),
                        Value::Float(-0.0),
                        Value::Bool(true),
                        Value::Null,
                    ],
                    summaries: vec!["ClassBird1:4".into()],
                },
                WireRow {
                    source: None,
                    values: vec![],
                    summaries: vec![],
                },
            ],
        };
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
        // Canonical: re-encoding the decode is byte-identical.
        assert_eq!(Response::decode(&enc).unwrap().encode(), enc);
    }

    #[test]
    fn error_roundtrip() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::Bind,
            ErrorCode::Exec,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Panicked,
            ErrorCode::EnginePoisoned,
            ErrorCode::Protocol,
            ErrorCode::ShuttingDown,
            ErrorCode::Unsupported,
            ErrorCode::UnknownHandle,
        ] {
            let r = Response::Error {
                code,
                message: "m".into(),
            };
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn prepared_roundtrip() {
        for resp in [
            Response::Prepared {
                handle: 1,
                columns: vec!["id".into(), "name".into()],
            },
            Response::Prepared {
                handle: u64::MAX,
                columns: vec![],
            },
        ] {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp);
            assert_eq!(Response::decode(&enc).unwrap().encode(), enc);
        }
        // Trailing garbage after a prepared ack is rejected.
        let mut enc = Response::Prepared {
            handle: 2,
            columns: vec![],
        }
        .encode();
        enc.push(0);
        assert!(Response::decode(&enc).is_err());
    }
}
