//! # instn-serve
//!
//! The network serving layer: InsightNotes+ behind a TCP socket
//! (DESIGN.md §11). The paper's premise — annotation summaries as
//! first-class citizens *queried interactively by many analysts* — needs
//! more than an in-process API: this crate puts the engine behind a
//! versioned, length-prefixed wire protocol with per-connection
//! sessions, admission control, request deadlines, panic containment,
//! and graceful drain.
//!
//! * [`wire`] — the protocol: u32-LE length-prefixed frames, versioned
//!   handshake, canonical (byte-deterministic) value encoding,
//!   structured error codes.
//! * [`server`] — [`Server::start`] → [`ServerHandle`]: acceptor +
//!   bounded worker pool over one [`instn_query::SharedDatabase`];
//!   overload answers `Busy` fast instead of queueing unboundedly;
//!   [`ServerHandle::shutdown`] drains in-flight requests and
//!   checkpoints.
//! * [`client`] — [`Client`]: blocking connect/handshake, `query` /
//!   `query_deadline` / `query_raw` (raw canonical payload bytes for
//!   oracle comparison), `ping`, `shutdown_server`.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{is_error_code, Client, ClientError, ClientResult};
pub use server::{ServeConfig, Server, ServerHandle};
pub use wire::{ErrorCode, HandshakeStatus, Request, Response, WireRow, PROTOCOL_VERSION};
