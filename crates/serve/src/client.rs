//! Blocking client for the instn-serve wire protocol.
//!
//! [`Client::connect`] performs the versioned handshake; a non-`Ok`
//! handshake status (busy server, draining server, protocol mismatch)
//! surfaces as [`ClientError::Rejected`] so callers can retry or back
//! off. All calls are synchronous request/response over one socket.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    read_frame, write_frame, ClientHello, ErrorCode, HandshakeStatus, Request, Response, WireError,
    PROTOCOL_VERSION,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame decoded to something the protocol does not allow here.
    Protocol(String),
    /// The server answered the handshake with a non-`Ok` status.
    Rejected(HandshakeStatus),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Rejected(s) => write!(f, "handshake rejected: {s:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// Crate-level client result alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// A connected, handshaken client session.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and handshake. Fails with [`ClientError::Rejected`] if the
    /// server is at capacity, draining, or speaks another protocol
    /// version.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_frame(
            &mut stream,
            &ClientHello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )?;
        let hello = crate::wire::ServerHello::decode(&read_frame(&mut stream)?)?;
        if hello.status != HandshakeStatus::Ok {
            return Err(ClientError::Rejected(hello.status));
        }
        Ok(Client { stream })
    }

    /// Set a socket read timeout for responses (`None` blocks forever).
    /// Useful when the request deadline should also bound the client-side
    /// wait.
    pub fn set_response_timeout(&mut self, t: Option<Duration>) -> ClientResult<()> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    fn roundtrip(&mut self, req: &Request) -> ClientResult<Vec<u8>> {
        write_frame(&mut self.stream, &req.encode())?;
        Ok(read_frame(&mut self.stream)?)
    }

    /// Run `statement` under the server's default deadline and decode the
    /// response.
    pub fn query(&mut self, statement: &str) -> ClientResult<Response> {
        self.query_deadline(statement, Duration::ZERO)
    }

    /// Run `statement` with an explicit wall-clock budget
    /// (`Duration::ZERO` means "server default").
    pub fn query_deadline(
        &mut self,
        statement: &str,
        deadline: Duration,
    ) -> ClientResult<Response> {
        let raw = self.query_raw(statement, deadline)?;
        Ok(Response::decode(&raw)?)
    }

    /// Like [`Client::query_deadline`] but returns the raw response
    /// payload bytes without decoding. The encoding is canonical (one
    /// byte sequence per logical response), so raw payloads can be
    /// compared byte-for-byte against an oracle's encoding — this is what
    /// the `serve` benchmark's correctness assert uses.
    pub fn query_raw(&mut self, statement: &str, deadline: Duration) -> ClientResult<Vec<u8>> {
        let ms = deadline.as_millis().min(u32::MAX as u128) as u32;
        self.roundtrip(&Request::Query {
            deadline_ms: ms,
            statement: statement.to_string(),
        })
    }

    /// Prepare `statement` server-side, returning the handle and the
    /// output column names. Later [`Client::execute_prepared`] calls skip
    /// the server's parser (and usually its planner — the plan stays in
    /// the session's plan cache until a touched table advances).
    pub fn prepare(&mut self, statement: &str) -> ClientResult<(u64, Vec<String>)> {
        let resp = Response::decode(&self.roundtrip(&Request::Prepare {
            statement: statement.to_string(),
        })?)?;
        match resp {
            Response::Prepared { handle, columns } => Ok((handle, columns)),
            Response::Error { code, message } => Err(ClientError::Protocol(format!(
                "prepare refused ({code:?}): {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "unexpected prepare response: {other:?}"
            ))),
        }
    }

    /// Execute a prepared statement under the server's default deadline.
    pub fn execute_prepared(&mut self, handle: u64) -> ClientResult<Response> {
        let raw = self.execute_prepared_raw(handle, Duration::ZERO)?;
        Ok(Response::decode(&raw)?)
    }

    /// Like [`Client::execute_prepared`] but with an explicit wall-clock
    /// budget and returning the raw canonical payload bytes — comparable
    /// byte-for-byte against [`Client::query_raw`] of the same statement,
    /// which is what the plan-cache benchmark's identity assert uses.
    pub fn execute_prepared_raw(
        &mut self,
        handle: u64,
        deadline: Duration,
    ) -> ClientResult<Vec<u8>> {
        let ms = deadline.as_millis().min(u32::MAX as u128) as u32;
        self.roundtrip(&Request::ExecutePrepared {
            handle,
            deadline_ms: ms,
        })
    }

    /// Free a prepared-statement handle.
    pub fn close_prepared(&mut self, handle: u64) -> ClientResult<()> {
        match Response::decode(&self.roundtrip(&Request::ClosePrepared { handle })?)? {
            Response::Text(_) => Ok(()),
            Response::Error { code, message } => Err(ClientError::Protocol(format!(
                "close refused ({code:?}): {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "unexpected close response: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match Response::decode(&self.roundtrip(&Request::Ping)?)? {
            Response::Text(t) if t == "pong" => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected ping response: {other:?}"
            ))),
        }
    }

    /// Ask the server to drain (honored only when the server was started
    /// with `allow_remote_shutdown`).
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match Response::decode(&self.roundtrip(&Request::Shutdown)?)? {
            Response::Text(_) => Ok(()),
            Response::Error { code, message } => Err(ClientError::Protocol(format!(
                "shutdown refused ({code:?}): {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "unexpected shutdown response: {other:?}"
            ))),
        }
    }
}

/// Convenience: true when `resp` is the structured error `code`.
pub fn is_error_code(resp: &Response, code: ErrorCode) -> bool {
    matches!(resp, Response::Error { code: c, .. } if *c == code)
}
