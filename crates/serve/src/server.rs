//! The TCP server: admission-controlled worker pool, per-request
//! deadlines, panic containment, and graceful drain (DESIGN.md §11).
//!
//! Architecture: one acceptor thread plus `max_connections` worker
//! threads over one [`SharedDatabase`]. The acceptor performs *admission
//! control* — a connection is enqueued only while
//! `active + queued < max_connections + accept_backlog`; anything beyond
//! that is answered with a `Busy` handshake frame and closed immediately,
//! so overload degrades into fast rejections instead of a pile-up. Each
//! admitted connection is owned end-to-end by one worker, which gives it
//! its own [`Session`] (own index registry, own exec config) for the
//! connection's lifetime.
//!
//! Robustness contract per request:
//!
//! * **Panic containment** — the statement handler runs under
//!   `catch_unwind`; a panicking query becomes a structured
//!   `ErrorCode::Panicked` response, the session's index registry
//!   survives (drop-guard in `Session::with_ctx`), and every other
//!   connection keeps serving.
//! * **Deadlines** — each request carries a wall-clock budget (or
//!   inherits the server default). The engine is non-preemptible, so the
//!   deadline is enforced cooperatively: checked at dispatch, inside
//!   debug sleeps, and at completion — a result computed past its
//!   deadline is discarded and answered with `DeadlineExceeded`.
//! * **Slow clients** — socket writes carry `write_timeout`; a peer that
//!   stalls mid-frame for longer than `read_timeout` is disconnected.
//!   Idle connections (no frame in progress) are kept alive.
//! * **Poisoning** — if a writer panics and poisons the engine lock,
//!   requests fail fast with `ErrorCode::EnginePoisoned` instead of
//!   aborting workers.
//!
//! Graceful drain ([`ServerHandle::shutdown`]): stop accepting (queued
//! but unserved sockets get a `ShuttingDown` handshake), let every worker
//! finish and answer its in-flight request, close connections, join all
//! threads, then checkpoint the engine.

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use instn_core::instance::InstanceKind;
use instn_obs::{Counter, Gauge, Histogram};
use instn_query::session::{Session, SharedDatabase};
use instn_query::QueryError;
use instn_sql::lower::{execute_statement, explain_analyze_statement, SqlOutcome};
use instn_sql::plan::{plan_select, refresh_statistics, render_explain};
use instn_sql::{SqlError, Statement};

use crate::wire::{
    read_frame, write_frame, ClientHello, ErrorCode, HandshakeStatus, Request, Response,
    ServerHello, WireRow, PROTOCOL_VERSION,
};

/// How often blocked reads and queue waits re-check the drain flag.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Most prepared statements a single connection may hold open.
const MAX_PREPARED_PER_CONN: usize = 256;

/// One prepared statement: parsed once at `Prepare` time, so every
/// `ExecutePrepared` skips the parser and goes straight to the session's
/// plan cache (usually a hit — then the optimizer is skipped too).
struct PreparedEntry {
    /// Original text, kept for slow-log tagging.
    statement: String,
    /// The parsed SELECT.
    select: instn_sql::SelectStmt,
}

/// Serving knobs. The defaults favor robustness over raw capacity; every
/// field is overridable before [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads = concurrently served connections.
    pub max_connections: usize,
    /// Connections allowed to wait for a worker beyond `max_connections`.
    /// `0` means a connection is admitted only if a worker is free.
    pub accept_backlog: usize,
    /// Wall-clock budget for a request that does not carry its own.
    pub default_deadline: Duration,
    /// Maximum stall mid-frame before a slow client is disconnected.
    pub read_timeout: Duration,
    /// Socket write timeout (a peer not draining its receive buffer for
    /// this long is disconnected).
    pub write_timeout: Duration,
    /// Execution settings (DOP, morsel size) for every connection session.
    pub exec_config: instn_query::ExecConfig,
    /// Enable the `\panic`, `\sleep <ms>`, and `\registry` debug
    /// statements (tests and benches only; never on by default).
    pub debug_statements: bool,
    /// Honor `Request::Shutdown` from clients.
    pub allow_remote_shutdown: bool,
    /// Simulated per-query disk stall slept while serving each `Query`
    /// (benchmark calibration, mirrors the concurrency experiment's
    /// disk-bound stand-in). Zero in normal operation.
    pub query_stall: Duration,
    /// Whether per-connection sessions keep a plan cache. `true` (the
    /// default) still honors `INSTN_PLAN_CACHE=0`; `false` force-disables
    /// caching so every statement replans (the always-replan oracle the
    /// benches compare against).
    pub plan_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_connections: 8,
            accept_backlog: 16,
            default_deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            exec_config: instn_query::ExecConfig::default(),
            debug_statements: false,
            allow_remote_shutdown: false,
            query_stall: Duration::ZERO,
            plan_cache: true,
        }
    }
}

/// Serve-layer metric handles, resolved once at startup.
struct ServeMetrics {
    connections: Gauge,
    requests_total: Counter,
    requests_failed_total: Counter,
    rejected_total: Counter,
    request_ns: Histogram,
    slow_client_disconnects_total: Counter,
}

/// Accept-queue state guarded by one mutex: sockets waiting for a worker
/// plus the number currently being served. Admission reads both.
struct AcceptState {
    queue: VecDeque<TcpStream>,
    active: usize,
}

/// Everything the acceptor and workers share.
struct ServeShared {
    shared: SharedDatabase,
    instances: HashMap<String, InstanceKind>,
    config: ServeConfig,
    shutting_down: AtomicBool,
    state: Mutex<AcceptState>,
    cv: Condvar,
    metrics: ServeMetrics,
    next_conn_id: AtomicU64,
}

impl ServeShared {
    fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// The server factory; see [`Server::start`].
pub struct Server;

/// A running server: its bound address plus the thread handles needed to
/// drain it. Dropping the handle without calling
/// [`ServerHandle::shutdown`] still stops and joins every thread (but
/// skips the checkpoint).
pub struct ServerHandle {
    inner: Arc<ServeShared>,
    addr: std::net::SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 picks a free port) and start serving
    /// `shared` with `config`. `instances` is the catalog of summary
    /// instance definitions `ALTER TABLE … ADD` may link.
    pub fn start(
        shared: SharedDatabase,
        instances: HashMap<String, InstanceKind>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = {
            let db = shared
                .try_read()
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            let m = db.metrics();
            ServeMetrics {
                connections: m.gauge("serve_connections", "Active client connections"),
                requests_total: m.counter("serve_requests_total", "Requests served"),
                requests_failed_total: m.counter(
                    "serve_requests_failed_total",
                    "Requests answered with an error",
                ),
                rejected_total: m.counter(
                    "serve_rejected_total",
                    "Connections rejected by admission control",
                ),
                request_ns: m.histogram(
                    "serve_request_ns",
                    "Request latency, frame receipt to response write (ns)",
                ),
                slow_client_disconnects_total: m.counter(
                    "serve_slow_client_disconnects_total",
                    "Connections dropped for stalling mid-frame or mid-write",
                ),
            }
        };
        let inner = Arc::new(ServeShared {
            shared,
            instances,
            config: config.clone(),
            shutting_down: AtomicBool::new(false),
            state: Mutex::new(AcceptState {
                queue: VecDeque::new(),
                active: 0,
            }),
            cv: Condvar::new(),
            metrics,
            next_conn_id: AtomicU64::new(1),
        });
        let workers = (0..config.max_connections.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("instn-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("instn-serve-accept".into())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            inner,
            addr: local,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Whether a drain has been initiated (locally or by a remote
    /// `Shutdown` request).
    pub fn is_draining(&self) -> bool {
        self.inner.draining()
    }

    /// Graceful drain: stop accepting, answer every in-flight request,
    /// close connections, join all threads, then checkpoint the engine.
    /// Returns once the engine state is durably on disk.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.stop_and_join();
        let inner = Arc::clone(&self.inner);
        let mut db = inner
            .shared
            .try_write()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        db.checkpoint()
            .map(|_| ())
            .map_err(|e| std::io::Error::other(e.to_string()))
    }

    fn stop_and_join(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it re-checks the flag on wake.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Best-effort handshake rejection: drain the client hello (so closing
/// does not RST it away before the peer reads our answer), write one
/// status frame, close. Timeouts are capped at one second — a peer that
/// never sends its hello cannot stall the acceptor for long.
fn reject(stream: TcpStream, status: HandshakeStatus, write_timeout: Duration) {
    let mut stream = stream;
    let t = write_timeout.min(Duration::from_secs(1));
    let _ = stream.set_read_timeout(Some(t));
    let _ = stream.set_write_timeout(Some(t));
    let _ = read_frame(&mut stream);
    let _ = write_frame(
        &mut stream,
        &ServerHello {
            version: PROTOCOL_VERSION,
            status,
        }
        .encode(),
    );
}

fn accept_loop(listener: &TcpListener, sv: &ServeShared) {
    for stream in listener.incoming() {
        if sv.draining() {
            if let Ok(s) = stream {
                reject(s, HandshakeStatus::ShuttingDown, sv.config.write_timeout);
            }
            break;
        }
        let Ok(stream) = stream else { continue };
        let cap = sv.config.max_connections.max(1) + sv.config.accept_backlog;
        let mut st = sv.state.lock().expect("accept state");
        if st.active + st.queue.len() >= cap {
            drop(st);
            sv.metrics.rejected_total.inc();
            reject(stream, HandshakeStatus::Busy, sv.config.write_timeout);
            continue;
        }
        st.queue.push_back(stream);
        drop(st);
        sv.cv.notify_one();
    }
    // Drain: connections admitted but never picked up by a worker are
    // answered, not silently dropped.
    let mut st = sv.state.lock().expect("accept state");
    while let Some(s) = st.queue.pop_front() {
        reject(s, HandshakeStatus::ShuttingDown, sv.config.write_timeout);
    }
}

/// Pop the next admitted connection, or `None` once draining and empty.
fn pop_connection(sv: &ServeShared) -> Option<TcpStream> {
    let mut st = sv.state.lock().expect("accept state");
    loop {
        if let Some(s) = st.queue.pop_front() {
            st.active += 1;
            return Some(s);
        }
        if sv.draining() {
            return None;
        }
        let (next, _) = sv.cv.wait_timeout(st, POLL_SLICE).expect("accept state");
        st = next;
    }
}

fn worker_loop(sv: &ServeShared) {
    while let Some(stream) = pop_connection(sv) {
        sv.metrics.connections.add(1);
        let conn_id = sv.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let _ = serve_connection(sv, stream, conn_id);
        sv.metrics.connections.sub(1);
        let mut st = sv.state.lock().expect("accept state");
        st.active -= 1;
    }
}

/// Outcome of waiting for one request frame.
enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean end-of-stream between frames.
    Eof,
    /// The server started draining while the connection was idle.
    Draining,
    /// The peer stalled mid-frame past the read timeout (or the socket
    /// errored).
    SlowClient,
}

/// Read one length-prefixed frame in [`POLL_SLICE`] steps so the worker
/// notices a drain promptly, distinguishing an *idle* peer (kept alive
/// indefinitely) from a *stalled* one (mid-frame, disconnected after
/// `read_timeout`).
fn read_request(stream: &mut TcpStream, sv: &ServeShared) -> ReadOutcome {
    use std::io::Read;
    if stream.set_read_timeout(Some(POLL_SLICE)).is_err() {
        return ReadOutcome::SlowClient;
    }
    let mut header = [0u8; 4];
    let mut got = 0usize;
    let mut body: Option<(Vec<u8>, usize)> = None;
    let mut stalled = Duration::ZERO;
    loop {
        let mid_frame = got > 0 || body.is_some();
        if sv.draining() && !mid_frame {
            return ReadOutcome::Draining;
        }
        let res = match &mut body {
            None => stream.read(&mut header[got..]),
            Some((buf, filled)) => stream.read(&mut buf[*filled..]),
        };
        match res {
            Ok(0) => {
                return if mid_frame {
                    ReadOutcome::SlowClient
                } else {
                    ReadOutcome::Eof
                };
            }
            Ok(n) => {
                stalled = Duration::ZERO;
                match &mut body {
                    None => {
                        got += n;
                        if got == 4 {
                            let len = u32::from_le_bytes(header) as usize;
                            if len > crate::wire::MAX_FRAME_BYTES {
                                return ReadOutcome::SlowClient;
                            }
                            if len == 0 {
                                return ReadOutcome::Frame(Vec::new());
                            }
                            body = Some((vec![0u8; len], 0));
                        }
                    }
                    Some((buf, filled)) => {
                        *filled += n;
                        if *filled == buf.len() {
                            let (buf, _) = body.take().expect("just matched");
                            return ReadOutcome::Frame(buf);
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if mid_frame {
                    stalled += POLL_SLICE;
                    if stalled >= sv.config.read_timeout {
                        return ReadOutcome::SlowClient;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::SlowClient,
        }
    }
}

fn serve_connection(
    sv: &ServeShared,
    mut stream: TcpStream,
    conn_id: u64,
) -> Result<(), crate::wire::WireError> {
    let _ = stream.set_nodelay(true);
    stream.set_write_timeout(Some(sv.config.write_timeout))?;
    // Handshake: the whole hello must arrive within the read timeout.
    stream.set_read_timeout(Some(sv.config.read_timeout))?;
    let hello = ClientHello::decode(&read_frame(&mut stream)?)?;
    let status = if hello.version != PROTOCOL_VERSION {
        HandshakeStatus::VersionMismatch
    } else if sv.draining() {
        HandshakeStatus::ShuttingDown
    } else {
        HandshakeStatus::Ok
    };
    write_frame(
        &mut stream,
        &ServerHello {
            version: PROTOCOL_VERSION,
            status,
        }
        .encode(),
    )?;
    if status != HandshakeStatus::Ok {
        return Ok(());
    }
    let mut session = sv.shared.session();
    session.exec_config = sv.config.exec_config;
    if !sv.config.plan_cache {
        session.plan_cache.set_enabled(false);
    }
    // Per-connection prepared statements; handles are meaningless on any
    // other connection and die with this one.
    let mut prepared: HashMap<u64, PreparedEntry> = HashMap::new();
    let mut next_handle: u64 = 1;
    loop {
        let payload = match read_request(&mut stream, sv) {
            ReadOutcome::Frame(p) => p,
            ReadOutcome::Eof | ReadOutcome::Draining => return Ok(()),
            ReadOutcome::SlowClient => {
                sv.metrics.slow_client_disconnects_total.inc();
                return Ok(());
            }
        };
        let started = Instant::now();
        let response = match Request::decode(&payload) {
            Err(e) => Response::Error {
                code: ErrorCode::Protocol,
                message: e.to_string(),
            },
            Ok(Request::Ping) => Response::Text("pong".into()),
            Ok(Request::Shutdown) => {
                if sv.config.allow_remote_shutdown {
                    sv.shutting_down.store(true, Ordering::SeqCst);
                    sv.cv.notify_all();
                    // Wake the acceptor so the drain starts now, not at
                    // the next incoming connection.
                    let _ = TcpStream::connect(stream.local_addr()?);
                    Response::Text("draining".into())
                } else {
                    Response::Error {
                        code: ErrorCode::Unsupported,
                        message: "remote shutdown not enabled".into(),
                    }
                }
            }
            Ok(Request::Query {
                deadline_ms,
                statement,
            }) => {
                let budget = if deadline_ms == 0 {
                    sv.config.default_deadline
                } else {
                    Duration::from_millis(deadline_ms as u64)
                };
                serve_query(sv, &mut session, conn_id, &statement, started + budget)
            }
            Ok(Request::Prepare { statement }) => {
                contained(started + sv.config.default_deadline, || {
                    dispatch_prepare(&mut session, &mut prepared, &mut next_handle, &statement)
                })
            }
            Ok(Request::ExecutePrepared {
                handle,
                deadline_ms,
            }) => {
                let budget = if deadline_ms == 0 {
                    sv.config.default_deadline
                } else {
                    Duration::from_millis(deadline_ms as u64)
                };
                match prepared.get(&handle) {
                    None => Response::Error {
                        code: ErrorCode::UnknownHandle,
                        message: format!("handle {handle} was never prepared on this connection"),
                    },
                    Some(entry) => contained(started + budget, || {
                        dispatch_execute_prepared(sv, &mut session, conn_id, entry)
                    }),
                }
            }
            Ok(Request::ClosePrepared { handle }) => match prepared.remove(&handle) {
                Some(_) => Response::Text("closed".into()),
                None => Response::Error {
                    code: ErrorCode::UnknownHandle,
                    message: format!("handle {handle} was never prepared on this connection"),
                },
            },
        };
        let failed = matches!(response, Response::Error { .. });
        if write_frame(&mut stream, &response.encode()).is_err() {
            sv.metrics.slow_client_disconnects_total.inc();
            sv.metrics.requests_failed_total.inc();
            return Ok(());
        }
        sv.metrics.requests_total.inc();
        if failed {
            sv.metrics.requests_failed_total.inc();
        }
        sv.metrics.request_ns.record(instn_obs::elapsed_ns(started));
        if sv.draining() {
            // Drain semantics: the in-flight request above was answered;
            // the connection closes before taking another.
            return Ok(());
        }
    }
}

/// The panic-containment boundary: everything a statement can do runs
/// inside `catch_unwind`, so one malformed or adversarial query cannot
/// take the worker (or the process) down.
fn contained(deadline: Instant, f: impl FnOnce() -> Response) -> Response {
    let out = catch_unwind(AssertUnwindSafe(f));
    let response = match out {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Response::Error {
                code: ErrorCode::Panicked,
                message: format!("query panicked (contained at the serve boundary): {msg}"),
            }
        }
    };
    // The engine cannot be preempted, so a result that arrives after its
    // deadline is discarded rather than delivered late.
    if Instant::now() > deadline && !matches!(&response, Response::Error { .. }) {
        return Response::Error {
            code: ErrorCode::DeadlineExceeded,
            message: "request exceeded its wall-clock deadline; result discarded".into(),
        };
    }
    response
}

fn serve_query(
    sv: &ServeShared,
    session: &mut Session,
    conn_id: u64,
    statement: &str,
    deadline: Instant,
) -> Response {
    contained(deadline, || {
        dispatch_statement(sv, session, conn_id, statement, deadline)
    })
}

/// Parse + validate + plan once, then park the parsed SELECT under a
/// handle. Planning at prepare time both surfaces bind errors immediately
/// and warms the plan cache, so the first `ExecutePrepared` is already a
/// cache hit.
fn dispatch_prepare(
    session: &mut Session,
    prepared: &mut HashMap<u64, PreparedEntry>,
    next_handle: &mut u64,
    statement: &str,
) -> Response {
    if prepared.len() >= MAX_PREPARED_PER_CONN {
        return Response::Error {
            code: ErrorCode::Unsupported,
            message: format!(
                "prepared-statement limit ({MAX_PREPARED_PER_CONN}) reached; close a handle first"
            ),
        };
    }
    let line = statement.trim();
    match instn_sql::parse(line) {
        Err(e) => sql_error(&e),
        Ok(Statement::Select(sel)) => match plan_select(session, &sel) {
            Err(e) => sql_error(&e),
            Ok(planned) => {
                let handle = *next_handle;
                *next_handle += 1;
                prepared.insert(
                    handle,
                    PreparedEntry {
                        statement: line.to_string(),
                        select: sel,
                    },
                );
                Response::Prepared {
                    handle,
                    columns: planned.plan.columns.clone(),
                }
            }
        },
        Ok(_) => Response::Error {
            code: ErrorCode::Unsupported,
            message: "only SELECT statements can be prepared".into(),
        },
    }
}

/// Execute a prepared statement: no parse, and `plan_select` revalidates
/// the cached plan's journal stamp on every call — DML since prepare
/// forces a replan, never stale rows.
fn dispatch_execute_prepared(
    sv: &ServeShared,
    session: &mut Session,
    conn_id: u64,
    entry: &PreparedEntry,
) -> Response {
    if !sv.config.query_stall.is_zero() {
        // Benchmark calibration: stand in for a disk-bound engine.
        std::thread::sleep(sv.config.query_stall);
    }
    match plan_select(session, &entry.select) {
        Err(e) => sql_error(&e),
        Ok(planned) => {
            let tagged = format!("[conn {conn_id}] {}", entry.statement);
            match session.execute_observed(&tagged, &planned.plan.plan) {
                Ok(rows) => Response::Rows {
                    columns: planned.plan.columns.clone(),
                    rows: rows.iter().map(WireRow::from_tuple).collect(),
                },
                Err(e) => query_error(&e),
            }
        }
    }
}

fn sql_error(e: &SqlError) -> Response {
    let code = match e {
        SqlError::Lex(_) | SqlError::Parse(_) => ErrorCode::Parse,
        SqlError::Bind(_) => ErrorCode::Bind,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn query_error(e: &QueryError) -> Response {
    let code = match e {
        QueryError::EnginePoisoned => ErrorCode::EnginePoisoned,
        _ => ErrorCode::Exec,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn dispatch_statement(
    sv: &ServeShared,
    session: &mut Session,
    conn_id: u64,
    statement: &str,
    deadline: Instant,
) -> Response {
    let line = statement.trim();
    if sv.config.debug_statements {
        if line == "\\panic" {
            // Panic from *inside* the execution context, with the session's
            // registry moved into the transient ctx — the worst case for
            // state loss. The drop-guard in `try_with_ctx` restores the
            // registry during unwind; `catch_unwind` upstairs contains it.
            let _ = session
                .try_with_ctx(|_| -> () { panic!("deliberate panic via \\panic debug statement") });
            unreachable!("try_with_ctx propagates the closure's panic");
        }
        if line == "\\registry" {
            return Response::Text(format!(
                "{} indexes registered",
                session.registered_indexes()
            ));
        }
        if let Some(arg) = line.strip_prefix("\\sleep ") {
            let Ok(ms) = arg.trim().parse::<u64>() else {
                return Response::Error {
                    code: ErrorCode::Protocol,
                    message: "usage: \\sleep <ms>".into(),
                };
            };
            // Cooperative: sleep in slices so the deadline is honored
            // mid-request instead of only at completion.
            let until = Instant::now() + Duration::from_millis(ms);
            loop {
                let now = Instant::now();
                if now >= until {
                    return Response::Text(format!("slept {ms} ms"));
                }
                if now >= deadline {
                    return Response::Error {
                        code: ErrorCode::DeadlineExceeded,
                        message: format!("\\sleep {ms} interrupted by request deadline"),
                    };
                }
                std::thread::sleep((until - now).min(Duration::from_millis(5)));
            }
        }
    }
    if line == "\\metrics" {
        return match sv.shared.try_read() {
            Ok(db) => Response::Text(db.metrics().render_prometheus()),
            Err(e) => query_error(&e),
        };
    }
    let stmt = match instn_sql::parse(line) {
        Ok(s) => s,
        Err(e) => return sql_error(&e),
    };
    if !sv.config.query_stall.is_zero() {
        // Benchmark calibration: stand in for a disk-bound engine.
        std::thread::sleep(sv.config.query_stall);
    }
    match stmt {
        Statement::Select(sel) => {
            // Plan through the cost-based optimizer with the session's
            // plan cache (DESIGN.md §12): a repeat statement skips the
            // optimizer entirely unless a touched table advanced. The DOP
            // post-pass runs inside the optimizer, cost-gated.
            match plan_select(session, &sel) {
                Err(e) => sql_error(&e),
                Ok(planned) => {
                    // The statement enters the engine slow log tagged with
                    // its connection, so `\slowlog` attributes offenders.
                    let tagged = format!("[conn {conn_id}] {line}");
                    match session.execute_observed(&tagged, &planned.plan.plan) {
                        Ok(rows) => Response::Rows {
                            columns: planned.plan.columns.clone(),
                            rows: rows.iter().map(WireRow::from_tuple).collect(),
                        },
                        Err(e) => query_error(&e),
                    }
                }
            }
        }
        Statement::Explain(sel) => {
            // Render the *actual* optimized (possibly parallelized)
            // physical plan this session would execute, plus cache
            // status — not the naive logical plan the executor ignores.
            match plan_select(session, &sel) {
                Err(e) => sql_error(&e),
                Ok(planned) => Response::Text(render_explain(&planned)),
            }
        }
        Statement::ExplainAnalyze(_) => match explain_analyze_statement(session, line) {
            Err(e) => sql_error(&e),
            Ok(Some(analysis)) => Response::Text(format!("{analysis}")),
            Ok(None) => Response::Error {
                code: ErrorCode::Unsupported,
                message: "not an EXPLAIN ANALYZE statement".into(),
            },
        },
        Statement::Analyze => match sv.shared.try_read() {
            Err(e) => query_error(&e),
            Ok(db) => match refresh_statistics(session, &db) {
                Ok((_, true)) => Response::Text("statistics collected (full scan)".into()),
                Ok((_, false)) => Response::Text("statistics caught up from the journal".into()),
                Err(e) => sql_error(&e),
            },
        },
        Statement::ZoomIn { .. } | Statement::AlterTable { .. } => {
            // Both go through `execute_statement`, which needs `&mut` for
            // the DDL arm; zoom is read-only but rare enough that the
            // uniform path wins. The guard is dropped before any index
            // registration re-acquires a read guard.
            let outcome = match sv.shared.try_write() {
                Err(e) => return query_error(&e),
                Ok(mut db) => execute_statement(&mut db, &sv.instances, line),
            };
            match outcome {
                Err(e) => sql_error(&e),
                Ok(SqlOutcome::Zoom(annots)) => {
                    let mut out = String::new();
                    for a in annots.iter().take(50) {
                        out.push_str(&format!("[{}] {}\n", a.author, a.text));
                    }
                    out.push_str(&format!("({} annotations)\n", annots.len()));
                    Response::Text(out)
                }
                Ok(SqlOutcome::Altered {
                    instance,
                    table,
                    name,
                    deltas,
                    indexable,
                }) => {
                    if instance.is_some() && indexable {
                        match session.register_summary_index(
                            &name,
                            table,
                            &name,
                            instn_index::PointerMode::Backward,
                        ) {
                            Ok(()) => Response::Text(format!(
                                "ok (linked {name}, {} deltas journaled, summary index \
                                 registered)",
                                deltas.len()
                            )),
                            Err(e) => Response::Error {
                                code: ErrorCode::Exec,
                                message: format!("linked {name}, but index build failed: {e}"),
                            },
                        }
                    } else {
                        Response::Text(format!(
                            "ok (instance={instance:?}, {} deltas journaled, \
                             indexable={indexable})",
                            deltas.len()
                        ))
                    }
                }
                Ok(_) => Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "unexpected outcome for statement kind".into(),
                },
            }
        }
    }
}
