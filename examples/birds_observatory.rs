//! The paper's ornithology scenario end-to-end: a generated birds corpus,
//! a Summary-BTree over the disease classifier, and the three analytical
//! queries of the usability case study (Fig. 2 / Fig. 16) answered with
//! summary-based operators and the extended optimizer.
//!
//! ```text
//! cargo run --release --example birds_observatory
//! ```

use insightnotes::opt::cost::{CostModel, IndexInfo};
use insightnotes::prelude::*;

fn main() {
    // A corpus the size of the paper's case study: 100 birds with dozens of
    // annotations each.
    println!("generating the observatory corpus…");
    let corpus = Corpus::build(&CorpusConfig {
        n_tuples: 100,
        avg_annots_per_tuple: 60,
        seed: 7,
        ..CorpusConfig::default()
    });
    println!(
        "  {} birds, {} synonyms, {} raw annotations",
        corpus.birds.len(),
        corpus.synonyms.len(),
        corpus.annotation_count()
    );

    // Load it into an engine instance with the paper's summary instances.
    let mut db = Database::new();
    let birds = db
        .create_table("Birds", insightnotes::annot::gen::birds_schema())
        .expect("fresh database");
    let mut oid_map = Vec::new();
    for (_, tuple) in corpus.birds.scan() {
        oid_map.push(db.insert_tuple(birds, tuple).expect("same schema"));
    }
    for (i, &src_oid) in corpus.bird_oids.iter().enumerate() {
        for id in corpus.annotations.for_tuple(src_oid) {
            let a = corpus.annotations.get(id).expect("annotation exists");
            db.add_annotation(
                birds,
                &a.text,
                a.category,
                &a.author,
                vec![Attachment::row(oid_map[i])],
            )
            .expect("fits a page");
        }
    }
    // Train a classifier on themed text and link the instances.
    let mut model = NaiveBayes::new(vec![
        "Disease".into(),
        "Anatomy".into(),
        "Behavior".into(),
        "Other".into(),
    ]);
    {
        use insightnotes::annot::text;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..25 {
            for (cat, label) in [
                (Category::Disease, "Disease"),
                (Category::Anatomy, "Anatomy"),
                (Category::Behavior, "Behavior"),
                (Category::Other, "Other"),
            ] {
                model.train(&text::generate(&mut rng, cat, 200), label);
            }
        }
    }
    db.link_instance(
        birds,
        "ClassBird1",
        InstanceKind::Classifier { model },
        true,
    )
    .expect("instance name fresh");
    db.link_instance(
        birds,
        "TextSummary1",
        InstanceKind::Snippet {
            min_chars: 1000,
            max_chars: 400,
        },
        false,
    )
    .expect("instance name fresh");

    // Index + optimizer.
    let index =
        SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).expect("built");
    println!(
        "  Summary-BTree: {} keys, height {}",
        index.len(),
        index.height()
    );
    let mut ctx = ExecContext::new(&db);
    ctx.register_summary_index("disease_idx", index);
    let config = PlannerConfig::default().with_summary_index("disease_idx", birds, "ClassBird1", 4);
    let optimizer = Optimizer::new(&db, config.clone()).expect("stats collected");

    // Q1 — "birds with many disease reports, most affected first".
    let q1 = LogicalPlan::scan("Birds")
        .summary_select(Expr::label_cmp("ClassBird1", "Disease", CmpOp::Ge, 8))
        .sort(
            SortKey::Summary(SummaryExpr::label_value("ClassBird1", "Disease")),
            true,
        );
    let chosen = optimizer.optimize(&q1).expect("plans");
    println!(
        "\nQ1 plan ({} alternatives considered, est. cost {:.1}):\n{}",
        chosen.considered,
        chosen.cost.total(),
        chosen.explain
    );
    let rows = ctx.execute(&chosen.physical).expect("executes");
    println!(
        "Q1: {} heavily disease-annotated birds (top 3):",
        rows.len()
    );
    for r in rows.iter().take(3) {
        println!(
            "  {:<24} disease={}",
            format!("{}", r.values[2]),
            SummaryExpr::label_value("ClassBird1", "Disease").eval(r)
        );
    }

    // Q2 — "how much behavior lore do we have per family?"
    let q2 = LogicalPlan::scan("Birds").group_by(vec![4]);
    let physical = lower_naive(&db, &q2).expect("lowers");
    let groups = ctx.execute(&physical).expect("executes");
    println!("\nQ2: behavior annotations per family:");
    for g in &groups {
        println!(
            "  {:<12} members={:<3} behavior={}",
            format!("{}", g.values[0]),
            g.values[1],
            SummaryExpr::label_value("ClassBird1", "Behavior").eval(g)
        );
    }

    // Q3 — zoom into the most disease-annotated bird's raw reports.
    let top = &rows[0];
    let (_, top_oid) = top.source.expect("single-sourced");
    let reports = zoom_in(
        &db,
        birds,
        top_oid,
        "ClassBird1",
        &ZoomTarget::ClassLabel("Disease".into()),
    )
    .expect("summary exists");
    println!(
        "\nQ3: raw disease reports behind {} ({} annotations, first shown):",
        top.values[2],
        reports.len()
    );
    if let Some(first) = reports.first() {
        let preview: String = first.text.chars().take(80).collect();
        println!("  “{preview}…”");
    }

    // Show the cost model's view of the chosen Q1 plan.
    let stats = Statistics::analyze(&db).expect("analyzable");
    let info: IndexInfo = config.index_info();
    let model = CostModel::new(&stats, &info);
    println!(
        "\ncost model: Q1 chosen plan = {:.1} units, naive plan = {:.1} units",
        model.cost(&chosen.physical).total(),
        model.cost(&lower_naive(&db, &q1).expect("lowers")).total()
    );
    println!("\nbirds_observatory OK");
}
