//! A curation workflow: incremental summary maintenance under annotation
//! add / delete, live Summary-BTree maintenance from the delta stream, and
//! the propagation algebra at work (projection-time elimination and
//! join-time merging with common-annotation de-duplication).
//!
//! ```text
//! cargo run --example curation_workflow
//! ```

use insightnotes::prelude::*;

fn main() {
    let mut db = Database::new();
    let specimens = db
        .create_table(
            "Specimens",
            Schema::of(&[
                ("id", ColumnType::Int),
                ("label", ColumnType::Text),
                ("location", ColumnType::Text),
            ]),
        )
        .expect("fresh database");

    let mut model = NaiveBayes::new(vec!["Disease".into(), "Provenance".into()]);
    model.train(
        "disease outbreak infection virus lesion parasite",
        "Disease",
    );
    model.train("imported from museum catalog lineage record", "Provenance");
    db.link_instance(
        specimens,
        "Class1",
        InstanceKind::Classifier { model },
        true,
    )
    .expect("instance name fresh");
    db.link_instance(
        specimens,
        "Clusters",
        InstanceKind::Cluster {
            params: ClusterParams::default(),
        },
        false,
    )
    .expect("instance name fresh");

    let a = db
        .insert_tuple(
            specimens,
            vec![
                Value::Int(1),
                Value::Text("SG-001".into()),
                Value::Text("lake".into()),
            ],
        )
        .expect("matches schema");
    let b = db
        .insert_tuple(
            specimens,
            vec![
                Value::Int(2),
                Value::Text("SG-002".into()),
                Value::Text("coast".into()),
            ],
        )
        .expect("matches schema");

    // The index is maintained live from the delta stream.
    let mut index =
        SummaryBTree::empty(&db, specimens, "Class1", PointerMode::Backward).expect("instance");

    let annotate =
        |db: &mut Database, index: &mut SummaryBTree, oid, text: &str, cols: Option<&[usize]>| {
            let att = match cols {
                Some(c) => Attachment::cells(oid, c),
                None => Attachment::row(oid),
            };
            let (id, deltas) = db
                .add_annotation(specimens, text, Category::Other, "curator", vec![att])
                .expect("fits a page");
            for d in &deltas {
                index.apply_delta(db, d).expect("maintains");
            }
            println!(
                "+ annotated {oid:?}: \"{text}\" ({} index keys now)",
                index.len()
            );
            id
        };

    println!("== incremental annotation ==");
    let a1 = annotate(
        &mut db,
        &mut index,
        a,
        "disease lesion found on specimen",
        None,
    );
    annotate(&mut db, &mut index, a, "virus infection suspected", None);
    // This one is attached ONLY to the location column.
    annotate(
        &mut db,
        &mut index,
        a,
        "catalog record imported from museum",
        Some(&[2]),
    );
    let shared = annotate(
        &mut db,
        &mut index,
        b,
        "outbreak affecting both specimens",
        None,
    );
    // The same annotation also attached to specimen A (multi-tuple).
    let deltas = db
        .attach_annotation(specimens, shared, vec![Attachment::row(a)])
        .expect("annotation exists");
    for d in &deltas {
        index.apply_delta(&db, d).expect("maintains");
    }
    println!("+ attached the outbreak note to both specimens");

    // Query through the index.
    println!("\n== index-served selection ==");
    let hits = index.search_range("Disease", Some(2), None);
    println!(
        "specimens with ≥2 disease annotations: {} hit(s)",
        hits.len()
    );

    println!("\n== projection-time elimination (Fig. 3 step 1) ==");
    let mut ctx = ExecContext::new(&db);
    let project = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::SeqScan {
            table: specimens,
            with_summaries: true,
        }),
        cols: vec![0, 1], // drops `location` — and the catalog note's effect
        eliminate: true,
    };
    let rows = ctx.execute(&project).expect("executes");
    for r in &rows {
        if r.oid() == Some(a) {
            let prov = SummaryExpr::label_value("Class1", "Provenance").eval(r);
            println!("specimen A provenance count after projecting out `location`: {prov}");
            assert_eq!(prov.as_int(), Some(0), "cell annotation eliminated");
        }
    }

    println!("\n== join-time merge with common-annotation dedup (Fig. 3 step 3) ==");
    let join = PhysicalPlan::NestedLoopJoin {
        left: Box::new(PhysicalPlan::SeqScan {
            table: specimens,
            with_summaries: true,
        }),
        right: Box::new(PhysicalPlan::SeqScan {
            table: specimens,
            with_summaries: true,
        }),
        pred: JoinPredicate::SummaryCmp {
            left: SummaryExpr::label_value("Class1", "Disease"),
            op: CmpOp::Gt,
            right: SummaryExpr::label_value("Class1", "Disease"),
        },
    };
    let pairs = ctx.execute(&join).expect("executes");
    for p in &pairs {
        let merged = SummaryExpr::label_value("Class1", "Disease").eval(p);
        println!("merged pair disease count = {merged} (shared annotation counted once)");
    }

    println!("\n== deletion reverses everything ==");
    let deltas = db.delete_annotation(a1).expect("annotation exists");
    for d in &deltas {
        index.apply_delta(&db, d).expect("maintains");
    }
    let set = db.summaries_of(specimens, a).expect("row exists");
    let class1 = set
        .iter()
        .find(|o| o.instance_name == "Class1")
        .expect("object exists");
    if let Rep::Classifier(c) = &class1.rep {
        println!(
            "specimen A after deleting the lesion note: Disease={}",
            c.count("Disease").unwrap_or(0)
        );
    }
    println!(
        "index ops so far: {} inserts, {} deletes, {} searches",
        index.ops.key_inserts, index.ops.key_deletes, index.ops.searches
    );
    println!("\ncuration_workflow OK");
}
