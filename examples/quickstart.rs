//! Quickstart: build a tiny annotated database, query the annotation
//! summaries as first-class citizens, zoom back into the raw annotations.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use insightnotes::prelude::*;

fn main() {
    // 1. A database with one user relation.
    let mut db = Database::new();
    let birds = db
        .create_table(
            "Birds",
            Schema::of(&[
                ("id", ColumnType::Int),
                ("name", ColumnType::Text),
                ("family", ColumnType::Text),
            ]),
        )
        .expect("fresh database");

    // 2. A classifier summary instance: every incoming annotation is
    //    classified into one of these labels and counted.
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into(), "Other".into()]);
    model.train(
        "disease outbreak infection virus parasite lesion",
        "Disease",
    );
    model.train("symptom mortality influenza pox", "Disease");
    model.train(
        "eating foraging migration song nesting stonewort",
        "Behavior",
    );
    model.train("flock roosting courtship preening", "Behavior");
    model.train("field station weather volunteer note", "Other");
    model.train("project count season misc", "Other");
    db.link_instance(
        birds,
        "ClassBird1",
        InstanceKind::Classifier { model },
        true,
    )
    .expect("instance name fresh");

    // 3. Data + annotations.
    let swan = db
        .insert_tuple(
            birds,
            vec![
                Value::Int(1),
                Value::Text("Swan Goose".into()),
                Value::Text("Anatidae".into()),
            ],
        )
        .expect("matches schema");
    let crow = db
        .insert_tuple(
            birds,
            vec![
                Value::Int(2),
                Value::Text("Carrion Crow".into()),
                Value::Text("Corvidae".into()),
            ],
        )
        .expect("matches schema");
    for text in [
        "observed disease outbreak with lesions on the wing",
        "another infection case, virus suspected",
        "found eating stonewort near the lake",
    ] {
        db.add_annotation(
            birds,
            text,
            Category::Other,
            "alice",
            vec![Attachment::row(swan)],
        )
        .expect("fits a page");
    }
    db.add_annotation(
        birds,
        "territorial behavior while roosting",
        Category::Other,
        "bob",
        vec![Attachment::row(crow)],
    )
    .expect("fits a page");

    // 4. The summaries ARE the query surface: select birds with at least
    //    two disease-related annotations, no raw-annotation reading needed.
    let plan = LogicalPlan::scan("Birds").summary_select(Expr::label_cmp(
        "ClassBird1",
        "Disease",
        CmpOp::Ge,
        2,
    ));
    let physical = lower_naive(&db, &plan).expect("lowers");
    let rows = ExecContext::new(&db).execute(&physical).expect("executes");
    println!("birds with ≥2 disease annotations:");
    for r in &rows {
        let disease = SummaryExpr::label_value("ClassBird1", "Disease").eval(r);
        println!("  {} ({} disease annotations)", r.values[1], disease);
    }
    assert_eq!(rows.len(), 1);

    // 5. Zoom in: recover the raw annotations behind the summary.
    let raw = zoom_in(
        &db,
        birds,
        swan,
        "ClassBird1",
        &ZoomTarget::ClassLabel("Disease".into()),
    )
    .expect("summary exists");
    println!("\nzoom-in on the Swan Goose's disease annotations:");
    for a in &raw {
        println!("  [{}] {}", a.author, a.text);
    }
    assert_eq!(raw.len(), 2);
    println!("\nquickstart OK");
}
