//! A scripted session against the extended SQL front end: the paper's DDL
//! (`ALTER TABLE … ADD [INDEXABLE] <Instance>`), summary method chains in
//! `WHERE`/`ORDER BY`, and the zoom-in command — served through the
//! multi-session layer: statements that write take the [`SharedDatabase`]
//! write guard, queries run through a [`Session`] so each executes against
//! one consistent snapshot with the session's own index registry.
//!
//! ```text
//! cargo run --example sql_session
//! ```

use std::collections::HashMap;

use insightnotes::prelude::*;

fn main() {
    let mut db = Database::new();
    let birds = db
        .create_table(
            "Birds",
            Schema::of(&[
                ("id", ColumnType::Int),
                ("common_name", ColumnType::Text),
                ("family", ColumnType::Text),
            ]),
        )
        .expect("fresh database");

    // Data + annotations first (bulk-load style).
    for i in 0..12i64 {
        let name = if i % 3 == 0 {
            format!("Swan {i}")
        } else {
            format!("Gull {i}")
        };
        let oid = db
            .insert_tuple(
                birds,
                vec![
                    Value::Int(i),
                    Value::Text(name),
                    Value::Text(format!("family{}", i % 2)),
                ],
            )
            .expect("matches schema");
        for k in 0..i {
            let text = if k % 2 == 0 {
                "disease outbreak infection observed"
            } else {
                "seen foraging and eating stonewort"
            };
            db.add_annotation(
                birds,
                text,
                Category::Other,
                "sql-demo",
                vec![Attachment::row(oid)],
            )
            .expect("fits a page");
        }
    }

    // The instance registry the DDL resolves names against.
    let mut registry: HashMap<String, InstanceKind> = HashMap::new();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus lesion", "Disease");
    model.train("foraging eating stonewort migration song", "Behavior");
    registry.insert("ClassBird1".into(), InstanceKind::Classifier { model });

    // Hand the engine to the serving layer; any number of such sessions
    // could now run concurrently over `shared.clone()`.
    let shared = SharedDatabase::new(db);
    let mut session = shared.session();

    let mut run = |sql: &str| {
        println!("sql> {sql}");
        match shared.with_write(|db| execute_statement(db, &registry, sql)) {
            Ok(SqlOutcome::Altered {
                instance,
                deltas,
                indexable,
                ..
            }) => {
                println!(
                    "     linked/dropped (instance={instance:?}, {} deltas, indexable={indexable})\n",
                    deltas.len()
                );
            }
            Ok(SqlOutcome::Analyzed(_)) => {
                println!("     statistics collected\n");
            }
            Ok(SqlOutcome::Explain(text)) => {
                println!("     plan:\n{}", text.trim_end());
                println!();
            }
            Ok(SqlOutcome::ExplainAnalyzed(analysis)) => {
                println!(
                    "     {}",
                    format!("{analysis}").trim_end().replace('\n', "\n     ")
                );
                println!();
            }
            Ok(SqlOutcome::Zoom(annots)) => {
                println!("     {} raw annotations:", annots.len());
                for a in annots.iter().take(3) {
                    println!("       - {}", a.text);
                }
                println!();
            }
            Ok(SqlOutcome::Query(q)) => {
                let rows = session
                    .with_ctx(|ctx| {
                        let physical = lower_naive(ctx.db, &q.plan)?;
                        ctx.execute(&physical)
                    })
                    .expect("executes");
                println!("     {} rows  (columns: {:?})", rows.len(), q.columns);
                for r in rows.iter().take(5) {
                    let vals: Vec<String> = r.values.iter().map(|v| format!("{v}")).collect();
                    println!("       {}", vals.join(" | "));
                }
                println!();
            }
            Err(e) => println!("     ERROR: {e}\n"),
        }
    };

    // 1. The extended DDL links and summarizes in one statement.
    run("ALTER TABLE Birds ADD INDEXABLE ClassBird1;");

    // 2. Summary-based selection: the paper's flagship predicate form.
    run("SELECT id, common_name FROM Birds r WHERE \
         r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3;");

    // 3. Mixed data + summary predicates.
    run(
        "SELECT id, common_name FROM Birds r WHERE common_name LIKE 'Swan%' AND \
         r.$.getSummaryObject('ClassBird1').getLabelValue('Behavior') >= 2;",
    );

    // 4. Summary-based ORDER BY (the O operator) with projection and LIMIT.
    run("SELECT common_name FROM Birds r \
         ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC LIMIT 3;");

    // 5. Grouping merges the groups' summaries on the fly.
    run("SELECT family FROM Birds GROUP BY family;");

    // 6. EXPLAIN shows the lowered logical plan.
    run("EXPLAIN SELECT common_name FROM Birds r WHERE \
         r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3 \
         ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC;");

    // 6b. EXPLAIN ANALYZE also executes the plan and reports the observed
    //     physical/logical I/O and the buffer-pool hit ratio.
    run("EXPLAIN ANALYZE SELECT common_name FROM Birds r WHERE \
         r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3;");

    // 7. Zoom-in: from a summary back to the raw annotations.
    run("ZOOM IN ON ClassBird1 OF Birds TUPLE 12 LABEL 'Disease';");

    // 7. Drop the instance again.
    run("ALTER TABLE Birds DROP ClassBird1;");

    println!("sql_session OK");
}
