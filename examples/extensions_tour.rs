//! Tour of the extensions this reproduction adds beyond the paper:
//!
//! * **multi-level summarization** (`TableRollup`) — the paper's stated
//!   future work: a level-2 summary object per table, queryable with the
//!   same manipulation functions,
//! * the **inverted keyword index** over Snippet objects — filling the gap
//!   Fig. 15 notes ("no summary-based index can be used" for keyword
//!   predicates),
//! * the **index-based summary join** (the second `J` implementation §5.2
//!   names), chosen automatically by the optimizer,
//! * `SELECT DISTINCT` with summary merging, and `EXPLAIN`-style plan
//!   rendering.
//!
//! ```text
//! cargo run --example extensions_tour
//! ```

use insightnotes::core::rollup::TableRollup;
use insightnotes::index::KeywordIndex;
use insightnotes::prelude::*;

fn main() {
    let mut db = Database::new();
    let birds = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
        )
        .expect("fresh database");
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus lesion", "Disease");
    model.train("foraging eating migration song nesting", "Behavior");
    db.link_instance(
        birds,
        "ClassBird1",
        InstanceKind::Classifier { model },
        true,
    )
    .expect("fresh name");
    db.link_instance(
        birds,
        "TextSummary1",
        InstanceKind::Snippet {
            min_chars: 40,
            max_chars: 200,
        },
        false,
    )
    .expect("fresh name");

    for i in 0..10i64 {
        let oid = db
            .insert_tuple(
                birds,
                vec![Value::Int(i), Value::Text(format!("family{}", i % 2))],
            )
            .expect("matches schema");
        for _ in 0..i {
            db.add_annotation(
                birds,
                "disease outbreak infection",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .expect("fits");
        }
        if i % 3 == 0 {
            db.add_annotation(
                birds,
                "long wikipedia article describing hormone levels and wetland foraging behavior",
                Category::Comment,
                "u",
                vec![Attachment::row(oid)],
            )
            .expect("fits");
        }
    }

    // --- Multi-level summarization -------------------------------------
    println!("== level-2 table rollup ==");
    let mut rollup = TableRollup::build(&db, birds, "ClassBird1").expect("instance linked");
    let Rep::Classifier(c) = &rollup.object().rep else {
        unreachable!()
    };
    println!(
        "whole-table ClassBird1: Disease={} Behavior={}",
        c.count("Disease").unwrap(),
        c.count("Behavior").unwrap()
    );
    // Maintained incrementally from the same delta stream as the indexes.
    let (_, deltas) = db
        .add_annotation(
            birds,
            "another disease case",
            Category::Disease,
            "u",
            vec![Attachment::row(Oid(1))],
        )
        .expect("fits");
    for d in &deltas {
        rollup.apply_delta(d).expect("classifier rollup");
    }
    let Rep::Classifier(c) = &rollup.object().rep else {
        unreachable!()
    };
    println!(
        "after one more annotation: Disease={} (approximate={})",
        c.count("Disease").unwrap(),
        rollup.is_approximate()
    );

    // --- Keyword index ---------------------------------------------------
    println!("\n== inverted keyword index over snippets ==");
    let kidx = KeywordIndex::bulk_build(&db, birds, "TextSummary1", PointerMode::Backward)
        .expect("instance linked");
    let hits = kidx.search_all(&["wikipedia", "hormone"]);
    println!(
        "containsUnion('wikipedia','hormone'): {} tuples via {} postings",
        hits.len(),
        kidx.len()
    );

    // --- Index-based summary join + EXPLAIN ------------------------------
    println!("\n== optimizer chooses the index-based summary join ==");
    let logical = LogicalPlan::scan("Birds")
        .select(Expr::col_cmp(0, CmpOp::Eq, Value::Int(7)))
        .summary_join(
            LogicalPlan::scan("Birds"),
            JoinPredicate::SummaryCmp {
                left: SummaryExpr::label_value("ClassBird1", "Disease"),
                op: CmpOp::Eq,
                right: SummaryExpr::label_value("ClassBird1", "Disease"),
            },
        );
    let config = PlannerConfig::default().with_summary_index("idx", birds, "ClassBird1", 2);
    let optimizer = Optimizer::new(&db, config).expect("stats");
    let chosen = optimizer.optimize(&logical).expect("plans");
    println!("{}", chosen.physical); // EXPLAIN-style rendering
    let mut ctx = ExecContext::new(&db);
    ctx.register_summary_index(
        "idx",
        SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).expect("built"),
    );
    let rows = ctx.execute(&chosen.physical).expect("executes");
    println!(
        "bird 7 joins {} partner(s) with equal disease counts",
        rows.len()
    );

    // --- DISTINCT with summary merging ------------------------------------
    println!("\n== summary-aware DISTINCT ==");
    let plan = LogicalPlan::scan("Birds").project(vec![1]).distinct();
    let rows = ctx
        .execute(&lower_naive(&db, &plan).expect("lowers"))
        .expect("executes");
    for r in &rows {
        println!(
            "family {} -> merged Disease count {}",
            r.values[0],
            SummaryExpr::label_value("ClassBird1", "Disease").eval(r)
        );
    }
    println!("\nextensions_tour OK");
}
