//! The paper's Fig. 3 worked example, reproduced end-to-end.
//!
//! Query: `SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2`
//! over tuple `r` (four summary objects) and tuple `s` (two summary
//! objects). The figure prescribes exact intermediate and final states:
//!
//! 1. projection eliminates the annotations attached only to `r.c`/`r.d`
//!    (and `s.y`): classifier counts drop to the figure's numbers, the
//!    "Wikipedia article" snippet disappears, a cluster representative is
//!    re-elected;
//! 2. the selection `r.b = 2` passes everything through unchanged;
//! 3. the join merges `ClassBird2` with common annotations counted ONCE
//!    (the "22 instead of 27" example) while `ClassBird1` and
//!    `TextSummary1` propagate untouched.

use insightnotes::core::instance::InstanceScope;
use insightnotes::prelude::*;

/// Nonce-word classifier: deterministic label assignment.
fn classifier(labels: &[&str]) -> InstanceKind {
    let mut model = NaiveBayes::new(labels.iter().map(|l| l.to_string()).collect());
    for l in labels {
        let nonce = format!("nonce{} nonce{}x nonce{}y", l, l, l);
        model.train(&nonce.to_lowercase(), l);
    }
    InstanceKind::Classifier { model }
}

/// Annotation text carrying the classifier's deterministic nonce plus an
/// instance-scope marker ("cb1" / "cb2"), so each classifier instance
/// summarizes only its own annotation subset — which is how Fig. 1/3's two
/// classifiers report different totals over one tuple.
fn nonce_text(scope: &str, label: &str) -> String {
    format!("{scope} nonce{} nonce{}x", label, label).to_lowercase()
}

struct Fixture {
    db: Database,
    r_table: TableId,
    s_table: TableId,
    r: Oid,
    s: Oid,
}

/// Build R(a,b,c,d) with tuple r and S(x,y,z) with tuple s, annotated so the
/// figure's numbers come out exactly.
fn build() -> Fixture {
    let mut db = Database::new();
    let r_table = db
        .create_table(
            "R",
            Schema::of(&[
                ("a", ColumnType::Int),
                ("b", ColumnType::Int),
                ("c", ColumnType::Int),
                ("d", ColumnType::Int),
            ]),
        )
        .unwrap();
    let s_table = db
        .create_table(
            "S",
            Schema::of(&[
                ("x", ColumnType::Int),
                ("y", ColumnType::Int),
                ("z", ColumnType::Int),
            ]),
        )
        .unwrap();
    // ClassBird1 + TextSummary1 on R only; ClassBird2 on both R and S.
    db.link_instance_scoped(
        r_table,
        "ClassBird1",
        classifier(&["Behavior", "Disease", "Anatomy", "Other"]),
        false,
        Some(InstanceScope::ContainsAny(vec!["cb1".into()])),
    )
    .unwrap();
    db.link_instance_scoped(
        r_table,
        "ClassBird2",
        classifier(&["Provenance", "Comment", "Question"]),
        false,
        Some(InstanceScope::ContainsAny(vec!["cb2".into()])),
    )
    .unwrap();
    db.link_instance(
        r_table,
        "TextSummary1",
        InstanceKind::Snippet {
            min_chars: 50,
            max_chars: 400,
        },
        false,
    )
    .unwrap();
    db.link_instance_scoped(
        s_table,
        "ClassBird2",
        classifier(&["Provenance", "Comment", "Question"]),
        false,
        Some(InstanceScope::ContainsAny(vec!["cb2".into()])),
    )
    .unwrap();

    let r = db
        .insert_tuple(
            r_table,
            vec![Value::Int(1), Value::Int(2), Value::Int(30), Value::Int(40)],
        )
        .unwrap();
    let s = db
        .insert_tuple(s_table, vec![Value::Int(1), Value::Int(9), Value::Int(7)])
        .unwrap();

    // ClassBird1 on r: pre-projection (Behavior 33, Disease 8, Anatomy 25,
    // Other 16); keeping {a, b} leaves (14, 2, 16, 0) — Fig. 3 step 1.
    let add_r = |db: &mut Database, scope: &str, label: &str, surviving: usize, dropped: usize| {
        for _ in 0..surviving {
            db.add_annotation(
                r_table,
                &nonce_text(scope, label),
                Category::Other,
                "t",
                vec![Attachment::cells(r, &[0, 1])],
            )
            .unwrap();
        }
        for _ in 0..dropped {
            db.add_annotation(
                r_table,
                &nonce_text(scope, label),
                Category::Other,
                "t",
                vec![Attachment::cells(r, &[2, 3])],
            )
            .unwrap();
        }
    };
    add_r(&mut db, "cb1", "Behavior", 14, 19);
    add_r(&mut db, "cb1", "Disease", 2, 6);
    add_r(&mut db, "cb1", "Anatomy", 16, 9);
    add_r(&mut db, "cb1", "Other", 0, 16);

    // ClassBird2 on r: non-shared part post-projection (Provenance 2,
    // Comment 2, Question 0); dropped-with-c/d (3, 3, 0).
    add_r(&mut db, "cb2", "Provenance", 2, 3);
    add_r(&mut db, "cb2", "Comment", 2, 3);

    // ClassBird2 on s: non-shared surviving on x (Provenance 7, Comment 15,
    // Question 1); dropped with y (2, 5, 2).
    let add_s = |db: &mut Database, label: &str, surviving: usize, dropped: usize| {
        for _ in 0..surviving {
            db.add_annotation(
                s_table,
                &nonce_text("cb2", label),
                Category::Other,
                "t",
                vec![Attachment::cells(s, &[0])],
            )
            .unwrap();
        }
        for _ in 0..dropped {
            db.add_annotation(
                s_table,
                &nonce_text("cb2", label),
                Category::Other,
                "t",
                vec![Attachment::cells(s, &[1])],
            )
            .unwrap();
        }
    };
    add_s(&mut db, "Provenance", 7, 2);
    add_s(&mut db, "Comment", 15, 5);
    add_s(&mut db, "Question", 1, 2);

    // Shared annotations on BOTH r and s (row-level, so they survive both
    // projections): 5 Comment + 1 Question.
    for _ in 0..5 {
        let (id, _) = db
            .add_annotation(
                r_table,
                &nonce_text("cb2", "Comment"),
                Category::Comment,
                "t",
                vec![Attachment::row(r)],
            )
            .unwrap();
        db.attach_annotation(s_table, id, vec![Attachment::row(s)])
            .unwrap();
    }
    let (qid, _) = db
        .add_annotation(
            r_table,
            &nonce_text("cb2", "Question"),
            Category::Question,
            "t",
            vec![Attachment::row(r)],
        )
        .unwrap();
    db.attach_annotation(s_table, qid, vec![Attachment::row(s)])
        .unwrap();

    // TextSummary1 on r: "Experiment E" attached to a (survives) and the
    // "Wikipedia article" attached only to c (eliminated by the projection).
    db.add_annotation(
        r_table,
        &format!(
            "Experiment E produced results. {}",
            "More detail follows here. ".repeat(4)
        ),
        Category::Other,
        "t",
        vec![Attachment::cells(r, &[0])],
    )
    .unwrap();
    db.add_annotation(
        r_table,
        &format!(
            "Wikipedia article about geese. {}",
            "Encyclopedic filler text. ".repeat(4)
        ),
        Category::Other,
        "t",
        vec![Attachment::cells(r, &[2])],
    )
    .unwrap();

    Fixture {
        db,
        r_table,
        s_table,
        r,
        s,
    }
}

fn label_counts(t: &AnnotatedTuple, instance: &str, labels: &[&str]) -> Vec<i64> {
    labels
        .iter()
        .map(|l| {
            SummaryExpr::label_value(instance, l)
                .eval(t)
                .as_int()
                .unwrap_or(-1)
        })
        .collect()
}

#[test]
fn pre_projection_counts_match_the_figure() {
    let f = build();
    let r = f.db.annotated_tuple(f.r_table, f.r).unwrap();
    assert_eq!(
        label_counts(
            &r,
            "ClassBird1",
            &["Behavior", "Disease", "Anatomy", "Other"]
        ),
        vec![33, 8, 25, 16]
    );
    assert_eq!(
        label_counts(&r, "ClassBird2", &["Provenance", "Comment", "Question"]),
        vec![5, 10, 1]
    );
    let s = f.db.annotated_tuple(f.s_table, f.s).unwrap();
    assert_eq!(
        label_counts(&s, "ClassBird2", &["Provenance", "Comment", "Question"]),
        vec![9, 25, 4]
    );
}

#[test]
fn fig3_spj_pipeline_produces_the_prescribed_states() {
    let f = build();
    let mut ctx = ExecContext::new(&f.db);

    // Step 1a: π over r keeps {a, b}.
    let r_projected = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::SeqScan {
            table: f.r_table,
            with_summaries: true,
        }),
        cols: vec![0, 1],
        eliminate: true,
    };
    let rows = ctx.execute(&r_projected).unwrap();
    let r1 = &rows[0];
    assert_eq!(
        label_counts(
            r1,
            "ClassBird1",
            &["Behavior", "Disease", "Anatomy", "Other"]
        ),
        vec![14, 2, 16, 0],
        "Fig. 3 step 1: ClassBird1 after eliminating c/d annotations"
    );
    assert_eq!(
        label_counts(r1, "ClassBird2", &["Provenance", "Comment", "Question"]),
        vec![2, 7, 1],
        "Fig. 3 step 1: ClassBird2 on r after projection"
    );
    // The Wikipedia snippet is gone; Experiment E survives.
    let snip = r1.summary_by_name("TextSummary1").unwrap();
    let Rep::Snippet(sn) = &snip.rep else {
        panic!()
    };
    assert_eq!(sn.entries.len(), 1, "one snippet eliminated");
    assert!(sn.entries[0].snippet.contains("Experiment E"));

    // Step 1b: π over s keeps {x, z} (x is needed by the join).
    let s_projected = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::SeqScan {
            table: f.s_table,
            with_summaries: true,
        }),
        cols: vec![0, 2],
        eliminate: true,
    };
    let rows = ctx.execute(&s_projected).unwrap();
    let s1 = &rows[0];
    assert_eq!(
        label_counts(s1, "ClassBird2", &["Provenance", "Comment", "Question"]),
        vec![7, 20, 2],
        "Fig. 3 step 1: ClassBird2 on s after projecting out y"
    );

    // Steps 2–4: σ(r.b = 2), join on a = x, final projection to (a, b, z).
    let full = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::Filter {
                input: Box::new(r_projected),
                pred: Expr::col_cmp(1, CmpOp::Eq, Value::Int(2)),
            }),
            right: Box::new(s_projected),
            pred: JoinPredicate::DataEq {
                left_col: 0,
                right_col: 0,
            },
        }),
        cols: vec![0, 1, 3],
        eliminate: false, // post-join: summaries already merged
    };
    let rows = ctx.execute(&full).unwrap();
    assert_eq!(rows.len(), 1);
    let out = &rows[0];
    assert_eq!(
        out.values,
        vec![Value::Int(1), Value::Int(2), Value::Int(7)],
        "output is (r.a, r.b, s.z)"
    );
    // ClassBird1 and TextSummary1 propagate unchanged (no counterpart on s).
    assert_eq!(
        label_counts(
            out,
            "ClassBird1",
            &["Behavior", "Disease", "Anatomy", "Other"]
        ),
        vec![14, 2, 16, 0]
    );
    let snip = out.summary_by_name("TextSummary1").unwrap();
    assert_eq!(snip.size(), 1);
    // ClassBird2 merges: Provenance 2+7=9, Comment 7+20−5 common = 22
    // ("22 instead of 27"), Question 1+2−1 common = 2.
    assert_eq!(
        label_counts(out, "ClassBird2", &["Provenance", "Comment", "Question"]),
        vec![9, 22, 2],
        "Fig. 3 step 3: merge counts each common annotation once"
    );
}

#[test]
fn selection_leaves_summaries_untouched() {
    let f = build();
    let mut ctx = ExecContext::new(&f.db);
    let scan = PhysicalPlan::SeqScan {
        table: f.r_table,
        with_summaries: true,
    };
    let select = PhysicalPlan::Filter {
        input: Box::new(scan.clone()),
        pred: Expr::col_cmp(1, CmpOp::Eq, Value::Int(2)),
    };
    let before = ctx.execute(&scan).unwrap();
    let after = ctx.execute(&select).unwrap();
    assert_eq!(before[0].summaries, after[0].summaries, "Fig. 3 step 2");
}

#[test]
fn cluster_representative_reelection_on_projection() {
    // A separate cluster fixture: one group whose representative is attached
    // only to a dropped column.
    let mut db = Database::new();
    let t = db
        .create_table(
            "R",
            Schema::of(&[("a", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    db.link_instance(
        t,
        "SimCluster",
        InstanceKind::Cluster {
            params: ClusterParams::default(),
        },
        false,
    )
    .unwrap();
    let r = db
        .insert_tuple(t, vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    // Three near-identical texts cluster together; the FIRST becomes the
    // representative and is attached only to the dropped column c.
    db.add_annotation(
        t,
        "swan goose large size wingspan",
        Category::Other,
        "t",
        vec![Attachment::cells(r, &[1])],
    )
    .unwrap();
    db.add_annotation(
        t,
        "swan goose large size weight",
        Category::Other,
        "t",
        vec![Attachment::cells(r, &[0])],
    )
    .unwrap();
    db.add_annotation(
        t,
        "swan goose large size plumage",
        Category::Other,
        "t",
        vec![Attachment::cells(r, &[0])],
    )
    .unwrap();
    let before = db.annotated_tuple(t, r).unwrap();
    let cluster = before.summary_by_name("SimCluster").unwrap();
    let Rep::Cluster(c) = &cluster.rep else {
        panic!()
    };
    assert_eq!(c.groups.len(), 1, "one similarity group");
    assert_eq!(c.groups[0].size, 3);
    let old_rep = c.groups[0].rep_annot;

    let mut ctx = ExecContext::new(&db);
    let plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        }),
        cols: vec![0],
        eliminate: true,
    };
    let rows = ctx.execute(&plan).unwrap();
    let cluster = rows[0].summary_by_name("SimCluster").unwrap();
    let Rep::Cluster(c) = &cluster.rep else {
        panic!()
    };
    assert_eq!(c.groups[0].size, 2, "the c-only annotation dropped");
    if old_rep == c.groups[0].rep_annot {
        // The dropped annotation wasn't the representative in this corpus;
        // the invariant that matters is that the representative is always a
        // surviving member.
    }
    assert!(
        c.groups[0].members.contains(&c.groups[0].rep_annot),
        "Fig. 3: a surviving member is (re-)elected as representative"
    );
}
