//! Property-based tests (proptest) over the core data structures and the
//! propagation-algebra invariants the paper's theorems rest on.

use std::collections::{BTreeMap, HashSet};

use proptest::prelude::*;

use insightnotes::annot::AnnotId;
use insightnotes::core::algebra::{merge_objects, project_eliminate};
use insightnotes::core::summary::{
    decode_objects, encode_objects, ClassifierRep, InstanceId, ObjId, Rep, SnippetEntry,
    SnippetRep, SummaryObject,
};
use insightnotes::index::itemize::{itemize_key, ItemizeWidth};
use insightnotes::opt::stats::LabelStats;
use insightnotes::storage::btree::BTree;
use insightnotes::storage::io::IoStats;
use insightnotes::storage::tuple::{decode_tuple, encode_tuple};
use insightnotes::storage::{HeapFile, Value};

// --------------------------------------------------------------------
// B-Tree vs a BTreeMap<Vec<u8>, Vec<u64>> model.
// --------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BtOp {
    Insert(u8, u64),
    Delete(u8, u64),
    Range(u8, u8),
}

fn bt_op() -> impl Strategy<Value = BtOp> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| BtOp::Insert(k % 32, v % 8)),
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| BtOp::Delete(k % 32, v % 8)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| BtOp::Range(a % 32, b % 32)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(bt_op(), 1..200)) {
        let mut tree: BTree<u64> = BTree::with_order(IoStats::new(), 6);
        let mut model: BTreeMap<Vec<u8>, Vec<u64>> = BTreeMap::new();
        for op in ops {
            match op {
                BtOp::Insert(k, v) => {
                    let key = vec![k];
                    tree.insert(&key, v);
                    model.entry(key).or_default().push(v);
                }
                BtOp::Delete(k, v) => {
                    let key = vec![k];
                    let model_has = model.get(&key).map(|vs| vs.contains(&v)).unwrap_or(false);
                    let tree_result = tree.delete(&key, &v);
                    prop_assert_eq!(tree_result.is_ok(), model_has);
                    if model_has {
                        let vs = model.get_mut(&key).unwrap();
                        let pos = vs.iter().position(|x| *x == v).unwrap();
                        vs.remove(pos);
                        if vs.is_empty() {
                            model.remove(&key);
                        }
                    }
                }
                BtOp::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let mut got: Vec<(Vec<u8>, u64)> =
                        tree.range(Some(&[lo]), Some(&[hi])).collect();
                    got.sort();
                    let mut want: Vec<(Vec<u8>, u64)> = model
                        .range(vec![lo]..=vec![hi])
                        .flat_map(|(k, vs)| vs.iter().map(move |v| (k.clone(), *v)))
                        .collect();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
            let model_len: usize = model.values().map(Vec::len).sum();
            prop_assert_eq!(tree.len(), model_len);
        }
        // Final full scan matches, in key order.
        let got_keys: Vec<Vec<u8>> = tree.range(None, None).map(|(k, _)| k).collect();
        let mut sorted = got_keys.clone();
        sorted.sort();
        prop_assert_eq!(got_keys, sorted, "range scan is key-ordered");
    }

    // ----------------------------------------------------------------
    // Heap file: insert/get/delete with arbitrary payload sizes
    // (including multi-page chained records).
    // ----------------------------------------------------------------

    #[test]
    fn heap_roundtrips_arbitrary_sizes(sizes in prop::collection::vec(0usize..30_000, 1..12)) {
        let mut heap = HeapFile::new(IoStats::new());
        let mut stored = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let payload = vec![(i % 251) as u8; *size];
            let rid = heap.insert(&payload).unwrap();
            stored.push((rid, payload));
        }
        for (rid, payload) in &stored {
            prop_assert_eq!(&heap.get(*rid).unwrap(), payload);
        }
        // Delete every other record; the rest must survive.
        for (i, (rid, _)) in stored.iter().enumerate() {
            if i % 2 == 0 {
                heap.delete(*rid).unwrap();
            }
        }
        for (i, (rid, payload)) in stored.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!(heap.get(*rid).is_err());
            } else {
                prop_assert_eq!(&heap.get(*rid).unwrap(), payload);
            }
        }
    }

    // ----------------------------------------------------------------
    // Tuple and summary-object codecs.
    // ----------------------------------------------------------------

    #[test]
    fn tuple_codec_roundtrips(vals in prop::collection::vec(value_strategy(), 0..12)) {
        let bytes = encode_tuple(&vals);
        prop_assert_eq!(decode_tuple(&bytes).unwrap(), vals);
    }

    #[test]
    fn summary_object_codec_roundtrips(obj in classifier_strategy()) {
        let set = vec![obj];
        let bytes = encode_objects(&set);
        prop_assert_eq!(decode_objects(&bytes).unwrap(), set);
    }

    // ----------------------------------------------------------------
    // Itemization: lexicographic order of keys == numeric order of counts.
    // ----------------------------------------------------------------

    #[test]
    fn itemize_preserves_count_order(a in 0u64..1000, b in 0u64..1000) {
        let w = ItemizeWidth::default();
        if !w.fits(a) || !w.fits(b) {
            return Ok(());
        }
        let ka = itemize_key("Label", a, w);
        let kb = itemize_key("Label", b, w);
        prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
    }

    // ----------------------------------------------------------------
    // Merge algebra: commutativity of the classifier merge (up to element
    // order), and the project-before-merge equivalence behind the paper's
    // Theorems 1–2.
    // ----------------------------------------------------------------

    #[test]
    fn classifier_merge_is_commutative_in_counts(
        a_ids in prop::collection::hash_set(0u64..40, 0..20),
        b_ids in prop::collection::hash_set(0u64..40, 0..20),
    ) {
        let a = classifier_with("L", &a_ids);
        let b = classifier_with("L", &b_ids);
        let common: HashSet<AnnotId> = a_ids.intersection(&b_ids).map(|&i| AnnotId(i)).collect();
        let resolver = |_: AnnotId| None;
        let ab = merge_objects(&a, &b, &common, &resolver);
        let ba = merge_objects(&b, &a, &common, &resolver);
        let count = |o: &SummaryObject| match &o.rep {
            Rep::Classifier(c) => c.counts.clone(),
            _ => vec![],
        };
        prop_assert_eq!(count(&ab), count(&ba));
        // And the merged count is exactly the union size.
        let union: HashSet<u64> = a_ids.union(&b_ids).copied().collect();
        prop_assert_eq!(count(&ab)[0] as usize, union.len());
    }

    #[test]
    fn eliminate_commutes_with_merge(
        a_ids in prop::collection::hash_set(0u64..30, 1..15),
        b_ids in prop::collection::hash_set(0u64..30, 1..15),
        removed in prop::collection::hash_set(0u64..30, 0..10),
    ) {
        let a = classifier_with("L", &a_ids);
        let b = classifier_with("L", &b_ids);
        let common: HashSet<AnnotId> = a_ids.intersection(&b_ids).map(|&i| AnnotId(i)).collect();
        let removed_ids: Vec<AnnotId> = removed.iter().map(|&i| AnnotId(i)).collect();
        let resolver = |_: AnnotId| None;

        // eliminate-then-merge
        let mut ea = vec![a.clone()];
        let mut eb = vec![b.clone()];
        project_eliminate(&mut ea, &removed_ids, &resolver);
        project_eliminate(&mut eb, &removed_ids, &resolver);
        let m1 = merge_objects(&ea[0], &eb[0], &common, &resolver);

        // merge-then-eliminate
        let mut m2 = vec![merge_objects(&a, &b, &common, &resolver)];
        project_eliminate(&mut m2, &removed_ids, &resolver);

        let count = |o: &SummaryObject| match &o.rep {
            Rep::Classifier(c) => c.counts[0],
            _ => 0,
        };
        prop_assert_eq!(count(&m1), count(&m2[0]));
    }

    // ----------------------------------------------------------------
    // Snippet merge: source set is the union; no duplicates.
    // ----------------------------------------------------------------

    #[test]
    fn snippet_merge_is_source_union(
        a_ids in prop::collection::hash_set(0u64..30, 0..10),
        b_ids in prop::collection::hash_set(0u64..30, 0..10),
    ) {
        let a = snippet_with(&a_ids);
        let b = snippet_with(&b_ids);
        let resolver = |_: AnnotId| None;
        let m = merge_objects(&a, &b, &HashSet::new(), &resolver);
        let Rep::Snippet(s) = &m.rep else { panic!() };
        let got: HashSet<u64> = s.entries.iter().map(|e| e.source.0).collect();
        let want: HashSet<u64> = a_ids.union(&b_ids).copied().collect();
        prop_assert_eq!(got.len(), s.entries.len(), "no duplicate sources");
        prop_assert_eq!(got, want);
    }

    // ----------------------------------------------------------------
    // Optimizer statistics: add/remove sequences keep min/max/ndistinct
    // consistent with a naive recomputation.
    // ----------------------------------------------------------------

    #[test]
    fn label_stats_match_naive_model(counts in prop::collection::vec(0u64..50, 1..60)) {
        let mut ls = LabelStats::default();
        for &c in &counts {
            ls.add(c);
        }
        // Remove the first third again.
        let keep = &counts[counts.len() / 3..];
        for &c in &counts[..counts.len() / 3] {
            ls.remove(c);
        }
        if keep.is_empty() {
            prop_assert_eq!(ls.total, 0);
            return Ok(());
        }
        prop_assert_eq!(ls.total as usize, keep.len());
        prop_assert_eq!(ls.min, *keep.iter().min().unwrap());
        prop_assert_eq!(ls.max, *keep.iter().max().unwrap());
        let distinct: HashSet<u64> = keep.iter().copied().collect();
        prop_assert_eq!(ls.num_distinct as usize, distinct.len());
        // Selectivity over the full range covers (almost) everything.
        let sel = ls.selectivity(None, None);
        prop_assert!(sel > 0.99, "full-range selectivity {sel}");
        // Every present value has non-zero point selectivity; values outside
        // the observed range have exactly zero. (Equi-width histograms
        // interpolate within buckets, so point estimates under-count — the
        // invariants are positivity and bounded support, not exactness.)
        for &c in &distinct {
            let p = ls.selectivity(Some(c), Some(c));
            prop_assert!(p > 0.0, "present value {c} has zero selectivity");
            prop_assert!(p <= 1.0);
        }
        prop_assert_eq!(ls.selectivity(Some(ls.max + 100), Some(ls.max + 200)), 0.0);
    }
}

// --------------------------------------------------------------------
// Persistence: dump → restore preserves every observable summary state,
// for randomly generated databases.
// --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dump_restore_is_lossless(
        annots in prop::collection::vec((0usize..6, 0usize..3, any::<bool>()), 0..40),
    ) {
        use insightnotes::prelude::*;
        let mut db = Database::new();
        let t = db
            .create_table(
                "T",
                Schema::of(&[("id", ColumnType::Int), ("x", ColumnType::Text)]),
            )
            .unwrap();
        let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
        model.train("disease outbreak infection", "Disease");
        model.train("eating foraging song", "Behavior");
        db.link_instance(t, "C", InstanceKind::Classifier { model }, true).unwrap();
        db.link_instance(
            t,
            "S",
            InstanceKind::Snippet { min_chars: 10, max_chars: 80 },
            false,
        )
        .unwrap();
        let mut oids = Vec::new();
        for i in 0..6i64 {
            oids.push(db.insert_tuple(t, vec![Value::Int(i), Value::Text(format!("t{i}"))]).unwrap());
        }
        for (tuple, col, diseasey) in annots {
            let text = if diseasey {
                "disease outbreak infection spotted here"
            } else {
                "seen eating and foraging by the water"
            };
            let att = if col == 0 {
                Attachment::row(oids[tuple])
            } else {
                Attachment::cells(oids[tuple], &[col - 1])
            };
            db.add_annotation(t, text, Category::Other, "p", vec![att]).unwrap();
        }
        let restored = Database::restore(&db.dump().unwrap()).unwrap();
        let rt = restored.table_id("T").unwrap();
        for &oid in &oids {
            let a = db.summaries_of(t, oid).unwrap();
            let b = restored.summaries_of(rt, oid).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(&x.instance_name, &y.instance_name);
                prop_assert_eq!(&x.rep, &y.rep);
            }
            // Raw annotation sets agree too.
            prop_assert_eq!(
                db.annotation_store(t).for_tuple(oid),
                restored.annotation_store(rt).for_tuple(oid)
            );
        }
    }
}

// --------------------------------------------------------------------
// SQL front-end robustness: the parser never panics, and every statement
// it accepts round-trips through the lexer.
// --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sql_parser_never_panics(input in "[ -~]{0,120}") {
        // Any printable-ASCII garbage must produce Ok or Err, not a panic.
        let _ = insightnotes::sql::parse(&input);
    }

    #[test]
    fn sql_parser_accepts_generated_selects(
        table in "[A-Za-z][A-Za-z0-9_]{0,10}",
        col in "[a-z][a-z0-9_]{0,8}",
        n in 0i64..1000,
        instance in "[A-Za-z][A-Za-z0-9]{0,8}",
        label in "[A-Za-z][A-Za-z0-9]{0,8}",
        desc in any::<bool>(),
        limit in prop::option::of(0usize..100),
    ) {
        let mut sql = format!(
            "SELECT {col} FROM {table} r WHERE \
             r.$.getSummaryObject('{instance}').getLabelValue('{label}') > {n}"
        );
        sql.push_str(&format!(
            " ORDER BY r.$.getSummaryObject('{instance}').getLabelValue('{label}') {}",
            if desc { "DESC" } else { "ASC" }
        ));
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let parsed = insightnotes::sql::parse(&sql);
        // Keyword collisions (e.g. a table named "select") may legitimately
        // fail to parse; anything else must succeed.
        let kw = ["select", "from", "where", "order", "group", "limit", "by",
                  "and", "or", "not", "like", "asc", "desc", "distinct"];
        if !kw.contains(&table.to_lowercase().as_str())
            && !kw.contains(&col.to_lowercase().as_str())
        {
            prop_assert!(parsed.is_ok(), "failed on: {sql}: {parsed:?}");
        }
    }
}

// --------------------------------------------------------------------
// Strategies / fixtures.
// --------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn classifier_strategy() -> impl Strategy<Value = SummaryObject> {
    (
        prop::collection::vec(
            ("[A-Z][a-z]{1,8}", prop::collection::vec(0u64..1000, 0..8)),
            1..5,
        ),
        any::<u64>(),
    )
        .prop_map(|(labels, oid)| {
            let mut rep = ClassifierRep::default();
            for (label, ids) in labels {
                rep.labels.push(label);
                rep.counts.push(ids.len() as u64);
                rep.elements.push(ids.into_iter().map(AnnotId).collect());
            }
            SummaryObject {
                obj_id: ObjId(oid),
                instance_id: InstanceId(1),
                instance_name: "P".into(),
                tuple_id: insightnotes::storage::Oid(oid % 97),
                rep: Rep::Classifier(rep),
            }
        })
}

fn classifier_with(label: &str, ids: &HashSet<u64>) -> SummaryObject {
    let mut sorted: Vec<u64> = ids.iter().copied().collect();
    sorted.sort_unstable();
    SummaryObject {
        obj_id: ObjId(1),
        instance_id: InstanceId(1),
        instance_name: "C".into(),
        tuple_id: insightnotes::storage::Oid(1),
        rep: Rep::Classifier(ClassifierRep {
            labels: vec![label.to_string()],
            counts: vec![sorted.len() as u64],
            elements: vec![sorted.into_iter().map(AnnotId).collect()],
        }),
    }
}

fn snippet_with(ids: &HashSet<u64>) -> SummaryObject {
    let mut sorted: Vec<u64> = ids.iter().copied().collect();
    sorted.sort_unstable();
    SummaryObject {
        obj_id: ObjId(2),
        instance_id: InstanceId(2),
        instance_name: "S".into(),
        tuple_id: insightnotes::storage::Oid(1),
        rep: Rep::Snippet(SnippetRep {
            entries: sorted
                .into_iter()
                .map(|i| SnippetEntry {
                    snippet: format!("snippet {i}"),
                    source: AnnotId(i),
                })
                .collect(),
        }),
    }
}
