//! Property-based tests for the morsel-driven parallel executor: for
//! arbitrary annotation loads, morsel partitions, and DOP ∈ {1..8}, the
//! Exchange/Gather pipeline must reproduce the serial executor's output —
//! row for row for pipelined fragments, and group for group for the
//! two-phase partial-aggregate merge (the serial single-phase `GroupBy`
//! is the oracle).

use std::time::Duration;

use proptest::prelude::*;

use insightnotes::annot::{Attachment, Category};
use insightnotes::core::db::Database;
use insightnotes::core::instance::InstanceKind;
use insightnotes::mining::nb::NaiveBayes;
use insightnotes::prelude::{
    CmpOp, ExecConfig, ExecContext, Expr, PhysicalPlan, PointerMode, SummaryBTree,
};
use insightnotes::storage::{ColumnType, Schema, TableId, Value};

/// Birds(id, family); tuple i carries `counts[i]` disease annotations and
/// one behavior annotation, all row-attached.
fn build(counts: &[usize]) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("eating foraging migration song", "Behavior");
    db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
        .unwrap();
    for (i, &c) in counts.iter().enumerate() {
        let oid = db
            .insert_tuple(
                t,
                vec![Value::Int(i as i64), Value::Text(format!("fam{}", i % 3))],
            )
            .unwrap();
        for _ in 0..c {
            db.add_annotation(
                t,
                "disease outbreak infection",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        db.add_annotation(
            t,
            "eating foraging song",
            Category::Behavior,
            "u",
            vec![Attachment::row(oid)],
        )
        .unwrap();
    }
    (db, t)
}

fn parallel_ctx_config(morsel_rows: usize) -> ExecConfig {
    ExecConfig {
        morsel_rows,
        ..ExecConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelined fragment (summary-predicate filter over a heap scan):
    /// the morsel-order gather is serial-identical for every partition
    /// granularity and worker count.
    #[test]
    fn parallel_filter_scan_matches_serial(
        counts in prop::collection::vec(0usize..6, 4..40),
        morsel_rows in 1usize..16,
        dop in 1usize..=8,
        threshold in 0i64..6,
    ) {
        let (db, t) = build(&counts);
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan { table: t, with_summaries: true }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, threshold),
        };
        let mut ctx = ExecContext::new(&db);
        let serial = ctx.execute(&plan).unwrap();
        ctx.config = parallel_ctx_config(morsel_rows);
        let parallel = ctx
            .execute(&PhysicalPlan::Exchange { input: Box::new(plan), dop })
            .unwrap();
        prop_assert_eq!(parallel, serial);
    }

    /// Two-phase aggregation: per-worker partial `AggState`s merged at the
    /// gather equal the serial single-phase group-by oracle for arbitrary
    /// morsel partitions and DOP 1..8 (row-attached annotations).
    #[test]
    fn two_phase_group_by_matches_serial_oracle(
        counts in prop::collection::vec(0usize..5, 4..32),
        morsel_rows in 1usize..12,
        dop in 1usize..=8,
    ) {
        let (db, t) = build(&counts);
        let plan = PhysicalPlan::GroupBy {
            input: Box::new(PhysicalPlan::SeqScan { table: t, with_summaries: true }),
            cols: vec![1],
        };
        let mut ctx = ExecContext::new(&db);
        let oracle = ctx.execute(&plan).unwrap();
        ctx.config = parallel_ctx_config(morsel_rows);
        let parallel = ctx
            .execute(&PhysicalPlan::Exchange { input: Box::new(plan), dop })
            .unwrap();
        prop_assert_eq!(parallel, oracle);
    }

    /// Summary-BTree range-scan morsels (index entries in count order)
    /// gather back into the serial key order.
    #[test]
    fn parallel_summary_index_scan_matches_serial(
        counts in prop::collection::vec(0usize..6, 4..24),
        morsel_rows in 1usize..8,
        dop in 1usize..=8,
        lo in 0u64..4,
    ) {
        let (db, t) = build(&counts);
        let idx = SummaryBTree::bulk_build(&db, t, "C", PointerMode::Backward).unwrap();
        let mut ctx = ExecContext::new(&db);
        ctx.register_summary_index("idx", idx);
        let plan = PhysicalPlan::SummaryIndexScan {
            index: "idx".into(),
            label: "Disease".into(),
            lo: Some(lo),
            hi: None,
            propagate: true,
            reverse: false,
        };
        let serial = ctx.execute(&plan).unwrap();
        ctx.config = parallel_ctx_config(morsel_rows);
        let parallel = ctx
            .execute(&PhysicalPlan::Exchange { input: Box::new(plan), dop })
            .unwrap();
        prop_assert_eq!(parallel, serial);
    }
}

/// A simulated per-morsel stall must not change results — only wall-clock.
#[test]
fn io_stall_changes_timing_not_results() {
    let counts: Vec<usize> = (0..30).map(|i| i % 5).collect();
    let (db, t) = build(&counts);
    let plan = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        }),
        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 2),
    };
    let mut ctx = ExecContext::new(&db);
    let serial = ctx.execute(&plan).unwrap();
    ctx.config = ExecConfig {
        morsel_rows: 5,
        io_stall: Duration::from_micros(200),
        ..ExecConfig::default()
    };
    for dop in [1, 2, 4] {
        let rows = ctx
            .execute(&PhysicalPlan::Exchange {
                input: Box::new(plan.clone()),
                dop,
            })
            .unwrap();
        assert_eq!(rows, serial, "dop {dop}");
    }
}
