//! Smaller cross-cutting behaviors exercised through the public facade:
//! zoom-in over cluster/snippet objects, `$`-set functions in SQL, error
//! surfaces, and generator edge cases.

use insightnotes::prelude::*;

fn snippet_db() -> (Database, TableId, Oid) {
    let mut db = Database::new();
    let t = db
        .create_table("T", Schema::of(&[("id", ColumnType::Int)]))
        .unwrap();
    db.link_instance(
        t,
        "Snips",
        InstanceKind::Snippet {
            min_chars: 20,
            max_chars: 120,
        },
        false,
    )
    .unwrap();
    db.link_instance(
        t,
        "Clusters",
        InstanceKind::Cluster {
            params: ClusterParams::default(),
        },
        false,
    )
    .unwrap();
    let oid = db.insert_tuple(t, vec![Value::Int(1)]).unwrap();
    for i in 0..4 {
        db.add_annotation(
            t,
            &format!("swan goose sighting report number {i} near the wetland"),
            Category::Comment,
            "u",
            vec![Attachment::row(oid)],
        )
        .unwrap();
    }
    (db, t, oid)
}

#[test]
fn zoom_into_cluster_groups_and_snippets() {
    let (db, t, oid) = snippet_db();
    // Cluster: the four similar sightings form one group; zooming into
    // representative 0 recovers its members.
    let group0 = zoom_in(&db, t, oid, "Clusters", &ZoomTarget::Representative(0)).unwrap();
    assert!(!group0.is_empty());
    let all = zoom_in(&db, t, oid, "Clusters", &ZoomTarget::All).unwrap();
    assert_eq!(all.len(), 4);
    // Snippet: each entry's zoom target is its source annotation.
    let snip0 = zoom_in(&db, t, oid, "Snips", &ZoomTarget::Representative(0)).unwrap();
    assert_eq!(snip0.len(), 1);
    assert!(snip0[0].text.contains("sighting report"));
    // ClassLabel targets are meaningless on non-classifier objects: empty.
    let none = zoom_in(&db, t, oid, "Snips", &ZoomTarget::ClassLabel("X".into())).unwrap();
    assert!(none.is_empty());
}

#[test]
fn summary_set_functions_via_sql() {
    let (db, _, _) = snippet_db();
    let sql = "SELECT id FROM T r WHERE r.$.getSize() = 2";
    let insightnotes::sql::ast::Statement::Select(sel) = parse(sql).unwrap() else {
        panic!()
    };
    let lowered = lower_select(&db, &sel).unwrap();
    let physical = lower_naive(&db, &lowered.plan).unwrap();
    let rows = ExecContext::new(&db).execute(&physical).unwrap();
    assert_eq!(rows.len(), 1, "the tuple carries exactly 2 summary objects");
    // getSummaryObject by INDEX with a type check.
    let sql = "SELECT id FROM T r WHERE r.$.getSummaryObject(0).getSummaryType() = 'Snippet'";
    let insightnotes::sql::ast::Statement::Select(sel) = parse(sql).unwrap() else {
        panic!()
    };
    let lowered = lower_select(&db, &sel).unwrap();
    let physical = lower_naive(&db, &lowered.plan).unwrap();
    let rows = ExecContext::new(&db).execute(&physical).unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn summary_object_filter_via_sql_pipeline() {
    let (db, t, oid) = snippet_db();
    // The F operator keeps only matching objects on each tuple.
    let plan = LogicalPlan::scan("T").summary_filter(ObjectPred::TypeEq(SummaryType::Cluster));
    let physical = lower_naive(&db, &plan).unwrap();
    let rows = ExecContext::new(&db).execute(&physical).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].summary_count(), 1);
    assert_eq!(
        rows[0].summaries[0].summary_type(),
        SummaryType::Cluster,
        "snippet object filtered out"
    );
    let _ = (t, oid);
}

#[test]
fn corpus_generator_edge_cases() {
    use insightnotes::annot::{Corpus, CorpusConfig};
    // Zero annotations per tuple: tables exist, stores empty.
    let cfg = CorpusConfig {
        n_tuples: 5,
        avg_annots_per_tuple: 0,
        ..CorpusConfig::tiny()
    };
    let c = Corpus::build(&cfg);
    assert_eq!(c.birds.len(), 5);
    // avg 0 still emits the minimum of 1..=1? The generator clamps at
    // zero annotations when the average is zero.
    assert_eq!(c.annotation_count(), 0);
}

#[test]
fn text_generation_tiny_targets() {
    use insightnotes::annot::text;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let t = text::generate(&mut rng, Category::Other, 0);
    assert!(t.ends_with('.'), "even empty targets emit a sentence end");
    let t = text::generate(&mut rng, Category::Other, 1);
    assert!(!t.is_empty());
}

#[test]
fn core_error_display() {
    use insightnotes::core::CoreError;
    let errs: Vec<CoreError> = vec![
        CoreError::InstanceNotFound("X".into()),
        CoreError::AnnotationNotFound(7),
        CoreError::Corrupt("bad".into()),
        CoreError::Storage(insightnotes::storage::StorageError::OidNotFound(3)),
    ];
    for e in errs {
        assert!(!format!("{e}").is_empty());
        // source() is part of the surface; any answer is acceptable.
        let _ = std::error::Error::source(&e);
    }
}

#[test]
fn sql_error_display() {
    use insightnotes::sql::SqlError;
    for e in [
        SqlError::Lex("l".into()),
        SqlError::Parse("p".into()),
        SqlError::Bind("b".into()),
    ] {
        assert!(!format!("{e}").is_empty());
    }
}

#[test]
fn schema_mismatch_and_missing_objects() {
    let (mut db, t, oid) = snippet_db();
    // Wrong arity.
    assert!(db.insert_tuple(t, vec![]).is_err());
    // Wrong type.
    assert!(db.insert_tuple(t, vec![Value::Text("x".into())]).is_err());
    // Unknown instance for zoom.
    assert!(zoom_in(&db, t, oid, "Missing", &ZoomTarget::All).is_err());
    // Unknown annotation deletion.
    assert!(db.delete_annotation(AnnotId(9_999)).is_err());
    // Deleting a tuple twice.
    db.delete_tuple(t, oid).unwrap();
    assert!(db.delete_tuple(t, oid).is_err());
}

#[test]
fn group_by_then_order_by_count_via_sql() {
    let mut db = Database::new();
    let t = db
        .create_table(
            "T",
            Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
        )
        .unwrap();
    for i in 0..9i64 {
        db.insert_tuple(
            t,
            vec![
                Value::Int(i),
                Value::Text(format!("f{}", if i < 6 { 0 } else { 1 })),
            ],
        )
        .unwrap();
    }
    let sql = "SELECT family FROM T GROUP BY family ORDER BY count DESC";
    let insightnotes::sql::ast::Statement::Select(sel) = parse(sql).unwrap() else {
        panic!()
    };
    let lowered = lower_select(&db, &sel).unwrap();
    let physical = lower_naive(&db, &lowered.plan).unwrap();
    let rows = ExecContext::new(&db).execute(&physical).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].values[1], Value::Int(6), "largest group first");
    assert_eq!(rows[1].values[1], Value::Int(3));
}
