//! Concurrent read-path tests: the engine's read surface (`&Database`) is
//! shareable across threads, and the I/O accounting — the backbone of every
//! experiment — tallies exactly under parallel readers.

use insightnotes::prelude::*;
use insightnotes::query::QueryError;

fn build(n: usize) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("name", ColumnType::Text)]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Other".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("field station weather note", "Other");
    db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
        .unwrap();
    for i in 0..n {
        let oid = db
            .insert_tuple(t, vec![Value::Int(i as i64), Value::Text(format!("b{i}"))])
            .unwrap();
        for _ in 0..(i % 7) {
            db.add_annotation(
                t,
                "disease outbreak",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
    }
    (db, t)
}

#[test]
fn parallel_readers_see_consistent_data() {
    let (db, t) = build(60);
    const THREADS: usize = 8;
    let results: Vec<usize> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let db = &db;
                scope.spawn(move |_| {
                    let mut ctx = ExecContext::new(db);
                    let plan = PhysicalPlan::Filter {
                        input: Box::new(PhysicalPlan::SeqScan {
                            table: t,
                            with_summaries: true,
                        }),
                        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 3),
                    };
                    ctx.execute(&plan).expect("read-only query").len()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    })
    .expect("scope");
    // Every thread sees the same answer.
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    // i % 7 >= 3 for i in 0..60: residues 3,4,5,6 → 4 per 7, plus partials.
    let expected = (0..60).filter(|i| i % 7 >= 3).count();
    assert_eq!(results[0], expected);
}

#[test]
fn io_accounting_tallies_exactly_under_parallelism() {
    let (db, t) = build(40);
    // Baseline: one sequential scan's I/O.
    db.stats().reset();
    let _ = db.scan_annotated(t).unwrap();
    let single = db.stats().snapshot().total();
    assert!(single > 0);

    const THREADS: usize = 6;
    db.stats().reset();
    crossbeam::thread::scope(|scope| {
        for _ in 0..THREADS {
            let db = &db;
            scope.spawn(move |_| {
                let _ = db.scan_annotated(t).expect("read-only scan");
            });
        }
    })
    .expect("scope");
    let parallel = db.stats().snapshot().total();
    assert_eq!(
        parallel,
        single * THREADS as u64,
        "atomic counters lose nothing under contention"
    );
}

/// Eight [`Session`]s over one [`SharedDatabase`], each with its own
/// registered Summary-BTree, must serve result sets bit-identical to the
/// single-threaded oracle — both through the index and through a plain
/// filtered scan.
#[test]
fn shared_sessions_serve_identical_result_sets() {
    let (db, t) = build(80);
    let shared = SharedDatabase::new(db);

    let index_plan = PhysicalPlan::SummaryIndexScan {
        index: "C_idx".into(),
        label: "Disease".into(),
        lo: Some(2),
        hi: None,
        propagate: true,
        reverse: false,
    };
    let scan_plan = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        }),
        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 2),
    };

    // Single-threaded oracle.
    let mut oracle_sess = shared.session();
    oracle_sess
        .register_summary_index("C_idx", t, "C", PointerMode::Backward)
        .unwrap();
    let oracle_idx = oracle_sess.execute(&index_plan).unwrap();
    let oracle_scan = oracle_sess.execute(&scan_plan).unwrap();
    assert_eq!(oracle_idx.len(), (0..80).filter(|i| i % 7 >= 2).count());

    const THREADS: usize = 8;
    let results: Vec<(Vec<AnnotatedTuple>, Vec<AnnotatedTuple>)> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let shared = shared.clone();
                    let (index_plan, scan_plan) = (&index_plan, &scan_plan);
                    scope.spawn(move |_| {
                        let mut sess = shared.session();
                        sess.register_summary_index("C_idx", t, "C", PointerMode::Backward)
                            .unwrap();
                        // Both queries under one read guard: one snapshot.
                        sess.with_ctx(|ctx| {
                            (
                                ctx.execute(index_plan).unwrap(),
                                ctx.execute(scan_plan).unwrap(),
                            )
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
        .expect("scope");
    for (idx_rows, scan_rows) in &results {
        assert_eq!(idx_rows, &oracle_idx, "index path diverged from oracle");
        assert_eq!(scan_rows, &oracle_scan, "scan path diverged from oracle");
    }
}

/// The deterministic mutation script shared by the concurrent stress run
/// and its serial replay: annotate a fixed tuple, insert fresh annotated
/// tuples, checkpoint every 8th step.
fn stress_mutation(db: &mut Database, t: TableId, oid0: Oid, step: usize) {
    if step.is_multiple_of(3) {
        let oid = db
            .insert_tuple(
                t,
                vec![
                    Value::Int(1000 + step as i64),
                    Value::Text(format!("w{step}")),
                ],
            )
            .unwrap();
        db.add_annotation(
            t,
            "disease outbreak infection",
            Category::Disease,
            "w",
            vec![Attachment::row(oid)],
        )
        .unwrap();
    } else {
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "w",
            vec![Attachment::row(oid0)],
        )
        .unwrap();
    }
    if step % 8 == 7 {
        db.checkpoint().unwrap();
    }
}

/// N reader sessions race one writer applying a scripted mutation sequence
/// with interleaved checkpoints (WAL attached). Asserts:
///
/// * no torn reads — two executions under one read guard agree exactly,
/// * monotonicity — the disease-positive row count never decreases across
///   a reader's iterations (the writer only adds),
/// * no counter drift — the engine's *write-side* I/O counters equal a
///   serial replay of the identical script on an identical database
///   (read counters depend on reader interleaving and are excluded),
/// * final state equals the serial replay's, tuple for tuple.
#[test]
fn reader_writer_stress_matches_serial_replay() {
    const STEPS: usize = 48;
    const READERS: usize = 6;
    const READS_PER_READER: usize = 24;

    let (mut db, t) = build(40);
    db.enable_wal();
    let oid0 = db.scan_annotated(t).unwrap()[0].source.unwrap().1;
    db.stats().reset();
    let shared = SharedDatabase::new(db);

    let count_plan = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        }),
        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 1),
    };

    crossbeam::thread::scope(|scope| {
        for _ in 0..READERS {
            let shared = shared.clone();
            let count_plan = &count_plan;
            scope.spawn(move |_| {
                let mut sess = shared.session();
                let mut last = 0usize;
                for _ in 0..READS_PER_READER {
                    let n = sess.with_ctx(|ctx| {
                        let a = ctx.execute(count_plan).expect("read under guard");
                        let b = ctx.execute(count_plan).expect("re-read under guard");
                        assert_eq!(a, b, "torn read within one snapshot");
                        a.len()
                    });
                    assert!(n >= last, "disease count went backwards: {last} -> {n}");
                    last = n;
                    std::thread::yield_now();
                }
            });
        }
        let shared = shared.clone();
        scope.spawn(move |_| {
            for step in 0..STEPS {
                shared.with_write(|db| stress_mutation(db, t, oid0, step));
                std::thread::yield_now();
            }
        });
    })
    .expect("no reader or writer panicked (lock never poisoned)");

    let db = shared
        .try_unwrap()
        .unwrap_or_else(|_| panic!("all sessions dropped"));
    let concurrent = db.stats().snapshot();

    // Serial replay of the identical script on an identical database.
    let (mut replay, rt) = build(40);
    replay.enable_wal();
    let r_oid0 = replay.scan_annotated(rt).unwrap()[0].source.unwrap().1;
    assert_eq!(oid0, r_oid0, "deterministic build");
    replay.stats().reset();
    for step in 0..STEPS {
        stress_mutation(&mut replay, rt, r_oid0, step);
    }
    let serial = replay.stats().snapshot();

    assert_eq!(concurrent.heap_writes, serial.heap_writes);
    assert_eq!(concurrent.index_writes, serial.index_writes);
    assert_eq!(concurrent.logical_heap_writes, serial.logical_heap_writes);
    assert_eq!(concurrent.logical_index_writes, serial.logical_index_writes);
    assert_eq!(concurrent.wal_appends, serial.wal_appends);

    let final_rows = db.scan_annotated(t).unwrap();
    let replay_rows = replay.scan_annotated(rt).unwrap();
    assert_eq!(final_rows.len(), 40 + STEPS / 3);
    assert_eq!(final_rows, replay_rows, "state drift vs serial replay");
}

/// The morsel-driven parallel executor racing concurrent writers and
/// checkpoints: N reader sessions each run the same fragment serially and
/// through an Exchange (explicit DOP 4 and config-inherited DOP) under one
/// read guard, so all three see one snapshot — the parallel result sets
/// must be oracle-identical to the serial execution of that snapshot.
#[test]
fn parallel_executor_vs_writers_matches_serial_snapshot() {
    const STEPS: usize = 36;
    const READERS: usize = 4;
    const READS_PER_READER: usize = 12;

    let (mut db, t) = build(50);
    db.enable_wal();
    let oid0 = db.scan_annotated(t).unwrap()[0].source.unwrap().1;
    let shared = SharedDatabase::new(db);

    let frag = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        }),
        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 1),
    };
    let group = PhysicalPlan::GroupBy {
        input: Box::new(frag.clone()),
        cols: vec![0],
    };

    crossbeam::thread::scope(|scope| {
        for _ in 0..READERS {
            let shared = shared.clone();
            let (frag, group) = (&frag, &group);
            scope.spawn(move |_| {
                let mut sess = shared.session();
                sess.exec_config.morsel_rows = 8; // several morsels per query
                for _ in 0..READS_PER_READER {
                    sess.with_ctx(|ctx| {
                        // One snapshot spans all executions below.
                        let serial = ctx.execute(frag).expect("serial fragment");
                        for dop in [4, 0] {
                            let par = ctx
                                .execute(&PhysicalPlan::Exchange {
                                    input: Box::new(frag.clone()),
                                    dop,
                                })
                                .expect("parallel fragment");
                            assert_eq!(par, serial, "dop {dop} diverged from snapshot oracle");
                        }
                        let serial_group = ctx.execute(group).expect("serial group-by");
                        let par_group = ctx
                            .execute(&PhysicalPlan::Exchange {
                                input: Box::new(group.clone()),
                                dop: 4,
                            })
                            .expect("parallel group-by");
                        assert_eq!(par_group, serial_group, "two-phase merge diverged");
                    });
                    std::thread::yield_now();
                }
            });
        }
        let shared = shared.clone();
        scope.spawn(move |_| {
            for step in 0..STEPS {
                shared.with_write(|db| stress_mutation(db, t, oid0, step));
                std::thread::yield_now();
            }
        });
    })
    .expect("no reader or writer panicked (lock never poisoned)");

    // Final sanity: the post-race state still answers identically through
    // both executors.
    let db = shared
        .try_unwrap()
        .unwrap_or_else(|_| panic!("all sessions dropped"));
    let mut ctx = ExecContext::new(&db);
    let serial = ctx.execute(&frag).unwrap();
    ctx.config.morsel_rows = 8;
    let par = ctx
        .execute(&PhysicalPlan::Exchange {
            input: Box::new(frag.clone()),
            dop: 4,
        })
        .unwrap();
    assert_eq!(par, serial);
}

/// N reader sessions, each owning a registered Summary-BTree kept current
/// by delta-journal replay, race one writer applying the scripted mutation
/// stream with interleaved checkpoints. Every iteration runs the index
/// scan and the filter-scan oracle under one read guard (one snapshot), so
/// a single stale, lost, or double-applied delta surfaces as a row diff.
/// Afterwards a controlled one-change gap must be *replayed* — never
/// rebuilt — by a fresh session.
#[test]
fn reader_index_replay_vs_writer_stays_oracle_identical() {
    const STEPS: usize = 48;
    const READERS: usize = 6;
    const READS_PER_READER: usize = 24;

    let (mut db, t) = build(40);
    db.enable_wal();
    let oid0 = db.scan_annotated(t).unwrap()[0].source.unwrap().1;
    let shared = SharedDatabase::new(db);

    let index_plan = PhysicalPlan::SummaryIndexScan {
        index: "C_idx".into(),
        label: "Disease".into(),
        lo: Some(1),
        hi: None,
        propagate: false,
        reverse: false,
    };
    let scan_plan = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: true,
        }),
        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 1),
    };
    // Index scans emit in key order, seq scans in heap order; compare as
    // (oid, data values) sets.
    let keyed = |rows: &[AnnotatedTuple]| {
        let mut v: Vec<(u64, Vec<Value>)> = rows
            .iter()
            .map(|r| (r.source.unwrap().1 .0, r.values.clone()))
            .collect();
        v.sort_by_key(|(oid, _)| *oid);
        v
    };

    crossbeam::thread::scope(|scope| {
        for _ in 0..READERS {
            let shared = shared.clone();
            let (index_plan, scan_plan, keyed) = (&index_plan, &scan_plan, &keyed);
            scope.spawn(move |_| {
                let mut sess = shared.session();
                sess.register_summary_index("C_idx", t, "C", PointerMode::Backward)
                    .unwrap();
                for _ in 0..READS_PER_READER {
                    sess.with_ctx(|ctx| {
                        let via_index = ctx.execute(index_plan).expect("index scan");
                        let report = ctx.maintenance_report();
                        let oracle = ctx.execute(scan_plan).expect("oracle scan");
                        assert_eq!(
                            keyed(&via_index),
                            keyed(&oracle),
                            "replayed index diverged from its snapshot's oracle \
                             (maintenance: {report:?})"
                        );
                    });
                    std::thread::yield_now();
                }
            });
        }
        let shared = shared.clone();
        scope.spawn(move |_| {
            for step in 0..STEPS {
                shared.with_write(|db| stress_mutation(db, t, oid0, step));
                std::thread::yield_now();
            }
        });
    })
    .expect("no reader or writer panicked (lock never poisoned)");

    // Deterministic tail: a fresh session, then exactly one journaled
    // change. The 1-change gap is far under the replay threshold, so the
    // refresh must replay it — a rebuild here is the over-rebuild bug.
    let mut sess = shared.session();
    sess.register_summary_index("C_idx", t, "C", PointerMode::Backward)
        .unwrap();
    shared.with_write(|db| {
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "w",
            vec![Attachment::row(oid0)],
        )
        .unwrap();
    });
    let report = sess.with_ctx(|ctx| {
        let via_index = ctx.execute(&index_plan).expect("index scan");
        // Snapshot before the oracle scan: its own (fresh, zero-work)
        // refresh pass overwrites the context's last report.
        let report = ctx.maintenance_report();
        let oracle = ctx.execute(&scan_plan).expect("oracle scan");
        assert_eq!(keyed(&via_index), keyed(&oracle));
        report
    });
    assert_eq!(report.indexes_replayed, 1, "one-change gap: {report:?}");
    assert_eq!(report.indexes_rebuilt + report.forced_rebuilds, 0);
    assert!(report.deltas_applied >= 1);
}

#[test]
fn parallel_index_probes_agree_with_sequential() {
    let (db, t) = build(50);
    let index = SummaryBTree::bulk_build(&db, t, "C", PointerMode::Backward).unwrap();
    // Sequential ground truth (search_eq needs &mut for op counters, so
    // probe tuples via per-thread contexts with their own index handles).
    let sequential: Vec<usize> = (0..7u64)
        .map(|c| {
            let mut idx = SummaryBTree::bulk_build(&db, t, "C", PointerMode::Backward).unwrap();
            idx.search_eq("Disease", c).len()
        })
        .collect();
    let parallel: Vec<usize> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..7u64)
            .map(|c| {
                let db = &db;
                scope.spawn(move |_| {
                    let mut idx =
                        SummaryBTree::bulk_build(db, t, "C", PointerMode::Backward).unwrap();
                    idx.search_eq("Disease", c).len()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    })
    .expect("scope");
    assert_eq!(sequential, parallel);
    drop(index);
}

/// A query that panics mid-execution must not wedge the session layer:
/// the panicking session's index registry — moved into the transient
/// `ExecContext` for the query — is restored during unwind by the
/// drop-guard, the read guard is released (no poisoning: only write
/// guards poison), and concurrent sessions keep serving throughout.
#[test]
fn panicking_query_preserves_registry_and_concurrent_sessions() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let (db, t) = build(60);
    let shared = SharedDatabase::new(db);
    let index_plan = PhysicalPlan::SummaryIndexScan {
        index: "C_idx".into(),
        label: "Disease".into(),
        lo: Some(2),
        hi: None,
        propagate: true,
        reverse: false,
    };

    let mut victim = shared.session();
    victim
        .register_summary_index("C_idx", t, "C", PointerMode::Backward)
        .unwrap();
    assert_eq!(victim.registered_indexes(), 1);
    let oracle = victim.execute(&index_plan).unwrap();
    assert!(!oracle.is_empty());

    let stop = std::sync::atomic::AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        // Concurrent sessions hammer the engine while the victim panics.
        let stop = &stop;
        let mut others = Vec::new();
        for _ in 0..3 {
            let shared = shared.clone();
            let (index_plan, oracle) = (&index_plan, &oracle);
            others.push(scope.spawn(move |_| {
                let mut sess = shared.session();
                sess.register_summary_index("C_idx", t, "C", PointerMode::Backward)
                    .unwrap();
                let mut reads = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || reads < 5 {
                    let rows = sess.execute(index_plan).expect("unaffected session");
                    assert_eq!(&rows, oracle);
                    reads += 1;
                }
                reads
            }));
        }

        for _ in 0..4 {
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                victim.with_ctx(|_| -> () { panic!("deliberate mid-query panic") })
            }));
            assert!(unwound.is_err(), "panic must propagate, not vanish");
            // The drop-guard restored the registry during unwind: the same
            // session still serves index scans without rebuilding.
            assert_eq!(victim.registered_indexes(), 1);
            let rows = victim.execute(&index_plan).expect("session still works");
            assert_eq!(rows, oracle);
        }

        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in others {
            assert!(h.join().expect("no panic in bystander sessions") >= 5);
        }
    })
    .expect("scope");
}

/// A writer that panics while holding the exclusive guard poisons the
/// engine lock. The serving path must surface that as a fail-fast
/// `QueryError::EnginePoisoned` from the `try_*` accessors — not abort
/// the process.
#[test]
fn poisoned_engine_lock_fails_fast_on_try_paths() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let (db, _t) = build(10);
    let shared = SharedDatabase::new(db);
    let mut session = shared.session();

    let shared2 = shared.clone();
    let _ = catch_unwind(AssertUnwindSafe(move || {
        shared2.with_write(|_db| -> () { panic!("writer dies mid-mutation") })
    }));

    assert!(matches!(
        shared.try_read().map(|_| ()),
        Err(QueryError::EnginePoisoned)
    ));
    assert!(matches!(
        shared.try_write().map(|_| ()),
        Err(QueryError::EnginePoisoned)
    ));
    assert!(matches!(
        session.try_with_ctx(|_| ()),
        Err(QueryError::EnginePoisoned)
    ));
}
