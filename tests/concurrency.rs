//! Concurrent read-path tests: the engine's read surface (`&Database`) is
//! shareable across threads, and the I/O accounting — the backbone of every
//! experiment — tallies exactly under parallel readers.

use insightnotes::prelude::*;

fn build(n: usize) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("name", ColumnType::Text)]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Other".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("field station weather note", "Other");
    db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
        .unwrap();
    for i in 0..n {
        let oid = db
            .insert_tuple(t, vec![Value::Int(i as i64), Value::Text(format!("b{i}"))])
            .unwrap();
        for _ in 0..(i % 7) {
            db.add_annotation(
                t,
                "disease outbreak",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
    }
    (db, t)
}

#[test]
fn parallel_readers_see_consistent_data() {
    let (db, t) = build(60);
    const THREADS: usize = 8;
    let results: Vec<usize> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let db = &db;
                scope.spawn(move |_| {
                    let mut ctx = ExecContext::new(db);
                    let plan = PhysicalPlan::Filter {
                        input: Box::new(PhysicalPlan::SeqScan {
                            table: t,
                            with_summaries: true,
                        }),
                        pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, 3),
                    };
                    ctx.execute(&plan).expect("read-only query").len()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    })
    .expect("scope");
    // Every thread sees the same answer.
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    // i % 7 >= 3 for i in 0..60: residues 3,4,5,6 → 4 per 7, plus partials.
    let expected = (0..60).filter(|i| i % 7 >= 3).count();
    assert_eq!(results[0], expected);
}

#[test]
fn io_accounting_tallies_exactly_under_parallelism() {
    let (db, t) = build(40);
    // Baseline: one sequential scan's I/O.
    db.stats().reset();
    let _ = db.scan_annotated(t).unwrap();
    let single = db.stats().snapshot().total();
    assert!(single > 0);

    const THREADS: usize = 6;
    db.stats().reset();
    crossbeam::thread::scope(|scope| {
        for _ in 0..THREADS {
            let db = &db;
            scope.spawn(move |_| {
                let _ = db.scan_annotated(t).expect("read-only scan");
            });
        }
    })
    .expect("scope");
    let parallel = db.stats().snapshot().total();
    assert_eq!(
        parallel,
        single * THREADS as u64,
        "atomic counters lose nothing under contention"
    );
}

#[test]
fn parallel_index_probes_agree_with_sequential() {
    let (db, t) = build(50);
    let index = SummaryBTree::bulk_build(&db, t, "C", PointerMode::Backward).unwrap();
    // Sequential ground truth (search_eq needs &mut for op counters, so
    // probe tuples via per-thread contexts with their own index handles).
    let sequential: Vec<usize> = (0..7u64)
        .map(|c| {
            let mut idx = SummaryBTree::bulk_build(&db, t, "C", PointerMode::Backward).unwrap();
            idx.search_eq("Disease", c).len()
        })
        .collect();
    let parallel: Vec<usize> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..7u64)
            .map(|c| {
                let db = &db;
                scope.spawn(move |_| {
                    let mut idx =
                        SummaryBTree::bulk_build(db, t, "C", PointerMode::Backward).unwrap();
                    idx.search_eq("Disease", c).len()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    })
    .expect("scope");
    assert_eq!(sequential, parallel);
    drop(index);
}
