//! The plan cache must never trade correctness for reuse (DESIGN.md §12):
//!
//! * **Byte-identity** — over random statement streams interleaved with
//!   DML, every cached execution's canonically-encoded result is
//!   byte-identical to a fresh-replan oracle's, at journal retentions
//!   0 (every replay falls back), 3 (tiny ring), and 4096 (nothing
//!   truncates). Per-table high-water marks survive ring truncation, so
//!   invalidation stays exact even when the journal cannot replay.
//! * **Exact invalidation** — the cache's verdict is fully deterministic:
//!   first sighting is a miss, DML on a touched table since planning is an
//!   invalidation, and an untouched-table entry is always a hit (the
//!   zero-replan regression: unrelated DML must not cost replans).
//! * **Session-state keying** — DOP changes and index registration force
//!   replans instead of reusing plans chosen under different state.

use std::collections::HashMap;

use proptest::prelude::*;

use insightnotes::annot::{Attachment, Category};
use insightnotes::core::db::Database;
use insightnotes::core::instance::InstanceKind;
use insightnotes::mining::nb::NaiveBayes;
use insightnotes::prelude::{plan_select, PlanSource, Session, SharedDatabase};
use insightnotes::serve::{Response, WireRow};
use insightnotes::sql::{parse, Statement};
use insightnotes::storage::{ColumnType, Schema, TableId, Value};

/// Birds(id, family) with classifier instance `C`, plus Food(bird_id,
/// kind) with no instance. Deterministic: two calls build bit-identical
/// databases.
fn build(retention: usize) -> (Database, TableId, TableId) {
    let mut db = Database::new();
    db.set_journal_retention(retention);
    let birds = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
        )
        .unwrap();
    let food = db
        .create_table(
            "Food",
            Schema::of(&[("bird_id", ColumnType::Int), ("kind", ColumnType::Text)]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("eating foraging migration song", "Behavior");
    db.link_instance(birds, "C", InstanceKind::Classifier { model }, true)
        .unwrap();
    for i in 0..8i64 {
        let oid = db
            .insert_tuple(
                birds,
                vec![Value::Int(i), Value::Text(format!("fam{}", i % 3))],
            )
            .unwrap();
        for _ in 0..(i % 3) {
            db.add_annotation(
                birds,
                "disease outbreak infection",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        db.insert_tuple(
            food,
            vec![
                Value::Int(i),
                Value::Text(if i % 2 == 0 { "seed" } else { "fish" }.into()),
            ],
        )
        .unwrap();
    }
    (db, birds, food)
}

/// The statement pool, each with the tables it touches. Fewer statements
/// than the cache capacity, so LRU eviction never masks a hit.
const STATEMENTS: &[(&str, &[&str])] = &[
    ("SELECT id, family FROM Birds", &["Birds"]),
    ("SELECT id FROM Birds r WHERE r.id >= 2", &["Birds"]),
    (
        "SELECT * FROM Birds r \
         WHERE r.$.getSummaryObject('C').getLabelValue('Disease') >= 1",
        &["Birds"],
    ),
    ("SELECT bird_id, kind FROM Food", &["Food"]),
    ("SELECT kind FROM Food f WHERE f.kind = 'seed'", &["Food"]),
    (
        "SELECT b.id, f.kind FROM Birds b, Food f WHERE b.id = f.bird_id",
        &["Birds", "Food"],
    ),
];

/// One step of a random stream.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Run `STATEMENTS[i]` and check it against the oracle.
    Query(usize),
    /// Insert a row into Birds (0) or Food (1).
    Dml(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Queries outnumber DML ~3:1 so hit/invalidate paths both get
    // exercised (the vendored proptest has no weighted prop_oneof).
    (0..STATEMENTS.len() * 3 + 2).prop_map(|i| {
        if i < STATEMENTS.len() * 3 {
            Op::Query(i % STATEMENTS.len())
        } else {
            Op::Dml(i - STATEMENTS.len() * 3)
        }
    })
}

/// Plan + execute + canonically encode one statement on `session`.
/// Returns the payload bytes and the cache verdict.
fn run(session: &mut Session, stmt: &str) -> (Vec<u8>, PlanSource) {
    let Ok(Statement::Select(sel)) = parse(stmt) else {
        panic!("pool statement parses: {stmt}")
    };
    let planned = plan_select(session, &sel).expect("plans");
    let plan = std::sync::Arc::clone(&planned.plan);
    let rows = session.execute(&plan.plan).expect("executes");
    let payload = Response::Rows {
        columns: plan.columns.clone(),
        rows: rows.iter().map(WireRow::from_tuple).collect(),
    }
    .encode();
    (payload, planned.source)
}

fn apply_dml(shared: &SharedDatabase, table: usize, i: i64) {
    shared.with_write(|db| {
        if table == 0 {
            let birds = db.table_id("Birds").unwrap();
            db.insert_tuple(birds, vec![Value::Int(100 + i), Value::Text("famX".into())])
                .unwrap();
        } else {
            let food = db.table_id("Food").unwrap();
            db.insert_tuple(food, vec![Value::Int(100 + i), Value::Text("kelp".into())])
                .unwrap();
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random query/DML streams: the cached session's payloads are
    /// byte-identical to the always-replan oracle's, and every cache
    /// verdict is exactly predicted by which tables advanced since the
    /// statement was last planned — including at retention 0, where the
    /// journal ring holds nothing but the per-table high-water marks
    /// still date every entry.
    #[test]
    fn cached_results_match_replan_oracle_with_exact_invalidation(
        ops in prop::collection::vec(op_strategy(), 1..40),
        retention_pick in 0usize..3,
    ) {
        let retention = [0usize, 3, 4096][retention_pick];
        let (db, ..) = build(retention);
        let cached = SharedDatabase::new(db);
        let mut cached_session = cached.session();
        cached_session.exec_config.dop = 1;
        cached_session.plan_cache.set_enabled(true);

        let (db, ..) = build(retention);
        let oracle = SharedDatabase::new(db);
        let mut oracle_session = oracle.session();
        oracle_session.exec_config.dop = 1;
        oracle_session.plan_cache.set_enabled(false);

        // seq stamps order DML against planning; `planned_at[stmt]` is
        // when the statement's entry was (re)stored, `touched[table]` when
        // the table last took DML.
        let mut seq = 0u64;
        let mut planned_at: HashMap<usize, u64> = HashMap::new();
        let mut touched: HashMap<&str, u64> = HashMap::new();
        let mut dml_rows = 0i64;

        for op in ops {
            match op {
                Op::Dml(table) => {
                    seq += 1;
                    apply_dml(&cached, table, dml_rows);
                    apply_dml(&oracle, table, dml_rows);
                    dml_rows += 1;
                    touched.insert(if table == 0 { "Birds" } else { "Food" }, seq);
                }
                Op::Query(i) => {
                    seq += 1;
                    let (stmt, tables) = STATEMENTS[i];
                    let (got, source) = run(&mut cached_session, stmt);
                    let (want, oracle_source) = run(&mut oracle_session, stmt);
                    prop_assert_eq!(
                        got, want,
                        "cached payload diverged from the replan oracle for {} \
                         at retention {}", stmt, retention
                    );
                    prop_assert!(matches!(oracle_source, PlanSource::CacheDisabled));
                    let expected = match planned_at.get(&i) {
                        None => PlanSource::CacheMiss,
                        Some(&at) if tables
                            .iter()
                            .any(|t| touched.get(t).is_some_and(|&d| d > at)) =>
                            PlanSource::Invalidated,
                        Some(_) => PlanSource::CacheHit,
                    };
                    prop_assert_eq!(
                        source, expected,
                        "wrong cache verdict for {} at retention {}", stmt, retention
                    );
                    planned_at.insert(i, seq);
                }
            }
        }

        // The zero-replan regression in aggregate: hits + misses +
        // invalidations account for every lookup, and nothing was ever
        // evicted (the pool is smaller than the cache).
        let stats = cached_session.plan_cache.stats();
        prop_assert_eq!(
            stats.insertions,
            stats.misses + stats.invalidations,
            "every fresh plan is stored"
        );
        prop_assert!(cached_session.plan_cache.len() <= STATEMENTS.len());
    }
}

/// Planner-relevant session state is part of the cache key: changing DOP
/// or registering an index must replan, and flipping back must find the
/// old entry again (distinct keys, not invalidation).
#[test]
fn session_state_is_part_of_the_cache_key() {
    let (db, ..) = build(4096);
    let shared = SharedDatabase::new(db);
    let mut session = shared.session();
    session.exec_config.dop = 1;
    session.plan_cache.set_enabled(true);

    let stmt = STATEMENTS[0].0;
    let (_, source) = run(&mut session, stmt);
    assert!(matches!(source, PlanSource::CacheMiss));
    let (_, source) = run(&mut session, stmt);
    assert!(matches!(source, PlanSource::CacheHit));

    session.exec_config.dop = 4;
    let (_, source) = run(&mut session, stmt);
    assert!(matches!(source, PlanSource::CacheMiss), "DOP is in the key");
    session.exec_config.dop = 1;
    let (_, source) = run(&mut session, stmt);
    assert!(
        matches!(source, PlanSource::CacheHit),
        "the DOP-1 entry is still cached under its own key"
    );

    let birds = shared.with_read(|db| db.table_id("Birds").unwrap());
    session
        .register_column_index(birds, 0)
        .expect("index builds");
    let (_, source) = run(&mut session, stmt);
    assert!(
        matches!(source, PlanSource::CacheMiss),
        "registering an index bumps the registry epoch"
    );
}
