//! Pinned regressions.
//!
//! 1. Group-by/distinct keys used to be built by concatenating `Display`
//!    renderings with a `\u{1}` separator, so distinct composite keys
//!    could collide (a `Text` value embedding the separator shifts value
//!    bytes across column boundaries; `Null` renders identically to
//!    `Text("NULL")`). Keys are now the typed, length-prefixed
//!    `composite_key` encoding from `instn-query::dataindex`.
//!
//! 2. An annotation attached to *multiple* tuples that straddle a morsel
//!    boundary was double-counted by the parallel gather merge: the
//!    cluster-group merge took no transitive closure, so one annotation
//!    could land in two groups and its TF vector was summed twice
//!    (DESIGN.md §8). The merge is now a canonical connected-components
//!    partition, making two-phase `GroupBy` exact for multi-tuple
//!    attachments — parallel output is bit-identical to serial.
use std::time::Duration;

use insightnotes::annot::{Attachment, Category};
use insightnotes::core::db::Database;
use insightnotes::core::instance::InstanceKind;
use insightnotes::mining::clustream::ClusterParams;
use insightnotes::mining::nb::NaiveBayes;
use insightnotes::prelude::{ExecConfig, ExecContext, PhysicalPlan};
use insightnotes::storage::{ColumnType, Schema, Value};

/// Two text columns whose composite keys collide under the old
/// separator-concat encoding: `("a\u{1}b", "c")` and `("a", "b\u{1}c")`
/// both rendered as `"a\u{1}b\u{1}c"`.
#[test]
fn distinct_keys_with_embedded_separator_do_not_collide() {
    let mut db = Database::new();
    let t = db
        .create_table(
            "T",
            Schema::of(&[("x", ColumnType::Text), ("y", ColumnType::Text)]),
        )
        .unwrap();
    db.insert_tuple(
        t,
        vec![Value::Text("a\u{1}b".into()), Value::Text("c".into())],
    )
    .unwrap();
    db.insert_tuple(
        t,
        vec![Value::Text("a".into()), Value::Text("b\u{1}c".into())],
    )
    .unwrap();
    let mut ctx = ExecContext::new(&db);
    let plan = PhysicalPlan::Distinct {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        }),
    };
    let rows = ctx.execute(&plan).unwrap();
    assert_eq!(rows.len(), 2, "separator-shifted keys are distinct rows");

    let group = PhysicalPlan::GroupBy {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        }),
        cols: vec![0, 1],
    };
    assert_eq!(ctx.execute(&group).unwrap().len(), 2, "two groups, not one");
}

/// Mixed-type collision: `Null` and `Text("NULL")` display identically
/// but are different values (schema validation admits `Null` in any
/// column). The typed encoding tags each value, so e.g. `Int(1)` vs
/// `Text("1")` or `Null` vs `Text("NULL")` can never share a key.
#[test]
fn group_by_null_does_not_collide_with_text_null() {
    let mut db = Database::new();
    let t = db
        .create_table("T", Schema::of(&[("x", ColumnType::Text)]))
        .unwrap();
    db.insert_tuple(t, vec![Value::Null]).unwrap();
    db.insert_tuple(t, vec![Value::Text("NULL".into())])
        .unwrap();
    let mut ctx = ExecContext::new(&db);
    let group = PhysicalPlan::GroupBy {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        }),
        cols: vec![0],
    };
    let rows = ctx.execute(&group).unwrap();
    assert_eq!(
        rows.len(),
        2,
        "NULL and the text 'NULL' are distinct groups"
    );

    let distinct = PhysicalPlan::Distinct {
        input: Box::new(PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        }),
    };
    assert_eq!(ctx.execute(&distinct).unwrap().len(), 2);
}

/// Deterministic multi-tuple workload: annotations attach to several
/// tuples each (LCG-driven), so morsel boundaries routinely split an
/// annotation's tuples across workers under every tested morsel size.
fn multituple_db(
    seed: u64,
    n_tuples: usize,
    n_annots: usize,
) -> (Database, insightnotes::storage::TableId) {
    let mut db = Database::new();
    let t = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("eating foraging migration song", "Behavior");
    db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
        .unwrap();
    db.link_instance(
        t,
        "S",
        InstanceKind::Snippet {
            min_chars: 5,
            max_chars: 400,
        },
        true,
    )
    .unwrap();
    db.link_instance(
        t,
        "K",
        InstanceKind::Cluster {
            params: ClusterParams::default(),
        },
        true,
    )
    .unwrap();
    let mut rng = seed;
    let mut next = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as usize
    };
    let mut oids = Vec::new();
    for i in 0..n_tuples {
        oids.push(
            db.insert_tuple(
                t,
                vec![
                    Value::Int(i as i64),
                    Value::Text(format!("fam{}", next() % 2)),
                ],
            )
            .unwrap(),
        );
    }
    let texts = [
        "disease outbreak infection virus spreading",
        "eating foraging migration song nesting",
        "disease virus bad infection",
        "song migration eating patterns",
    ];
    for a in 0..n_annots {
        let mut atts = Vec::new();
        for &o in &oids {
            if next() % 3 == 0 {
                atts.push(Attachment::row(o));
            }
        }
        if atts.is_empty() {
            atts.push(Attachment::row(oids[next() % oids.len()]));
        }
        db.add_annotation(t, texts[a % texts.len()], Category::Disease, "u", atts)
            .unwrap();
    }
    (db, t)
}

/// Failing-before/passing-after oracle for the double-count: with the
/// old first-overlap cluster merge, seed 5 diverged at `morsel_rows = 3,
/// dop = 2` (one annotation's TF vector summed into two groups at the
/// gather). Parallel `GroupBy` over multi-tuple attachments must equal
/// the serial fold exactly, for every tested morsel size and DOP.
#[test]
fn parallel_group_by_multituple_annotations_match_serial() {
    for seed in 0..20u64 {
        let (db, t) = multituple_db(seed, 6, 5);
        let plan = PhysicalPlan::GroupBy {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            cols: vec![1],
        };
        let mut ctx = ExecContext::new(&db);
        ctx.config = ExecConfig {
            dop: 1,
            morsel_rows: 1,
            io_stall: Duration::ZERO,
        };
        let serial = ctx.execute(&plan).unwrap();
        for mr in [1usize, 2, 3] {
            for dop in [2usize, 4] {
                let par = PhysicalPlan::Exchange {
                    input: Box::new(plan.clone()),
                    dop,
                };
                let mut ctx2 = ExecContext::new(&db);
                ctx2.config = ExecConfig {
                    dop,
                    morsel_rows: mr,
                    io_stall: Duration::ZERO,
                };
                let parallel = ctx2.execute(&par).unwrap();
                assert_eq!(
                    parallel, serial,
                    "seed={seed} morsel_rows={mr} dop={dop} diverged"
                );
            }
        }
    }
}
