//! Integration tests for the network serving layer: wire-level clients
//! against a real `Server` over loopback TCP.
//!
//! Covers the serving contract end-to-end: concurrent clients receive
//! byte-identical result payloads vs an in-process serial oracle,
//! admission control answers `Busy` fast, a deadline-exceeding request
//! times out while a concurrent one proceeds, a panicking statement comes
//! back as a structured error with the server (and the session's index
//! registry) intact, and a graceful drain answers in-flight requests.

use std::time::{Duration, Instant};

use insightnotes::demo::demo_db;
use insightnotes::prelude::*;
use insightnotes::serve::{
    is_error_code, ClientError, ErrorCode, HandshakeStatus, Response, WireRow,
};
use insightnotes::sql::Statement;

const SELECT_DISEASE: &str =
    "SELECT * FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 2";
const SELECT_ALL: &str = "SELECT id, common_name, family FROM Birds";

/// Start a server over a fresh demo database. DOP is pinned to 1 so
/// result order (and therefore the canonical payload bytes) is defined.
fn start_server(mut config: ServeConfig) -> ServerHandle {
    let (db, instances) = demo_db();
    let shared = SharedDatabase::new(db);
    shared.with_read(|db| db.metrics().set_enabled(true));
    config.exec_config.dop = 1;
    Server::start(shared, instances, "127.0.0.1:0", config).expect("bind loopback")
}

/// In-process serial oracle: run `stmt` through the same lowering and a
/// DOP-1 session, then encode the response exactly as the server would.
fn oracle_payload(stmt: &str) -> Vec<u8> {
    oracle_payload_after(&[], stmt)
}

/// Like [`oracle_payload`], but replays `alters` (the DDL the server-side
/// connection ran) against the oracle database first, so summaries and
/// session indexes line up.
fn oracle_payload_after(alters: &[&str], stmt: &str) -> Vec<u8> {
    let (db, instances) = demo_db();
    let shared = SharedDatabase::new(db);
    let mut session = shared.session();
    session.exec_config.dop = 1;
    for alter in alters {
        let outcome = shared
            .with_write(|db| execute_statement(db, &instances, alter))
            .expect("oracle DDL binds");
        if let SqlOutcome::Altered {
            instance: Some(_),
            table,
            name,
            indexable: true,
            ..
        } = outcome
        {
            session
                .register_summary_index(&name, table, &name, PointerMode::Backward)
                .expect("oracle index builds");
        }
    }
    let Ok(Statement::Select(sel)) = parse(stmt) else {
        panic!("oracle statements are SELECTs")
    };
    let (physical, columns) = session.with_ctx(|ctx| {
        let lowered = lower_select(ctx.db, &sel).expect("binds");
        let physical = lower_naive(ctx.db, &lowered.plan).expect("lowers");
        (physical, lowered.columns)
    });
    let rows = session.execute(&physical).expect("executes");
    Response::Rows {
        columns,
        rows: rows.iter().map(WireRow::from_tuple).collect(),
    }
    .encode()
}

#[test]
fn concurrent_clients_get_oracle_identical_payloads() {
    let server = start_server(ServeConfig {
        max_connections: 4,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let oracles = [oracle_payload(SELECT_DISEASE), oracle_payload(SELECT_ALL)];
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let oracles = oracles.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("admitted");
                for _ in 0..5 {
                    for (stmt, oracle) in [SELECT_DISEASE, SELECT_ALL].iter().zip(&oracles) {
                        let raw = client
                            .query_raw(stmt, Duration::ZERO)
                            .expect("query roundtrip");
                        assert_eq!(&raw, oracle, "payload bytes match the serial oracle");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown().expect("drain");
}

#[test]
fn over_limit_connection_is_rejected_busy() {
    let server = start_server(ServeConfig {
        max_connections: 1,
        accept_backlog: 0,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut first = Client::connect(addr).expect("first connection admitted");
    first.ping().expect("served");
    // The single worker is occupied: the next connection must be answered
    // with a fast Busy handshake, not queued.
    match Client::connect(addr) {
        Err(ClientError::Rejected(HandshakeStatus::Busy)) => {}
        other => panic!("expected Busy rejection, got {other:?}"),
    }
    // Freeing the slot re-admits. The worker notices the close within its
    // poll slice; retry briefly rather than racing it.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(addr) {
            Ok(mut c) => {
                c.ping().expect("served after slot freed");
                break;
            }
            Err(ClientError::Rejected(HandshakeStatus::Busy)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected error while re-admitting: {e}"),
        }
    }
    server.shutdown().expect("drain");
}

#[test]
fn deadline_exceeded_while_concurrent_request_proceeds() {
    let server = start_server(ServeConfig {
        max_connections: 2,
        debug_statements: true,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("admitted");
        let started = Instant::now();
        let resp = client
            .query_deadline("\\sleep 2000", Duration::from_millis(100))
            .expect("roundtrip");
        (resp, started.elapsed())
    });
    // While the slow request burns its budget, a second connection is
    // served normally.
    let mut quick = Client::connect(addr).expect("admitted");
    let oracle = oracle_payload(SELECT_ALL);
    let raw = quick
        .query_raw(SELECT_ALL, Duration::ZERO)
        .expect("served concurrently");
    assert_eq!(raw, oracle);
    let (resp, elapsed) = slow.join().expect("slow client thread");
    assert!(
        is_error_code(&resp, ErrorCode::DeadlineExceeded),
        "expected DeadlineExceeded, got {resp:?}"
    );
    assert!(
        elapsed < Duration::from_millis(1500),
        "deadline cut the request short of its 2 s sleep (took {elapsed:?})"
    );
    server.shutdown().expect("drain");
}

#[test]
fn panicking_statement_is_contained_and_registry_survives() {
    let server = start_server(ServeConfig {
        max_connections: 2,
        debug_statements: true,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("admitted");
    // Register a summary index in this connection's session, so a lost
    // registry would be observable.
    match client
        .query("ALTER TABLE Birds ADD INDEXABLE TextSummary1")
        .expect("roundtrip")
    {
        Response::Text(t) => assert!(t.contains("summary index registered"), "{t}"),
        other => panic!("ALTER failed: {other:?}"),
    }
    match client.query("\\registry").expect("roundtrip") {
        Response::Text(t) => assert_eq!(t, "1 indexes registered"),
        other => panic!("{other:?}"),
    }
    // The panic unwinds from inside the execution context (registry moved
    // into the transient ctx) and must come back as a structured error.
    let resp = client.query("\\panic").expect("connection survives");
    assert!(
        is_error_code(&resp, ErrorCode::Panicked),
        "expected Panicked, got {resp:?}"
    );
    // Same connection, same session: the registry was restored mid-unwind.
    match client.query("\\registry").expect("roundtrip") {
        Response::Text(t) => assert_eq!(t, "1 indexes registered"),
        other => panic!("{other:?}"),
    }
    // The server still executes real queries, on this and new connections.
    let oracle = oracle_payload_after(
        &["ALTER TABLE Birds ADD INDEXABLE TextSummary1"],
        SELECT_DISEASE,
    );
    let raw = client
        .query_raw(SELECT_DISEASE, Duration::ZERO)
        .expect("still serving");
    assert_eq!(raw, oracle);
    let mut fresh = Client::connect(addr).expect("new connections admitted");
    fresh.ping().expect("served");
    server.shutdown().expect("drain");
}

#[test]
fn graceful_drain_answers_in_flight_request() {
    let server = start_server(ServeConfig {
        max_connections: 2,
        debug_statements: true,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("admitted");
        client.query("\\sleep 300").expect("answered during drain")
    });
    // Let the request land, then drain while it is still sleeping.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown().expect("drain + checkpoint");
    match inflight.join().expect("client thread") {
        Response::Text(t) => assert_eq!(t, "slept 300 ms"),
        other => panic!("in-flight request dropped: {other:?}"),
    }
    // The listener is gone: new connections fail outright.
    assert!(Client::connect(addr).is_err());
}

#[test]
fn failed_statement_is_a_structured_error_not_a_disconnect() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("admitted");
    match client.query("SELECT * FROM Nope").expect("roundtrip") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Bind);
            assert!(message.contains("Nope"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    match client.query("SELEKT 1").expect("roundtrip") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Parse),
        other => panic!("{other:?}"),
    }
    // The connection is still usable afterwards.
    client.ping().expect("served");
    server.shutdown().expect("drain");
}

#[test]
fn prepared_statements_skip_parse_and_match_text_protocol() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("admitted");
    let (handle, columns) = client.prepare(SELECT_ALL).expect("prepares");
    assert_eq!(columns, vec!["id", "common_name", "family"]);
    // Every prepared execution is byte-identical to the text protocol
    // (the encoding is canonical, so this is full result equality).
    let text = client.query_raw(SELECT_ALL, Duration::ZERO).expect("text");
    for _ in 0..3 {
        let via_handle = client
            .execute_prepared_raw(handle, Duration::ZERO)
            .expect("executes");
        assert_eq!(via_handle, text);
    }
    // Unknown and closed handles are structured errors, not disconnects.
    let resp = client.execute_prepared(handle + 1).expect("roundtrip");
    assert!(is_error_code(&resp, ErrorCode::UnknownHandle));
    client.close_prepared(handle).expect("closes");
    let resp = client.execute_prepared(handle).expect("roundtrip");
    assert!(is_error_code(&resp, ErrorCode::UnknownHandle));
    // Only SELECTs are preparable.
    let err = client.prepare("ANALYZE").expect_err("refused");
    assert!(matches!(err, ClientError::Protocol(_)));
    // The connection is still usable afterwards.
    client.ping().expect("served");
    server.shutdown().expect("drain");
}

#[test]
fn prepared_statement_replans_after_dml_never_stale_rows() {
    let (db, instances) = demo_db();
    let shared = SharedDatabase::new(db);
    let mut config = ServeConfig::default();
    config.exec_config.dop = 1;
    let server =
        Server::start(shared.clone(), instances, "127.0.0.1:0", config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("admitted");
    let (handle, _) = client.prepare(SELECT_ALL).expect("prepares");
    let before = match client.execute_prepared(handle).expect("executes") {
        Response::Rows { rows, .. } => rows.len(),
        other => panic!("expected rows: {other:?}"),
    };
    // DML lands behind the prepared handle's back, through the shared
    // engine the server serves from.
    shared.with_write(|db| {
        let birds = db.table_id("Birds").expect("demo table");
        db.insert_tuple(
            birds,
            vec![
                Value::Int(1_000),
                Value::Text("Late Arrival".into()),
                Value::Text("Anatidae".into()),
            ],
        )
        .expect("inserts");
    });
    // The journal stamp is revalidated on every execute: the cached plan
    // is invalidated, the statement replans, and the new row is visible.
    let after = match client.execute_prepared(handle).expect("executes") {
        Response::Rows { rows, .. } => rows.len(),
        other => panic!("expected rows: {other:?}"),
    };
    assert_eq!(
        after,
        before + 1,
        "prepared execution never serves stale rows"
    );
    server.shutdown().expect("drain");
}
