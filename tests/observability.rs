//! Observability must not perturb the engine (DESIGN.md §10):
//!
//! * **Neutrality** — executing with the metrics registry enabled returns
//!   byte-identical rows and charges identical logical I/O as with it
//!   disabled, serial and parallel, for arbitrary workloads (proptest).
//! * **Liveness under concurrency** — many sessions recording metrics
//!   while other threads render Prometheus dumps and toggle the enabled
//!   flag never deadlock, and the striped counters/histograms stay exact
//!   (no lost or duplicated increments).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use insightnotes::annot::{Attachment, Category};
use insightnotes::core::db::Database;
use insightnotes::core::instance::InstanceKind;
use insightnotes::mining::nb::NaiveBayes;
use insightnotes::prelude::{
    parse_prometheus, plan_select, CmpOp, ExecConfig, ExecContext, Expr, PhysicalPlan, Session,
    SharedDatabase,
};
use insightnotes::query::QueryError;
use insightnotes::sql::{parse, Statement};
use insightnotes::storage::{ColumnType, Schema, TableId, Value};

/// Birds(id, family); tuple i carries `counts[i]` disease annotations and
/// one behavior annotation, all row-attached. Deterministic: two calls
/// with the same `counts` build bit-identical databases.
fn build(counts: &[usize]) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db
        .create_table(
            "Birds",
            Schema::of(&[("id", ColumnType::Int), ("family", ColumnType::Text)]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("eating foraging migration song", "Behavior");
    db.link_instance(t, "C", InstanceKind::Classifier { model }, true)
        .unwrap();
    for (i, &c) in counts.iter().enumerate() {
        let oid = db
            .insert_tuple(
                t,
                vec![Value::Int(i as i64), Value::Text(format!("fam{}", i % 3))],
            )
            .unwrap();
        for _ in 0..c {
            db.add_annotation(
                t,
                "disease outbreak infection",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        db.add_annotation(
            t,
            "eating foraging song",
            Category::Behavior,
            "u",
            vec![Attachment::row(oid)],
        )
        .unwrap();
    }
    (db, t)
}

fn filter_group_plan(t: TableId, threshold: i64) -> PhysicalPlan {
    PhysicalPlan::GroupBy {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: true,
            }),
            pred: Expr::label_cmp("C", "Disease", CmpOp::Ge, threshold),
        }),
        cols: vec![1],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Metrics recording is an observer, not a participant: the same
    /// workload on two identically-built databases — registry disabled
    /// (default) vs enabled with an armed slow log — returns identical
    /// rows, per-operator counters, and logical I/O, serial and parallel.
    #[test]
    fn enabled_metrics_are_execution_neutral(
        counts in prop::collection::vec(0usize..5, 4..24),
        threshold in 0i64..5,
        morsel_rows in 1usize..8,
        dop in 1usize..=4,
    ) {
        let plan_of = |t| PhysicalPlan::Exchange {
            input: Box::new(filter_group_plan(t, threshold)),
            dop,
        };

        let (db_off, t_off) = build(&counts);
        let mut ctx = ExecContext::new(&db_off);
        ctx.config = ExecConfig { dop, morsel_rows, io_stall: Duration::ZERO };
        let (rows_off, metrics_off) = ctx.execute_with_metrics(&plan_of(t_off)).unwrap();
        let io_off = db_off.stats().snapshot();

        let (db_on, t_on) = build(&counts);
        db_on.metrics().set_enabled(true);
        db_on.metrics().slow_log().set_threshold_ns(0);
        let mut ctx = ExecContext::new(&db_on);
        ctx.config = ExecConfig { dop, morsel_rows, io_stall: Duration::ZERO };
        ctx.trace = Some(insightnotes::prelude::QueryTrace::new());
        let (rows_on, metrics_on) = ctx.execute_with_metrics(&plan_of(t_on)).unwrap();
        let io_on = db_on.stats().snapshot();

        prop_assert_eq!(rows_on, rows_off, "rows changed under metrics");
        // Which worker won which morsel is a work-stealing race, metrics
        // or not — compare the scheduling-independent aggregate tree.
        fn strip_workers(m: &insightnotes::query::exec::OpMetrics)
            -> insightnotes::query::exec::OpMetrics {
            let mut out = m.clone();
            out.workers.clear();
            out.children = m.children.iter().map(strip_workers).collect();
            out
        }
        prop_assert_eq!(
            strip_workers(&metrics_on), strip_workers(&metrics_off),
            "operator counters changed"
        );
        prop_assert_eq!(
            io_on.logical_total(), io_off.logical_total(),
            "logical I/O changed under metrics"
        );
        let trace = ctx.trace.take().unwrap();
        prop_assert!(!trace.spans().is_empty(), "trace collected no spans");
    }

    /// The plan-cache counters are observers too: the same statement
    /// stream with the registry enabled vs disabled yields identical
    /// result rows and identical cache verdicts, and the enabled side's
    /// `plan_cache_{hits,misses,invalidations}_total` counters (plus the
    /// `plan_wall_ns` histogram count) mirror the session's own
    /// `PlanCacheStats` exactly.
    #[test]
    fn plan_cache_metrics_are_neutral_and_exact(
        counts in prop::collection::vec(0usize..5, 4..16),
        reps in 1usize..4,
    ) {
        let statements = [
            "SELECT id, family FROM Birds",
            "SELECT * FROM Birds r \
             WHERE r.$.getSummaryObject('C').getLabelValue('Disease') >= 1",
        ];
        let run = |session: &mut Session, stmt: &str| {
            let Ok(Statement::Select(sel)) = parse(stmt) else {
                panic!("statement parses: {stmt}")
            };
            let planned = plan_select(session, &sel).expect("plans");
            let plan = std::sync::Arc::clone(&planned.plan);
            (session.execute(&plan.plan).expect("executes"), planned.source)
        };

        let (db_off, t_off) = build(&counts);
        let shared_off = SharedDatabase::new(db_off);
        let mut s_off = shared_off.session();
        s_off.exec_config.dop = 1;
        s_off.plan_cache.set_enabled(true);

        let (db_on, t_on) = build(&counts);
        db_on.metrics().set_enabled(true);
        let registry = std::sync::Arc::clone(db_on.metrics());
        let shared_on = SharedDatabase::new(db_on);
        let mut s_on = shared_on.session();
        s_on.exec_config.dop = 1;
        s_on.plan_cache.set_enabled(true);

        for rep in 0..reps {
            for stmt in statements {
                let (rows_on, source_on) = run(&mut s_on, stmt);
                let (rows_off, source_off) = run(&mut s_off, stmt);
                prop_assert_eq!(rows_on, rows_off, "rows changed under metrics");
                prop_assert_eq!(source_on, source_off, "verdict changed under metrics");
            }
            // DML between reps exercises the invalidation counter.
            let row = vec![Value::Int(1000 + rep as i64), Value::Text("famX".into())];
            shared_on.with_write(|db| db.insert_tuple(t_on, row.clone()).unwrap());
            shared_off.with_write(|db| db.insert_tuple(t_off, row).unwrap());
        }

        let on = s_on.plan_cache.stats();
        let off = s_off.plan_cache.stats();
        prop_assert_eq!(on.hits, off.hits);
        prop_assert_eq!(on.misses, off.misses);
        prop_assert_eq!(on.invalidations, off.invalidations);

        let samples = parse_prometheus(&registry.render_prometheus()).expect("dump parses");
        let get = |n: &str| {
            samples
                .iter()
                .find(|(s, _)| s == n)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        prop_assert_eq!(get("plan_cache_hits_total"), on.hits as f64);
        prop_assert_eq!(get("plan_cache_misses_total"), on.misses as f64);
        prop_assert_eq!(get("plan_cache_invalidations_total"), on.invalidations as f64);
        prop_assert_eq!(
            get("plan_wall_ns_count"),
            (on.misses + on.invalidations) as f64,
            "every fresh plan (and only those) lands in the histogram"
        );
    }
}

/// N sessions hammer observed queries while a renderer thread dumps
/// Prometheus text and a toggler flips the enabled flag: no deadlock
/// (the test finishes), every dump parses, and with the flag finally on,
/// a known number of increments lands exactly.
#[test]
fn concurrent_sessions_never_deadlock_or_skew_counters() {
    const SESSIONS: usize = 4;
    const QUERIES: usize = 25;
    let (db, t) = build(&[3, 1, 4, 1, 5, 2, 0, 3]);
    db.metrics().set_enabled(true);
    let registry = std::sync::Arc::clone(db.metrics());
    let shared = SharedDatabase::new(db);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..SESSIONS {
            let mut session = shared.session();
            let plan = filter_group_plan(t, 1);
            workers.push(scope.spawn(move || {
                for _ in 0..QUERIES {
                    let rows = session
                        .execute_observed("stress", &plan)
                        .expect("stress query");
                    assert!(!rows.is_empty());
                }
            }));
        }
        // Concurrent renders take the registry mutex against registration.
        let renderer = scope.spawn(|| {
            let mut dumps = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let text = registry.render_prometheus();
                parse_prometheus(&text).expect("mid-flight dump parses");
                dumps += 1;
            }
            dumps
        });
        for w in workers {
            w.join().expect("worker panicked");
        }
        stop.store(true, Ordering::Relaxed);
        assert!(renderer.join().expect("renderer panicked") > 0);
    });

    // The flag stayed on throughout, so the counts are exact: striped
    // counters lose nothing under contention.
    let text = registry.render_prometheus();
    let samples = parse_prometheus(&text).expect("final dump parses");
    let get = |n: &str| {
        samples
            .iter()
            .find(|(s, _)| s == n)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing sample {n}"))
    };
    let expected = (SESSIONS * QUERIES) as f64;
    assert_eq!(get("queries_total"), expected);
    assert_eq!(get("query_wall_ns_count"), expected, "histogram skewed");
    // Per-session counters partition the total.
    let per_session: f64 = samples
        .iter()
        .filter(|(s, _)| s.starts_with("session_") && s.ends_with("_queries_total"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(per_session, expected);
}

/// Failed queries are observable, not invisible: `execute_observed` on an
/// erroring plan must count the query (global, per-session, and in
/// `queries_failed_total`), record its wall time, and — with the slow log
/// armed — capture the statement with the error text standing in for the
/// plan.
#[test]
fn failed_queries_are_counted_timed_and_slow_logged() {
    let (db, t) = build(&[2, 0, 3]);
    db.metrics().set_enabled(true);
    let registry = std::sync::Arc::clone(db.metrics());
    registry.slow_log().set_threshold_ns(0); // capture everything
    let shared = SharedDatabase::new(db);
    let mut session = shared.session();

    // An index scan over a name never registered in this session fails at
    // open with `UnknownIndex`.
    let bad = PhysicalPlan::SummaryIndexScan {
        index: "never_registered".into(),
        label: "Disease".into(),
        lo: Some(1),
        hi: None,
        propagate: true,
        reverse: false,
    };
    let err = session
        .execute_observed("SELECT via missing index", &bad)
        .expect_err("plan must fail");
    assert!(matches!(err, QueryError::UnknownIndex(_)), "{err:?}");

    let samples = parse_prometheus(&registry.render_prometheus()).expect("dump parses");
    let get = |n: &str| {
        samples
            .iter()
            .find(|(s, _)| s == n)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing sample {n}"))
    };
    // The failure is a query: it counts toward the totals AND the failed
    // counters, and its wall time landed in the histogram.
    assert_eq!(get("queries_total"), 1.0);
    assert_eq!(get("queries_failed_total"), 1.0);
    assert_eq!(get("query_wall_ns_count"), 1.0);
    let failed_per_session: f64 = samples
        .iter()
        .filter(|(s, _)| s.starts_with("session_") && s.ends_with("_queries_failed_total"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(failed_per_session, 1.0);

    // The slow log captured the errored statement, error text in place of
    // a plan.
    let entries = registry.slow_log().entries();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].statement, "SELECT via missing index");
    assert!(
        entries[0].plan.contains("unknown index"),
        "slow-log entry should carry the error text, got {:?}",
        entries[0].plan
    );

    // A subsequent successful query on the same session keeps both
    // counters moving independently.
    let ok_plan = filter_group_plan(t, 1);
    session
        .execute_observed("recovery query", &ok_plan)
        .expect("engine is intact after the failure");
    let samples = parse_prometheus(&registry.render_prometheus()).expect("dump parses");
    let get = |n: &str| {
        samples
            .iter()
            .find(|(s, _)| s == n)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(get("queries_total"), 2.0);
    assert_eq!(get("queries_failed_total"), 1.0, "success must not count");
    assert_eq!(get("query_wall_ns_count"), 2.0);
}
