//! Property-based tests for the storage buffer pool: CLOCK eviction,
//! pinning, and dirty-page write-back checked against simple models, plus
//! a pooled-vs-uncached HeapFile oracle under eviction pressure.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use insightnotes::storage::buffer::{BufferPool, FileKind};
use insightnotes::storage::io::IoStats;
use insightnotes::storage::HeapFile;

// --------------------------------------------------------------------
// Raw pool ops vs a pin/dirty model.
// --------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PoolOp {
    Read(u8),
    Write(u8),
    Pin(u8),
    Unpin(u8),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        any::<u8>().prop_map(|p| PoolOp::Read(p % 32)),
        any::<u8>().prop_map(|p| PoolOp::Write(p % 32)),
        any::<u8>().prop_map(|p| PoolOp::Pin(p % 32)),
        any::<u8>().prop_map(|p| PoolOp::Unpin(p % 32)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary interleavings of reads, writes, pins, and unpins
    /// against a small pool:
    ///
    /// * a pinned page is never chosen as an eviction victim,
    /// * an eviction reports `dirty` exactly when the model says the page
    ///   had unflushed writes (so the pool charged its write-back),
    /// * `flush_all` returns exactly the resident dirty pages,
    /// * total physical writes equal dirty evictions + final flushes —
    ///   dirty pages are written back exactly once, never lost.
    #[test]
    fn evictions_respect_pins_and_write_back_dirty_pages(
        ops in prop::collection::vec(pool_op(), 1..300),
        cap in 1usize..8,
    ) {
        let stats = IoStats::new();
        let pool = BufferPool::new(Arc::clone(&stats), cap);
        let file = pool.register_file(FileKind::Heap);
        let mut pins: HashMap<u64, usize> = HashMap::new();
        let mut dirty: HashSet<u64> = HashSet::new();
        let mut dirty_evictions = 0u64;
        for op in ops {
            let evicted = match op {
                PoolOp::Read(p) => pool.read(file, u64::from(p)).evicted,
                PoolOp::Write(p) => {
                    let access = pool.write(file, u64::from(p));
                    dirty.insert(u64::from(p));
                    access.evicted
                }
                PoolOp::Pin(p) => {
                    // Pinning only sticks when the page is resident.
                    if pool.pin(file, u64::from(p)) {
                        *pins.entry(u64::from(p)).or_default() += 1;
                        prop_assert!(pool.is_pinned(file, u64::from(p)));
                    }
                    Vec::new()
                }
                PoolOp::Unpin(p) => {
                    if let Some(n) = pins.get_mut(&u64::from(p)) {
                        pool.unpin(file, u64::from(p));
                        *n -= 1;
                        if *n == 0 {
                            pins.remove(&u64::from(p));
                        }
                    }
                    Vec::new()
                }
            };
            for e in evicted {
                prop_assert!(
                    !pins.contains_key(&e.key.page),
                    "pinned page {} was evicted", e.key.page
                );
                prop_assert_eq!(
                    e.dirty,
                    dirty.contains(&e.key.page),
                    "eviction dirty flag disagrees with the model for page {}",
                    e.key.page
                );
                if e.dirty {
                    dirty_evictions += 1;
                }
                dirty.remove(&e.key.page);
            }
        }
        let flushed: HashSet<u64> = pool.flush_all().into_iter().map(|k| k.page).collect();
        prop_assert_eq!(&flushed, &dirty, "flush_all returns exactly the resident dirty pages");
        // Every dirty page was physically written exactly once: at eviction
        // or at the final flush. Clean pages never cost a write.
        let snap = stats.snapshot();
        prop_assert_eq!(snap.heap_writes, dirty_evictions + flushed.len() as u64);
        // Physical reads are exactly the misses the pool reported.
        prop_assert_eq!(snap.heap_reads, snap.cache_misses);
    }

    // ----------------------------------------------------------------
    // HeapFile over a tiny pool vs the uncached oracle: eviction
    // pressure must never change what the file stores, and caching must
    // never change the logical work done.
    // ----------------------------------------------------------------

    #[test]
    fn pooled_heap_file_agrees_with_uncached_oracle(
        ops in prop::collection::vec(heap_op(), 1..80),
        cap in 1usize..6,
    ) {
        let pooled_stats = IoStats::new();
        let mut pooled =
            HeapFile::with_pool(BufferPool::new(Arc::clone(&pooled_stats), cap));
        let oracle_stats = IoStats::new();
        let mut oracle = HeapFile::new(Arc::clone(&oracle_stats));
        let mut records = Vec::new();
        for op in ops {
            match op {
                HeapOp::Insert(size) => {
                    let payload = vec![(records.len() % 251) as u8; size];
                    let rid_p = pooled.insert(&payload).unwrap();
                    let rid_o = oracle.insert(&payload).unwrap();
                    prop_assert_eq!(rid_p, rid_o, "placement must not depend on caching");
                    records.push((rid_p, payload));
                }
                HeapOp::Get(i) => {
                    if records.is_empty() {
                        continue;
                    }
                    let (rid, payload) = &records[i % records.len()];
                    prop_assert_eq!(&pooled.get(*rid).unwrap(), payload);
                    prop_assert_eq!(&oracle.get(*rid).unwrap(), payload);
                }
                HeapOp::Update(i, size) => {
                    if records.is_empty() {
                        continue;
                    }
                    let slot = i % records.len();
                    let payload = vec![(size % 249) as u8; size];
                    let (rid, stored) = &mut records[slot];
                    let new_p = pooled.update(*rid, &payload).unwrap();
                    let new_o = oracle.update(*rid, &payload).unwrap();
                    prop_assert_eq!(new_p, new_o);
                    *rid = new_p;
                    *stored = payload;
                }
            }
        }
        // No record was lost or corrupted by evictions.
        for (rid, payload) in &records {
            prop_assert_eq!(&pooled.get(*rid).unwrap(), payload);
            prop_assert_eq!(&oracle.get(*rid).unwrap(), payload);
        }
        // The pool may only change *physical* traffic, never logical.
        let p = pooled_stats.snapshot();
        let o = oracle_stats.snapshot();
        prop_assert_eq!(p.logical_heap_reads, o.logical_heap_reads);
        prop_assert_eq!(p.logical_heap_writes, o.logical_heap_writes);
        // The uncached oracle pays physically for every logical access.
        prop_assert_eq!(o.heap_reads, o.logical_heap_reads);
        prop_assert_eq!(o.heap_writes, o.logical_heap_writes);
        prop_assert!(p.heap_reads <= o.heap_reads, "caching never adds reads");
    }
}

#[derive(Debug, Clone)]
enum HeapOp {
    /// Insert a fresh record of the given size (spans pages past ~8 KB).
    Insert(usize),
    /// Re-read a previously stored record.
    Get(usize),
    /// Overwrite a record, possibly relocating it.
    Update(usize, usize),
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        (0usize..20_000).prop_map(HeapOp::Insert),
        any::<usize>().prop_map(HeapOp::Get),
        (any::<usize>(), 0usize..20_000).prop_map(|(i, s)| HeapOp::Update(i, s)),
    ]
}
