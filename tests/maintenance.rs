//! Delta-journal maintenance pipeline tests.
//!
//! * The over-rebuild regression: a mutation on table B must cause *zero*
//!   maintenance work on indexes over table A (the per-table high-water
//!   marks), and small gaps must replay instead of rebuilding.
//! * The proptest oracle: after an arbitrary interleaved stream of
//!   inserts/updates/deletes/annotations, every registered index caught up
//!   by journal replay is entry-for-entry identical to a fresh bulk build —
//!   for all three index kinds, including the journal-truncation fallback
//!   and the key-width-growth forced-rebuild paths.

use proptest::prelude::*;

use insightnotes::prelude::*;
use insightnotes::storage::Oid;

fn classifier_kind() -> InstanceKind {
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into()]);
    model.train("disease outbreak infection virus", "Disease");
    model.train("eating foraging migration song", "Behavior");
    InstanceKind::Classifier { model }
}

/// A table with an indexable classifier instance, `n` tuples, and `i % 3`
/// disease annotations on tuple `i`.
fn annotated_table(db: &mut Database, name: &str, n: usize) -> (TableId, Vec<Oid>) {
    let t = db
        .create_table(
            name,
            Schema::of(&[("id", ColumnType::Int), ("descr", ColumnType::Text)]),
        )
        .unwrap();
    db.link_instance(t, "C", classifier_kind(), true).unwrap();
    let mut oids = Vec::new();
    for i in 0..n {
        let oid = db
            .insert_tuple(t, vec![Value::Int(i as i64), Value::Text(format!("t{i}"))])
            .unwrap();
        for _ in 0..(i % 3) {
            db.add_annotation(
                t,
                "disease outbreak",
                Category::Disease,
                "u",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        oids.push(oid);
    }
    (t, oids)
}

/// Register all three index kinds over `t` in a registry.
fn build_registry(db: &Database, t: TableId) -> IndexRegistry {
    let mut ctx = ExecContext::new(db);
    ctx.register_summary_index(
        "sb",
        SummaryBTree::bulk_build(db, t, "C", PointerMode::Backward).unwrap(),
    );
    ctx.register_baseline_index("bl", BaselineIndex::bulk_build(db, t, "C").unwrap());
    ctx.register_column_index(ColumnIndex::build(db, t, 0).unwrap());
    ctx.take_registry()
}

/// Run one maintenance pass over the registry and hand both back.
fn refresh(db: &Database, registry: IndexRegistry) -> (IndexRegistry, MaintenanceReport) {
    let mut ctx = ExecContext::with_registry(db, registry);
    ctx.refresh_stale_indexes().unwrap();
    let report = ctx.maintenance_report();
    (ctx.take_registry(), report)
}

/// Assert every registered index equals a fresh bulk build, entry for
/// entry (decoded, so a wider-than-necessary key format still matches).
fn assert_oracle_identical(db: &Database, t: TableId, registry: &IndexRegistry) {
    let fresh_sb = SummaryBTree::bulk_build(db, t, "C", PointerMode::Backward).unwrap();
    assert_eq!(
        registry.summary_index("sb").unwrap().dump_entries(),
        fresh_sb.dump_entries(),
        "Summary-BTree diverged from fresh build"
    );
    let fresh_bl = BaselineIndex::bulk_build(db, t, "C").unwrap();
    assert_eq!(
        registry.baseline_index("bl").unwrap().dump_rows(),
        fresh_bl.dump_rows(),
        "baseline index diverged from fresh build"
    );
    let fresh_col = ColumnIndex::build(db, t, 0).unwrap();
    assert_eq!(
        registry.column_index(t, 0).unwrap().dump_entries(),
        fresh_col.dump_entries(),
        "column index diverged from fresh build"
    );
}

// --------------------------------------------------------------------
// Over-rebuild regression: mutations elsewhere are free.
// --------------------------------------------------------------------

#[test]
fn untouched_table_mutations_cause_zero_index_work() {
    let mut db = Database::new();
    let (a, _) = annotated_table(&mut db, "A", 20);
    let (b, b_oids) = annotated_table(&mut db, "B", 5);
    let registry = build_registry(&db, a);
    let (rebuilds_before, inserts_before) = {
        let sb = registry.summary_index("sb").unwrap();
        (sb.ops.rebuilds, sb.ops.key_inserts)
    };

    // Mutate ONLY table B: revision advances, A's high-water mark doesn't.
    for i in 0..10 {
        db.insert_tuple(b, vec![Value::Int(100 + i), Value::Text("x".into())])
            .unwrap();
    }
    db.delete_tuple(b, b_oids[0]).unwrap();
    db.add_annotation(
        b,
        "disease outbreak",
        Category::Disease,
        "u",
        vec![Attachment::row(b_oids[1])],
    )
    .unwrap();

    let io_before = db.stats().snapshot();
    let (registry, report) = refresh(&db, registry);
    let io_spent = db.stats().snapshot().since(&io_before);

    assert_eq!(report.indexes_checked, 3);
    assert_eq!(
        report.indexes_skipped, 3,
        "all three stale stamps resolve via the high-water mark"
    );
    assert_eq!(report.indexes_replayed, 0);
    assert_eq!(report.indexes_rebuilt + report.forced_rebuilds, 0);
    assert_eq!(report.deltas_applied, 0);
    assert!(!report.did_work());
    assert_eq!(
        io_spent.total(),
        0,
        "zero physical I/O for untouched tables"
    );
    let sb = registry.summary_index("sb").unwrap();
    assert_eq!(
        (sb.ops.rebuilds, sb.ops.key_inserts),
        (rebuilds_before, inserts_before),
        "pre-journal executors rebuilt here; the journal must not"
    );
    // And the pass left the stamps current: a second pass is all-fresh.
    let (_, report) = refresh(&db, registry);
    assert_eq!(report.indexes_fresh, 3);
}

#[test]
fn small_gap_replays_instead_of_rebuilding() {
    let mut db = Database::new();
    let (t, oids) = annotated_table(&mut db, "A", 40);
    let registry = build_registry(&db, t);
    let rebuilds_before = registry.summary_index("sb").unwrap().ops.rebuilds;

    // A small gap: 2 annotations on a 40-row table (2×4 ≤ 40 → replay).
    for _ in 0..2 {
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "u",
            vec![Attachment::row(oids[7])],
        )
        .unwrap();
    }

    let (registry, report) = refresh(&db, registry);
    assert_eq!(report.indexes_replayed, 3, "summary + baseline + column");
    assert_eq!(report.indexes_rebuilt + report.forced_rebuilds, 0);
    assert!(report.deltas_applied > 0);
    assert_eq!(
        registry.summary_index("sb").unwrap().ops.rebuilds,
        rebuilds_before,
        "replay must not bulk-rebuild"
    );
    assert_oracle_identical(&db, t, &registry);
}

#[test]
fn truncated_journal_falls_back_to_rebuild() {
    let mut db = Database::new();
    let (t, oids) = annotated_table(&mut db, "A", 10);
    let registry = build_registry(&db, t);

    // Retention 0 reproduces the old rebuild-on-stale behaviour: every
    // entry is truncated as soon as it is recorded.
    db.set_journal_retention(0);
    db.delete_tuple(t, oids[3]).unwrap();

    let (registry, report) = refresh(&db, registry);
    assert_eq!(
        report.indexes_rebuilt, 3,
        "truncated past the gap: replay impossible"
    );
    assert_eq!(report.indexes_replayed, 0);
    assert_oracle_identical(&db, t, &registry);
}

#[test]
fn width_growth_forces_rebuild_mid_replay() {
    let mut db = Database::new();
    let (t, oids) = annotated_table(&mut db, "A", 20);
    // Push one tuple to 998 disease annotations: still width 3.
    for _ in 0..996 {
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "u",
            vec![Attachment::row(oids[2])],
        )
        .unwrap();
    }
    let registry = build_registry(&db, t);
    assert_eq!(registry.summary_index("sb").unwrap().width().0, 3);

    // A 3-change gap (3×4 ≤ 20... no: 12 ≤ 20 → replay) crossing count
    // 1000, which no 3-character key can hold.
    for _ in 0..3 {
        db.add_annotation(
            t,
            "disease outbreak",
            Category::Disease,
            "u",
            vec![Attachment::row(oids[2])],
        )
        .unwrap();
    }

    let (registry, report) = refresh(&db, registry);
    assert!(
        report.forced_rebuilds >= 1,
        "width growth mid-replay must force a rebuild: {report:?}"
    );
    assert!(registry.summary_index("sb").unwrap().width().0 >= 4);
    assert_oracle_identical(&db, t, &registry);
}

// --------------------------------------------------------------------
// Proptest oracle: arbitrary interleaved mutation streams.
// --------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    /// Update tuple `i % live` — a large `grow` forces heap relocation,
    /// exercising the `relocated` replay path.
    Update(usize, i64, bool),
    Delete(usize),
    /// Annotate tuple `i % live`; `true` = disease, `false` = behavior.
    Annotate(usize, bool),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(|v| Op::Insert(v % 1000)),
        (any::<usize>(), any::<i64>(), any::<bool>()).prop_map(|(i, v, grow)| Op::Update(
            i,
            v % 1000,
            grow
        )),
        any::<usize>().prop_map(Op::Delete),
        (any::<usize>(), any::<bool>()).prop_map(|(i, d)| Op::Annotate(i, d)),
    ]
}

fn apply_ops(db: &mut Database, t: TableId, oids: &mut Vec<Oid>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(v) => {
                let oid = db
                    .insert_tuple(t, vec![Value::Int(*v), Value::Text("new".into())])
                    .unwrap();
                oids.push(oid);
            }
            Op::Update(i, v, grow) => {
                if oids.is_empty() {
                    continue;
                }
                let oid = oids[i % oids.len()];
                let text = if *grow { "g".repeat(6000) } else { "s".into() };
                db.update_tuple(t, oid, vec![Value::Int(*v), Value::Text(text)])
                    .unwrap();
            }
            Op::Delete(i) => {
                if oids.is_empty() {
                    continue;
                }
                let oid = oids.remove(i % oids.len());
                db.delete_tuple(t, oid).unwrap();
            }
            Op::Annotate(i, disease) => {
                if oids.is_empty() {
                    continue;
                }
                let oid = oids[i % oids.len()];
                let (text, cat) = if *disease {
                    ("disease outbreak infection", Category::Disease)
                } else {
                    ("eating foraging song", Category::Behavior)
                };
                db.add_annotation(t, text, cat, "u", vec![Attachment::row(oid)])
                    .unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pipeline's core guarantee: whatever interleaving of mutations
    /// lands in the journal gap — and whatever ladder arm the executor
    /// picks (skip, replay, truncation fallback, forced rebuild) — the
    /// refreshed indexes are entry-for-entry identical to fresh builds.
    #[test]
    fn replayed_indexes_match_fresh_builds(
        before in prop::collection::vec(op(), 0..12),
        after in prop::collection::vec(op(), 1..25),
        retention in prop_oneof![Just(0usize), Just(3), Just(4096)],
    ) {
        let mut db = Database::new();
        db.set_journal_retention(retention);
        let (t, mut oids) = annotated_table(&mut db, "A", 8);
        apply_ops(&mut db, t, &mut oids, &before);
        let registry = build_registry(&db, t);
        apply_ops(&mut db, t, &mut oids, &after);
        let (registry, report) = refresh(&db, registry);
        prop_assert_eq!(report.indexes_checked, 3);
        assert_oracle_identical(&db, t, &registry);
        // A second pass over the caught-up registry is free.
        let (_, report) = refresh(&db, registry);
        prop_assert_eq!(report.indexes_fresh, 3);
        prop_assert_eq!(report.deltas_applied, 0);
    }
}
