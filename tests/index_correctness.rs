//! Index-correctness regressions: a `ColumnIndex` registration must track
//! engine mutations (the revision-stamp protocol), and index range scans
//! must agree with the filter-scan oracle on NULL and signed-zero rows.

use insightnotes::prelude::*;
use insightnotes::storage::Oid;

fn int_table(db: &mut Database, name: &str, vals: &[Value]) -> (TableId, Vec<Oid>) {
    let t = db
        .create_table(name, Schema::of(&[("c1", ColumnType::Int)]))
        .unwrap();
    let oids = vals
        .iter()
        .map(|v| db.insert_tuple(t, vec![v.clone()]).unwrap())
        .collect();
    (t, oids)
}

fn sorted_values(rows: &[AnnotatedTuple]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows.iter().map(|r| r.values.clone()).collect();
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

/// The tentpole regression: build a `ColumnIndex`, register it, mutate the
/// table (inserts *and* deletes), then run an index-scan plan through the
/// same registration. Pre-revision-stamping this silently served the
/// pre-mutation rows (deleted tuples resurfaced, inserts were invisible);
/// now the executor detects the stale stamp and rebuilds before the scan.
#[test]
fn stale_column_index_registration_is_refreshed_on_execute() {
    let mut db = Database::new();
    let vals: Vec<Value> = (0..20).map(Value::Int).collect();
    let (t, oids) = int_table(&mut db, "S", &vals);

    // Register an index, then park the session's registry while writing.
    let mut ctx = ExecContext::new(&db);
    ctx.register_column_index(ColumnIndex::build(&db, t, 0).unwrap());
    let registry = ctx.take_registry();
    drop(ctx);

    for oid in &oids[..5] {
        db.delete_tuple(t, *oid).unwrap();
    }
    let kept = db.insert_tuple(t, vec![Value::Int(100)]).unwrap();

    // Same registration, post-mutation engine.
    let mut ctx = ExecContext::with_registry(&db, registry);
    let plan = PhysicalPlan::DataIndexScan {
        table: t,
        col: 0,
        lo: None,
        hi: None,
        lo_strict: false,
        hi_strict: false,
        with_summaries: false,
    };
    let rows = ctx.execute(&plan).unwrap();
    let oracle = ctx
        .execute(&PhysicalPlan::SeqScan {
            table: t,
            with_summaries: false,
        })
        .unwrap();
    assert_eq!(rows.len(), 16, "15 survivors + 1 insert");
    assert_eq!(sorted_values(&rows), sorted_values(&oracle));
    assert!(rows.iter().any(|r| r.source == Some((t, kept))));
    for oid in &oids[..5] {
        assert!(
            rows.iter().all(|r| r.source != Some((t, *oid))),
            "deleted tuple must not resurface from a stale index"
        );
    }
}

/// Same staleness scenario through the pre-existing `IndexJoin` operator:
/// the probe side must not hand out OIDs of deleted tuples.
#[test]
fn stale_index_join_probe_is_refreshed_on_execute() {
    let mut db = Database::new();
    let (s, s_oids) = int_table(&mut db, "S", &(0..10).map(Value::Int).collect::<Vec<_>>());
    let (k, _) = int_table(&mut db, "K", &[Value::Int(3), Value::Int(7)]);

    let mut ctx = ExecContext::new(&db);
    ctx.register_column_index(ColumnIndex::build(&db, s, 0).unwrap());
    let registry = ctx.take_registry();
    drop(ctx);

    // Delete the tuple holding value 3; the stale index still points at it.
    db.delete_tuple(s, s_oids[3]).unwrap();

    let mut ctx = ExecContext::with_registry(&db, registry);
    let plan = PhysicalPlan::IndexJoin {
        left: Box::new(PhysicalPlan::SeqScan {
            table: k,
            with_summaries: false,
        }),
        right_table: s,
        left_col: 0,
        right_col: 0,
        residual: None,
        with_summaries: false,
    };
    let rows = ctx.execute(&plan).unwrap();
    // Only K=7 still has a partner; a stale probe would also emit (or
    // fail on) the deleted S=3 tuple.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values, vec![Value::Int(7), Value::Int(7)]);
}

/// `col < k` through the index must agree with the filter-scan oracle even
/// though NULL encodes as the smallest index key.
#[test]
fn null_rows_never_qualify_index_range_scans() {
    let mut db = Database::new();
    let vals: Vec<Value> = (0..30)
        .map(|i| {
            if i % 4 == 0 {
                Value::Null
            } else {
                Value::Int(i - 15)
            }
        })
        .collect();
    let (t, _) = int_table(&mut db, "S", &vals);
    let mut ctx = ExecContext::new(&db);
    ctx.register_column_index(ColumnIndex::build(&db, t, 0).unwrap());

    for (hi, hi_strict, op) in [(0i64, true, CmpOp::Lt), (5, false, CmpOp::Le)] {
        let scan = ctx
            .execute(&PhysicalPlan::DataIndexScan {
                table: t,
                col: 0,
                lo: None,
                hi: Some(Value::Int(hi)),
                lo_strict: false,
                hi_strict,
                with_summaries: false,
            })
            .unwrap();
        let oracle = ctx
            .execute(&PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    with_summaries: false,
                }),
                pred: Expr::col_cmp(0, op, Value::Int(hi)),
            })
            .unwrap();
        assert!(!oracle.is_empty());
        assert_eq!(sorted_values(&scan), sorted_values(&oracle), "hi={hi}");
        assert!(scan.iter().all(|r| r.values[0] != Value::Null));
    }
}

/// Float ranges across the signed-zero boundary: `-0.0` sorts with the
/// negatives (total_cmp order), so `col < 0.0` strict excludes `0.0` but
/// keeps `-0.0` out only when the filter oracle does too.
#[test]
fn float_range_scan_agrees_with_oracle_across_signed_zero() {
    let mut db = Database::new();
    let t = db
        .create_table("F", Schema::of(&[("x", ColumnType::Float)]))
        .unwrap();
    let vals = [-2.5f64, -1.0, -0.0, 0.0, 1.0, 2.5];
    for v in vals {
        db.insert_tuple(t, vec![Value::Float(v)]).unwrap();
    }
    let mut ctx = ExecContext::new(&db);
    ctx.register_column_index(ColumnIndex::build(&db, t, 0).unwrap());

    let scan = ctx
        .execute(&PhysicalPlan::DataIndexScan {
            table: t,
            col: 0,
            lo: Some(Value::Float(-1.0)),
            hi: Some(Value::Float(1.0)),
            lo_strict: false,
            hi_strict: false,
            with_summaries: false,
        })
        .unwrap();
    // -1.0, -0.0, 0.0, 1.0 — the old `*f >= 0.0` encoding pushed -0.0
    // below -2.5 and out of this range.
    assert_eq!(scan.len(), 4);
    let oracle = ctx
        .execute(&PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                with_summaries: false,
            }),
            pred: Expr::and(
                Expr::col_cmp(0, CmpOp::Ge, Value::Float(-1.0)),
                Expr::col_cmp(0, CmpOp::Le, Value::Float(1.0)),
            ),
        })
        .unwrap();
    assert_eq!(sorted_values(&scan), sorted_values(&oracle));
}
