//! End-to-end integration: corpus → engine → summaries → index → SQL →
//! optimizer → zoom-in, crossing every crate boundary.

use std::collections::HashMap;

use insightnotes::prelude::*;

/// Build a database with the paper's two-instance setup and a deterministic
/// annotation pattern: bird `i` gets `i % 13` disease-flavored and
/// `i % 5` behavior-flavored annotations.
fn build(n: usize) -> (Database, TableId, Vec<Oid>) {
    let mut db = Database::new();
    let birds = db
        .create_table(
            "Birds",
            Schema::of(&[
                ("id", ColumnType::Int),
                ("common_name", ColumnType::Text),
                ("family", ColumnType::Text),
            ]),
        )
        .unwrap();
    let mut model = NaiveBayes::new(vec!["Disease".into(), "Behavior".into(), "Other".into()]);
    model.train(
        "disease outbreak infection virus parasite lesion pox",
        "Disease",
    );
    model.train("symptom mortality influenza malaria", "Disease");
    model.train(
        "eating foraging migration song nesting stonewort",
        "Behavior",
    );
    model.train("flock roosting courtship preening diving", "Behavior");
    model.train("field station weather volunteer note misc", "Other");
    model.train("project count season tracker", "Other");
    db.link_instance(
        birds,
        "ClassBird1",
        InstanceKind::Classifier { model },
        true,
    )
    .unwrap();
    db.link_instance(
        birds,
        "TextSummary1",
        InstanceKind::Snippet {
            min_chars: 200,
            max_chars: 100,
        },
        false,
    )
    .unwrap();
    let mut oids = Vec::new();
    for i in 0..n {
        let name = if i % 2 == 0 {
            format!("Swan {i}")
        } else {
            format!("Gull {i}")
        };
        let oid = db
            .insert_tuple(
                birds,
                vec![
                    Value::Int(i as i64),
                    Value::Text(name),
                    Value::Text(format!("family{}", i % 3)),
                ],
            )
            .unwrap();
        oids.push(oid);
        for _ in 0..(i % 13) {
            db.add_annotation(
                birds,
                "disease outbreak infection observed on the specimen",
                Category::Disease,
                "t",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
        for _ in 0..(i % 5) {
            db.add_annotation(
                birds,
                "seen foraging and eating stonewort by the lake",
                Category::Behavior,
                "t",
                vec![Attachment::row(oid)],
            )
            .unwrap();
        }
    }
    (db, birds, oids)
}

#[test]
fn summaries_reflect_annotation_counts_exactly() {
    let (db, birds, oids) = build(40);
    for (i, &oid) in oids.iter().enumerate() {
        let set = db.summaries_of(birds, oid).unwrap();
        if i % 13 == 0 && i % 5 == 0 {
            assert!(set.is_empty() || set.iter().all(|o| o.is_empty()));
            continue;
        }
        let class = set
            .iter()
            .find(|o| o.instance_name == "ClassBird1")
            .unwrap();
        let Rep::Classifier(c) = &class.rep else {
            panic!()
        };
        assert_eq!(c.count("Disease"), Some((i % 13) as u64), "bird {i}");
        assert_eq!(c.count("Behavior"), Some((i % 5) as u64), "bird {i}");
        assert_eq!(c.total(), ((i % 13) + (i % 5)) as u64);
    }
}

#[test]
fn sql_through_optimizer_matches_naive_execution() {
    let (db, birds, _) = build(40);
    let sql = "SELECT id, common_name FROM Birds r WHERE \
               r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 8 \
               ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') ASC";
    let insightnotes::sql::ast::Statement::Select(sel) = parse(sql).unwrap() else {
        panic!()
    };
    let lowered = lower_select(&db, &sel).unwrap();

    // Naive path.
    let naive = lower_naive(&db, &lowered.plan).unwrap();
    let mut ctx = ExecContext::new(&db);
    let naive_rows = ctx.execute(&naive).unwrap();

    // Optimizer path with a live Summary-BTree.
    let index = SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).unwrap();
    let mut ctx2 = ExecContext::new(&db);
    ctx2.register_summary_index("idx", index);
    let config = PlannerConfig::default().with_summary_index("idx", birds, "ClassBird1", 3);
    let optimizer = Optimizer::new(&db, config).unwrap();
    let chosen = optimizer.optimize(&lowered.plan).unwrap();
    let opt_rows = ctx2.execute(&chosen.physical).unwrap();

    assert_eq!(naive_rows.len(), opt_rows.len());
    let ids = |rows: &[AnnotatedTuple]| -> Vec<i64> {
        rows.iter().map(|r| r.values[0].as_int().unwrap()).collect()
    };
    // Same tuples; ascending disease order may break id-ties differently,
    // so compare the sort keys and the id sets.
    let key = |rows: &[AnnotatedTuple]| -> Vec<i64> {
        rows.iter()
            .map(|r| {
                // Both plans project to (id, common_name); re-fetch the key
                // via id parity: i % 13 is the disease count.
                r.values[0].as_int().unwrap() % 13
            })
            .collect()
    };
    assert_eq!(key(&naive_rows), key(&opt_rows), "identical key order");
    let mut a = ids(&naive_rows);
    let mut b = ids(&opt_rows);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "identical tuple sets");
}

#[test]
fn incremental_index_stays_consistent_with_engine_state() {
    let (mut db, birds, oids) = build(25);
    let mut index =
        SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).unwrap();

    // Mutate: add annotations, delete an annotation, delete a tuple.
    let (added, deltas) = db
        .add_annotation(
            birds,
            "disease outbreak confirmed",
            Category::Disease,
            "t",
            vec![Attachment::row(oids[3])],
        )
        .unwrap();
    for d in &deltas {
        index.apply_delta(&db, d).unwrap();
    }
    let deltas = db.delete_annotation(added).unwrap();
    for d in &deltas {
        index.apply_delta(&db, d).unwrap();
    }
    let delta = db.delete_tuple(birds, oids[7]).unwrap();
    index.apply_delta(&db, &delta).unwrap();

    // The index must agree with a fresh bulk build over the final state.
    let mut fresh =
        SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).unwrap();
    assert_eq!(index.len(), fresh.len());
    for c in 0..13u64 {
        let mut a: Vec<Oid> = index
            .search_eq("Disease", c)
            .iter()
            .map(|e| e.oid)
            .collect();
        let mut b: Vec<Oid> = fresh
            .search_eq("Disease", c)
            .iter()
            .map(|e| e.oid)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "count {c}");
    }
}

#[test]
fn zoom_in_recovers_exactly_the_contributing_annotations() {
    let (db, birds, oids) = build(20);
    // Bird 12: 12 disease, 2 behavior annotations.
    let disease = zoom_in(
        &db,
        birds,
        oids[12],
        "ClassBird1",
        &ZoomTarget::ClassLabel("Disease".into()),
    )
    .unwrap();
    assert_eq!(disease.len(), 12);
    assert!(disease.iter().all(|a| a.text.contains("disease")));
    let all = zoom_in(&db, birds, oids[12], "ClassBird1", &ZoomTarget::All).unwrap();
    assert_eq!(all.len(), 14);
}

#[test]
fn ddl_statements_drive_the_engine() {
    let (mut db, birds, oids) = build(10);
    let mut registry: HashMap<String, InstanceKind> = HashMap::new();
    let mut model = NaiveBayes::new(vec!["Provenance".into(), "Comment".into()]);
    model.train("imported museum catalog lineage", "Provenance");
    model.train("observed sighting report photo", "Comment");
    registry.insert("ClassBird2".into(), InstanceKind::Classifier { model });

    let out = execute_statement(
        &mut db,
        &registry,
        "ALTER TABLE Birds ADD INDEXABLE ClassBird2",
    )
    .unwrap();
    let SqlOutcome::Altered { instance, .. } = out else {
        panic!()
    };
    assert!(instance.is_some());
    // The new instance produced objects for every annotated tuple.
    let set = db.summaries_of(birds, oids[9]).unwrap();
    assert!(set.iter().any(|o| o.instance_name == "ClassBird2"));
    // And can be dropped again.
    execute_statement(&mut db, &registry, "ALTER TABLE Birds DROP ClassBird2").unwrap();
    let set = db.summaries_of(birds, oids[9]).unwrap();
    assert!(!set.iter().any(|o| o.instance_name == "ClassBird2"));
}

#[test]
fn group_by_merge_counts_match_per_group_sums() {
    let (db, _, _) = build(30);
    let plan = LogicalPlan::scan("Birds").group_by(vec![2]);
    let physical = lower_naive(&db, &plan).unwrap();
    let mut ctx = ExecContext::new(&db);
    let groups = ctx.execute(&physical).unwrap();
    assert_eq!(groups.len(), 3);
    // Sum of per-group merged disease counts equals the global sum.
    let global: i64 = (0..30).map(|i| (i % 13) as i64).sum();
    let merged: i64 = groups
        .iter()
        .map(|g| {
            SummaryExpr::label_value("ClassBird1", "Disease")
                .eval(g)
                .as_int()
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(merged, global);
}

#[test]
fn io_accounting_shows_index_advantage() {
    let (db, birds, _) = build(60);
    let index = SummaryBTree::bulk_build(&db, birds, "ClassBird1", PointerMode::Backward).unwrap();
    let mut ctx = ExecContext::new(&db);
    ctx.register_summary_index("idx", index);

    let scan_plan = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::SeqScan {
            table: birds,
            with_summaries: true,
        }),
        pred: Expr::label_cmp("ClassBird1", "Disease", CmpOp::Eq, 12),
    };
    let index_plan = PhysicalPlan::SummaryIndexScan {
        index: "idx".into(),
        label: "Disease".into(),
        lo: Some(12),
        hi: Some(12),
        propagate: true,
        reverse: false,
    };
    db.stats().reset();
    let a = ctx.execute(&scan_plan).unwrap().len();
    let scan_io = db.stats().snapshot().total();
    db.stats().reset();
    let b = ctx.execute(&index_plan).unwrap().len();
    let index_io = db.stats().snapshot().total();
    assert_eq!(a, b);
    assert!(
        index_io * 3 < scan_io,
        "index {index_io} I/Os should be well under scan {scan_io}"
    );
}
